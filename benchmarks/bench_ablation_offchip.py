"""Extension bench: off-chip weight streaming (the paper's future work).

Sec. VI of the paper defers the analysis of external-memory access for
larger models. This bench runs it: at paper scale, sweep the on-chip
weight budget and report how many layers must stream from DDR, how much
throughput survives, and how int4 postpones the cliff relative to fp32.
"""

import pytest

from benchmarks.conftest import report_result
from repro.experiments.table1 import paper_scale_network
from repro.hw.config import AcceleratorConfig, PAPER_TABLE1_ALLOCATION
from repro.hw.memory import BRAM_BITS
from repro.hw.offchip import (
    apply_streaming_to_cycles,
    bandwidth_bound_layers,
    plan_streaming,
)
from repro.hw.simulator import HybridSimulator
from repro.quant.schemes import FP32, INT4
from repro.reporting import Table

#: On-chip weight budgets as a fraction of the device's BRAM bits.
BUDGET_FRACTIONS = (1.0, 0.5, 0.25, 0.1, 0.0)
_DEVICE_BITS = 2688 * BRAM_BITS


def _flat_density(network, value=0.10):
    return {layer.name: value for layer in network.layers}


def _throughput(network, scheme, budget_bits):
    """Pipelined FPS with streaming merged into the layer cycles."""
    from repro.workload.model import estimate_input_events

    config = AcceleratorConfig(
        name="offchip", allocation=PAPER_TABLE1_ALLOCATION, scheme=scheme
    )
    events = estimate_input_events(network, _flat_density(network), 2)
    report = HybridSimulator(network, config).run_from_counts(events, 2)
    cycles = {s.name: s.cycles for s in report.layers}
    streaming = plan_streaming(
        network, scheme, config.clock_hz, onchip_budget_bits=budget_bits
    )
    merged = apply_streaming_to_cycles(cycles, streaming)
    bottleneck = max(merged.values())
    fps = config.clock_hz / bottleneck
    bound = bandwidth_bound_layers(cycles, streaming)
    return fps, len(streaming.streamed_layers), len(bound)


@pytest.fixture(scope="module")
def offchip_table():
    table = Table(
        title="Off-chip streaming sweep (paper-scale CIFAR100 VGG9)",
        columns=[
            "on-chip budget", "precision", "streamed layers",
            "bandwidth-bound", "throughput FPS",
        ],
    )
    results = {}
    for scheme in (INT4, FP32):
        network = paper_scale_network(scheme)
        for fraction in BUDGET_FRACTIONS:
            fps, streamed, bound = _throughput(
                network, scheme, fraction * _DEVICE_BITS
            )
            table.add_row(
                f"{fraction * 100:.0f}%", scheme.name, streamed, bound, fps
            )
            results[(scheme.name, fraction)] = (fps, streamed, bound)
    table.add_note(
        "uniform 10% input density; streaming overlaps compute "
        "(double buffering), so a layer costs max(compute, fetch)"
    )
    report_result("ablation_offchip", table.render())
    return results


class TestOffchipSweep:
    def test_throughput_never_improves_with_less_memory(self, offchip_table):
        for scheme in ("int4", "fp32"):
            fps = [offchip_table[(scheme, f)][0] for f in BUDGET_FRACTIONS]
            assert all(a >= b - 1e-9 for a, b in zip(fps, fps[1:]))

    def test_int4_streams_fewer_layers(self, offchip_table):
        """Quantization shrinks weights 8x, so at every budget int4 keeps
        at least as many layers resident as fp32."""
        for fraction in BUDGET_FRACTIONS:
            int4_streamed = offchip_table[("int4", fraction)][1]
            fp32_streamed = offchip_table[("fp32", fraction)][1]
            assert int4_streamed <= fp32_streamed

    def test_full_budget_int4_all_resident(self, offchip_table):
        fps, streamed, _ = offchip_table[("int4", 1.0)]
        assert streamed <= 2  # at most the giant FC pair

    def test_zero_budget_everything_streams(self, offchip_table):
        _, streamed, _ = offchip_table[("fp32", 0.0)]
        assert streamed == 9


def test_bench_streaming_plan(benchmark, offchip_table):
    network = paper_scale_network(INT4)
    plan = benchmark(
        plan_streaming, network, INT4, 100e6, 0.5 * _DEVICE_BITS
    )
    assert plan.plans
