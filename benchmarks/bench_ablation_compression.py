"""Ablation: ECU priority-encoder chunk width.

The compression routine scans n bits per cycle (Sec. IV-B). Wider
encoders skip empty regions faster but cost more logic; this bench sweeps
n over recorded spike trains from the trained CIFAR10 model and reports
the cycle trade-off, plus times the batch compression kernel.
"""

import numpy as np
import pytest

from benchmarks.conftest import report_result
from repro.hw.compression import compression_cycles_batch
from repro.reporting import Table

CHUNK_WIDTHS = (4, 8, 16, 32, 64, 128)


@pytest.fixture(scope="module")
def recorded_trains(ctx):
    model = ctx.trained("cifar10", "int4")
    images, _ = ctx.sim_images("cifar10")
    out = model.forward(images[:32], ctx.timesteps_for("direct"), record=True)
    # conv2_1's input maps: genuinely sparse mid-network traffic.
    trains = out.spike_trains["conv2_1"]
    maps = np.concatenate([t.reshape(t.shape[0], t.shape[1], -1) for t in trains])
    return maps


@pytest.fixture(scope="module")
def sweep_table(recorded_trains):
    table = Table(
        title="Compression chunk-width ablation (conv2_1 traffic)",
        columns=["chunk bits", "cycles/map", "vs n=32"],
    )
    reference = None
    for chunk in CHUNK_WIDTHS:
        cycles = float(compression_cycles_batch(recorded_trains, chunk).mean())
        if chunk == 32:
            reference = cycles
        table.add_row(chunk, cycles, None)
    # Fill the relative column once the n=32 reference is known.
    for row, chunk in zip(table.rows, CHUNK_WIDTHS):
        cycles = row[1]
        row[2] = cycles / reference
    report_result("ablation_compression", table.render())
    return table


class TestCompressionAblation:
    def test_wider_never_slower(self, sweep_table):
        cycles = sweep_table.column("cycles/map")
        assert all(a >= b for a, b in zip(cycles, cycles[1:]))

    def test_diminishing_returns(self, sweep_table):
        """Beyond the spike count floor, widening stops helping: the last
        doubling must save a smaller fraction than the first."""
        cycles = sweep_table.column("cycles/map")
        first_gain = cycles[0] / cycles[1]
        last_gain = cycles[-2] / cycles[-1]
        assert first_gain >= last_gain

    def test_floor_is_spike_count(self, recorded_trains, sweep_table):
        spikes_per_map = float(
            recorded_trains.astype(np.float64).sum(axis=-1).mean()
        )
        cycles = sweep_table.column("cycles/map")
        assert cycles[-1] >= spikes_per_map - 1e-6


def test_bench_compression_kernel(benchmark, recorded_trains, sweep_table):
    """Times the vectorised exact-compression kernel at n=32."""
    result = benchmark(compression_cycles_batch, recorded_trains, 32)
    assert result.shape == recorded_trains.shape[:-1]
