"""Micro-benchmarks for the inference-runtime hot paths.

Times three implementations of the layer-current computation

* **legacy** -- the per-timestep ``DeployableNetwork._layer_current``
  loop (fresh im2col + einsum + dequantize per timestep),
* **fused** -- the runtime's time-fused dense kernel (one unfold + one
  batched matmul for all timesteps),
* **event** -- the runtime's event-driven scatter kernel,

across a sweep of input spike densities, plus the ``blocked_scatter``
deep-VGG9 micro (blocked event vs dense kernel on a K >= 500 shape --
the shapes only the canonical blocked k-fold can keep on the event
path, with the measured cost model's routing verdict per density), the
end-to-end ``DeployableNetwork.forward`` legacy-vs-runtime comparison on
a small-scale VGG9 at paper-typical spike densities, the sharded
serial-vs-pooled throughput, warm-vs-cold persistent-pool latency, the
disk-backed evaluation cache's cold/warm split, the
``quantized_kernels`` section (int8 int32-accumulating kernels vs their
float twins, micro and end-to-end) and the ``serving`` section (online
dynamic-batching server: p50/p99 latency and admission accounting at a
nominal and an overload offered rate). Results are written
to ``BENCH_runtime.json`` at the repo root so the perf trajectory is
tracked across PRs (field reference: ``docs/BENCHMARKS.md``).

Run:

    PYTHONPATH=src python benchmarks/bench_runtime_hotpaths.py [--smoke]

``REPRO_BENCH_SCALE=tiny`` shrinks the workload for smoke passes.
``--smoke`` additionally enforces the regression gate: the event-driven
path must beat the legacy loop at every density <= 5%, and the runtime
forward must not be slower than the legacy forward. Exit code 1 on
violation (wired into ``scripts/perf_smoke.sh``).

This file is a script, not a pytest module: plain ``pytest`` ignores it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from statistics import median
from typing import Callable, Dict, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if not any(os.path.isdir(os.path.join(p, "repro")) for p in sys.path if p):
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import numpy as np

from repro.parallel import sharded_forward
from repro.quant import FP32, convert
from repro.runtime import (
    calibrate_event_exact,
    plan_deployable,
    resolve_event_backend,
    resolve_event_block,
    runtime_overrides,
)
from repro.runtime.costmodel import probe_cost_state
from repro.runtime.kernels import dense_conv, event_conv, event_conv_blocked
from repro.runtime.refshapes import DEEP_VGG9_SHAPES, make_conv_layer_plan
from repro.snn import build_vgg9
from repro.snn.neuron import LIFConfig

DENSITIES = (0.01, 0.05, 0.20, 0.50)

#: Densities for the deep-layer blocked-scatter micro-bench. The two
#: sparsest are the perf gate: they bracket the near-silent regime the
#: deepest VGG9 layers actually run at (0.0-0.02 in end_to_end), where
#: the event path must beat the dense kernel outright. The denser two
#: document where the crossover sits -- that is the cost model's job to
#: detect at dispatch time, not a regression.
BLOCKED_DENSITIES = (0.002, 0.01, 0.05, 0.2)

#: One canonical deep-VGG9 shape (conv2_2 at CIFAR scale, K=576). Fixed
#: across bench scales so the blocked_scatter record is comparable
#: between the tiny smoke run and the canonical small-scale record.
BLOCKED_SHAPE = DEEP_VGG9_SHAPES[0]


def result_path(scale: str) -> str:
    """BENCH_runtime.json tracks the canonical small-scale trajectory
    across PRs; other scales (the tiny smoke gate) write a suffixed
    sibling so a CI run can never clobber the cross-PR record."""
    suffix = "" if scale == "small" else f".{scale}"
    return os.path.join(REPO_ROOT, f"BENCH_runtime{suffix}.json")

SCALES = {
    # Paper-typical sparsity: untrained VGG9 with theta=1.0 spikes at
    # ~1-15% density in the early layers and goes near-silent deeper,
    # matching the regime the paper reports (>90% sparsity).
    "tiny": dict(
        input_shape=(3, 16, 16), channel_scale=0.125, population=200,
        batch=8, timesteps=2, repeats=7,
    ),
    "small": dict(
        input_shape=(3, 32, 32), channel_scale=0.25, population=500,
        batch=8, timesteps=2, repeats=5,
    ),
}


def timeit(fn: Callable[[], object], repeats: int) -> float:
    """Median wall time of ``fn`` in milliseconds (1 warmup call)."""
    fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e3)
    return median(samples)


def build_workload(scale: str):
    params = SCALES[scale]
    network = build_vgg9(
        num_classes=10,
        population=params["population"],
        input_shape=params["input_shape"],
        channel_scale=params["channel_scale"],
        lif=LIFConfig(threshold=1.0),
        seed=42,
    )
    network.eval()
    deployable = convert(network, FP32)
    rng = np.random.default_rng(7)
    images = rng.random((params["batch"],) + params["input_shape"])
    return deployable, images.astype(np.float32), params


def pick_micro_layer(deployable):
    """First non-input conv layer whose shape calibrates event-exact."""
    plan = plan_deployable(deployable)
    backend = resolve_event_backend("auto")
    for index, layer in enumerate(plan.layers):
        if layer.kind != "conv" or layer.is_input_layer:
            continue
        if calibrate_event_exact(layer, backend):
            return index, layer, backend
    raise SystemExit("no event-exact conv layer found for the micro-bench")


def bench_layer_micro(deployable, params) -> List[Dict]:
    index, layer, backend = pick_micro_layer(deployable)
    legacy_layer = deployable.layers[index]
    timesteps = params["timesteps"]
    batch = params["batch"]
    rng = np.random.default_rng(11)
    rows = []
    for density in DENSITIES:
        fused = (
            rng.random((timesteps * batch,) + layer.input_shape) < density
        ).astype(np.float32)
        per_t = [fused[t * batch : (t + 1) * batch] for t in range(timesteps)]

        def run_legacy():
            return [
                deployable._layer_current(legacy_layer, xt) for xt in per_t
            ]

        def run_fused():
            return dense_conv(layer, fused)

        def run_event():
            return event_conv(layer, fused, backend)[0]

        # The three paths must agree bit-for-bit before being timed.
        want = np.concatenate(run_legacy())
        assert np.array_equal(run_fused(), want), "fused path diverged"
        assert np.array_equal(run_event(), want), "event path diverged"

        rows.append(
            {
                "layer": layer.name,
                "density": density,
                "legacy_ms": timeit(run_legacy, params["repeats"]),
                "fused_ms": timeit(run_fused, params["repeats"]),
                "event_ms": timeit(run_event, params["repeats"]),
            }
        )
    return rows


def bench_blocked_scatter(params) -> Dict:
    """Deep-VGG9 layer micro: blocked event vs (blocked) dense kernel.

    The shapes this section times are exactly the ones the unblocked
    fold locked out of the event path (K >= 500): the blocked k-fold is
    what lets them dispatch at all. Bit-exactness of blocked event vs
    blocked dense is asserted before any timing; the rows also record
    the measured cost model's prediction for each density so the record
    shows where (and why) the dispatcher flips to dense as activity
    rises.
    """
    cin, height, width, cout = BLOCKED_SHAPE
    layer = make_conv_layer_plan(cin, height, width, cout, seed=19)
    geometry = layer.geometry
    rng = np.random.default_rng(19)
    backend = resolve_event_backend("auto")
    block = resolve_event_block(layer, backend)
    if not block:
        raise SystemExit(
            f"deep shape K={geometry.k} failed to resolve a k-block"
        )
    cost = probe_cost_state(layer, backend, block)
    batch = params["timesteps"] * params["batch"]
    rows = []
    for density in BLOCKED_DENSITIES:
        x = (
            rng.random((batch, cin, height, width)) < density
        ).astype(np.float32)

        def run_dense_blocked():
            return dense_conv(layer, x, kblock=block)

        def run_dense_unblocked():
            return dense_conv(layer, x)

        def run_event_blocked():
            return event_conv_blocked(layer, x, backend, block)[0]

        want = run_dense_blocked()
        got, updates = event_conv_blocked(layer, x, backend, block)
        if not np.array_equal(got, want):
            raise SystemExit(
                f"blocked event diverged from blocked dense at density "
                f"{density} (K={geometry.k}, block={block})"
            )
        predicted_event = cost.predict_event_ms(updates)
        predicted_dense = cost.predict_dense_ms(batch)
        rows.append(
            {
                "density": density,
                "updates": int(updates),
                "dense_ms": timeit(run_dense_blocked, params["repeats"]),
                "dense_unblocked_ms": timeit(
                    run_dense_unblocked, params["repeats"]
                ),
                "event_ms": timeit(run_event_blocked, params["repeats"]),
                "cost_model_routes_event": bool(
                    predicted_event <= predicted_dense
                ),
            }
        )
    return {
        "shape": {
            "cin": cin, "height": height, "width": width, "cout": cout,
        },
        "k": int(geometry.k),
        "k_block": int(block),
        "backend": backend,
        "batch": batch,
        "bit_exact": True,
        "rows": rows,
    }


def bench_end_to_end(deployable, images, params) -> Dict:
    timesteps = params["timesteps"]
    legacy_out = deployable.forward_legacy(images, timesteps)
    # Two distinct exactness contracts, asserted separately. (1) With
    # blocking disabled every layer computes the same unblocked fold the
    # legacy loop uses, so the runtime must match legacy bit for bit.
    # (2) With blocking on (the default being timed), deep K>=500 layers
    # compute through the canonical blocked fold, whose currents differ
    # from legacy in the last ulp *by construction* -- what is
    # guaranteed there is dispatch invariance: forced-dense and routed
    # runs share the fold and must agree bitwise. Whether the blocked
    # logits also happen to match legacy (they do while the deep layers
    # stay near-silent) is recorded, not gated.
    with runtime_overrides(event_kblock=0):
        unblocked_out = deployable.forward(images, timesteps)
    if not np.array_equal(legacy_out.logits, unblocked_out.logits):
        raise SystemExit("unblocked runtime forward diverged from legacy")
    runtime_out = deployable.forward(images, timesteps)
    with runtime_overrides(force_path="dense"):
        forced_dense_out = deployable.forward(images, timesteps)
    if not np.array_equal(runtime_out.logits, forced_dense_out.logits):
        raise SystemExit("default routing diverged from forced dense")
    legacy_ms = timeit(
        lambda: deployable.forward_legacy(images, timesteps), params["repeats"]
    )
    runtime_ms = timeit(
        lambda: deployable.forward(images, timesteps), params["repeats"]
    )
    stats = runtime_out.stats
    densities = {
        name: round(1.0 - stats.sparsity(name), 4) for name in stats.per_layer
    }
    counters = {
        name: counter.as_dict()
        for name, counter in runtime_out.runtime_counters.items()
    }
    return {
        "timesteps": timesteps,
        "batch": int(images.shape[0]),
        "legacy_ms": legacy_ms,
        "runtime_ms": runtime_ms,
        "speedup": legacy_ms / runtime_ms if runtime_ms else float("inf"),
        "bit_exact": True,  # unblocked==legacy and routed==forced-dense
        "blocked_matches_legacy": bool(
            np.array_equal(legacy_out.logits, runtime_out.logits)
        ),
        "layer_output_densities": densities,
        "dispatch_counters": counters,
    }


def bench_parallel(deployable, images, params) -> Dict:
    """Sharded evaluation throughput: serial fallback vs 2-worker pool.

    The workload is the end-to-end VGG9 forward over a batch split into
    two shards. Results are checked bit-identical against the plain
    (unsharded) forward before timing; throughput is recorded in
    images/second for the serial fallback and the pooled path so the
    sharding win (or, on single-core machines, the process overhead) is
    tracked across PRs alongside the kernel numbers.
    """
    timesteps = params["timesteps"]
    plain = deployable.forward(images, timesteps)

    def run_serial():
        return sharded_forward(
            deployable, images, timesteps, shards=2, workers=1
        )

    def run_pooled():
        return sharded_forward(
            deployable, images, timesteps, shards=2, workers=2
        )

    for label, fn in (("serial", run_serial), ("pooled", run_pooled)):
        merged = fn()
        if not np.array_equal(merged.logits, plain.logits):
            raise SystemExit(f"sharded ({label}) logits diverged from plain")
        if merged.stats.per_layer != plain.stats.per_layer:
            raise SystemExit(f"sharded ({label}) stats diverged from plain")
    # Determinism gate: two pooled runs must agree bit-for-bit.
    first, second = run_pooled(), run_pooled()
    if not np.array_equal(first.logits, second.logits):
        raise SystemExit("pooled sharded run is non-deterministic")

    serial_ms = timeit(run_serial, params["repeats"])
    pooled_ms = timeit(run_pooled, params["repeats"])
    batch = int(images.shape[0])
    return {
        "shards": 2,
        "batch": batch,
        "workers_available": os.cpu_count(),
        "serial_ms": serial_ms,
        "pooled_ms": pooled_ms,
        "serial_images_per_s": 1e3 * batch / serial_ms if serial_ms else 0.0,
        "pooled_images_per_s": 1e3 * batch / pooled_ms if pooled_ms else 0.0,
        "pooled_speedup": serial_ms / pooled_ms if pooled_ms else float("inf"),
        "bit_exact": True,
        "deterministic": True,
    }


def _pool_probe_cell(x: int) -> int:
    """Trivial module-level cell for the pool-startup micro-bench."""
    return x * x


def bench_persistent_pool(params) -> Dict:
    """Warm-pool amortization: first pooled call vs steady-state calls.

    The first ``run_tasks`` call after a service shutdown pays the pool
    startup (the cost PR 2 paid on *every* call); subsequent calls reuse
    the warm workers and ship only the per-call generation blob. Both
    are timed on a trivial cell so the delta is pure orchestration
    overhead, and the service's lifetime counters record how many runs
    were served warm.
    """
    from repro.parallel import (
        persistent_pool_enabled,
        run_tasks,
        service_stats,
        shutdown_worker_service,
    )

    payloads = list(range(8))
    want = [x * x for x in payloads]

    def call():
        return run_tasks(_pool_probe_cell, payloads, workers=2)

    shutdown_worker_service()
    before = service_stats()
    start = time.perf_counter()
    if call() != want:
        raise SystemExit("pooled probe cells diverged from the serial map")
    cold_ms = (time.perf_counter() - start) * 1e3
    warm_ms = timeit(call, params["repeats"])
    after = service_stats()
    return {
        "enabled": persistent_pool_enabled(),
        "workers": 2,
        "payloads": len(payloads),
        "cold_call_ms": cold_ms,
        "warm_call_ms": warm_ms,
        "startup_amortization": cold_ms / warm_ms if warm_ms else float("inf"),
        "pool_starts": after["pool_starts"] - before["pool_starts"],
        "warm_runs": after["warm_runs"] - before["warm_runs"],
        "bit_exact": True,
    }


def bench_fault_recovery(deployable, images, params) -> Dict:
    """Self-healing overhead: a clean 4-shard run vs the same run
    healing one worker crash and one wedged shard.

    The faulted run executes under a pinned deterministic fault plan
    (shard 0's worker is killed on its first attempt; shard 2 wedges
    until the per-task timeout fires) and must still produce the
    byte-identical merged output -- the counter-stream invariant makes
    every retried shard a pure function of (seed, sample index,
    timestep). The delta between the two wall times is the price of
    recovery: pool restart, timeout detection, and the retried shards.
    The breaker is pinned high for the measurement (induced aborts must
    reach the retry engine, not degrade to inline execution where
    injection is off by design).
    """
    from repro.faults import FAULT_PLAN_ENV
    from repro.parallel import (
        CircuitBreaker,
        RetryPolicy,
        retry_stats,
        shared_service,
        shutdown_worker_service,
    )
    from repro.parallel.retry import reset_retry_stats
    from repro.snn.encoding import RateEncoder

    timesteps = params["timesteps"]
    plan = "seed=0,crash@0:0,wedge@2:0~30"
    policy = RetryPolicy(
        max_attempts=3, backoff_ms=0.0, backoff_max_ms=0.0,
        task_timeout_s=3.0,
    )

    def run():
        return sharded_forward(
            deployable, images, timesteps, RateEncoder(seed=11),
            shards=4, workers=2, retry=policy,
        )

    service = shared_service()
    saved_breaker = service.breaker
    service.breaker = CircuitBreaker(threshold=10000)
    try:
        shutdown_worker_service()
        start = time.perf_counter()
        clean = run()
        clean_ms = (time.perf_counter() - start) * 1e3

        shutdown_worker_service()  # the plan is read at worker spawn
        reset_retry_stats()
        os.environ[FAULT_PLAN_ENV] = plan
        try:
            start = time.perf_counter()
            healed = run()
            faulted_ms = (time.perf_counter() - start) * 1e3
        finally:
            del os.environ[FAULT_PLAN_ENV]
            shutdown_worker_service()
        stats = retry_stats()
        byte_identical = (
            healed.logits.tobytes() == clean.logits.tobytes()
            and healed.stats.per_layer == clean.stats.per_layer
            and healed.input_spike_totals == clean.input_spike_totals
        )
        trips = service.breaker.trips
    finally:
        service.breaker = saved_breaker
    return {
        "plan": plan,
        "shards": 4,
        "workers": 2,
        "clean_ms": clean_ms,
        "faulted_ms": faulted_ms,
        "recovery_overhead_ms": faulted_ms - clean_ms,
        "retries": stats.retries,
        "recovered_calls": stats.recovered_calls,
        "quarantined": stats.quarantined,
        "breaker_trips": trips,
        "byte_identical": byte_identical,
    }


def bench_eval_cache() -> Dict:
    """Disk-backed evaluation cache: cold compute vs warm hit.

    Trains (once) and evaluates a tiny model in a throwaway workspace,
    then re-evaluates through a fresh context -- the warm path must be
    served entirely from the ``.eval.json`` entry, bit-identically. Hit
    and store counts come from the per-process cache statistics.
    """
    import tempfile

    from repro.experiments.context import ExperimentContext
    from repro.experiments.evalcache import eval_cache_stats

    with tempfile.TemporaryDirectory() as workspace:
        before = eval_cache_stats().as_dict()
        ctx = ExperimentContext(
            scale="tiny", workspace=workspace, seed=0, eval_cache=True
        )
        ctx.trained("svhn", "fp32")  # exclude training from the timings
        start = time.perf_counter()
        cold = ctx.evaluate("svhn", "fp32", max_samples=32)
        cold_ms = (time.perf_counter() - start) * 1e3
        fresh = ExperimentContext(
            scale="tiny", workspace=workspace, seed=0, eval_cache=True
        )
        start = time.perf_counter()
        warm = fresh.evaluate("svhn", "fp32", max_samples=32)
        warm_ms = (time.perf_counter() - start) * 1e3
        after = eval_cache_stats().as_dict()
    if warm != cold:
        raise SystemExit("eval cache hit diverged from the computed result")
    return {
        "scale": "tiny",
        "samples": cold.samples,
        "cold_ms": cold_ms,
        "warm_ms": warm_ms,
        "speedup": cold_ms / warm_ms if warm_ms else float("inf"),
        "hits": after["hits"] - before["hits"],
        "misses": after["misses"] - before["misses"],
        "stores": after["stores"] - before["stores"],
        "bit_exact": True,
    }


def bench_quantized_kernels(params) -> Dict:
    """Integer datapath: the int8 kernels against their float twins.

    Micro: the deep BLOCKED_SHAPE quantized with power-of-two scales,
    timing float event (blocked, as the engine runs it) vs int event and
    float dense vs int dense per density -- after asserting the int
    kernels reproduce the float fold bit for bit (pow2 scales make the
    probe pass by construction). The int event kernel needs no k-block:
    integer addition is associative, so its single unsorted scatter is
    exact at any depth -- which is exactly why it should not lose to the
    blocked float scatter.

    End-to-end: the tiny-scale VGG9 quantized at int8p2, forward with
    ``int_kernels='off'`` vs ``'auto'`` (density policy, so the int
    decision is deterministic); logits must agree bit for bit, and the
    dispatch counters record how many layer-timesteps actually ran int32
    accumulation -- the proof the quantized deployable no longer runs
    float inference in disguise.
    """
    from repro.quant import INT8_P2, quantize_array
    from repro.runtime import attach_int_lowering, calibrate_int_exact
    from repro.runtime.kernels import dense_conv_int, event_conv_int

    cin, height, width, cout = BLOCKED_SHAPE
    layer = make_conv_layer_plan(cin, height, width, cout, seed=23)
    q, scale = quantize_array(layer.wmat, INT8_P2)
    wmat = (q.astype(np.float32) * scale.reshape(-1, 1)).astype(np.float32)
    layer.wmat = wmat
    layer.wT = np.ascontiguousarray(wmat.T)
    attach_int_lowering(layer, q, scale)
    backend = resolve_event_backend("auto")
    block = resolve_event_block(layer, backend)
    if not calibrate_int_exact(layer, backend, block):
        raise SystemExit("pow2 int lowering failed the exactness probe")
    rng = np.random.default_rng(23)
    batch = params["timesteps"] * params["batch"]
    rows = []
    for density in BLOCKED_DENSITIES:
        x = (
            rng.random((batch, cin, height, width)) < density
        ).astype(np.float32)

        def run_float_event():
            if block:
                return event_conv_blocked(layer, x, backend, block)[0]
            return event_conv(layer, x, backend)[0]

        def run_int_event():
            return event_conv_int(layer, x, backend)[0]

        def run_float_dense():
            return dense_conv(layer, x, kblock=block if block else None)

        def run_int_dense():
            return dense_conv_int(layer, x)

        want = run_float_dense()
        got, updates = event_conv_int(layer, x, backend)
        if not np.array_equal(got, want):
            raise SystemExit(
                f"int event kernel diverged from float at density {density}"
            )
        if not np.array_equal(run_int_dense(), want):
            raise SystemExit(
                f"int dense kernel diverged from float at density {density}"
            )
        rows.append(
            {
                "density": density,
                "updates": int(updates),
                "float_dense_ms": timeit(run_float_dense, params["repeats"]),
                "int_dense_ms": timeit(run_int_dense, params["repeats"]),
                "float_event_ms": timeit(run_float_event, params["repeats"]),
                "int_event_ms": timeit(run_int_event, params["repeats"]),
            }
        )

    tiny = SCALES["tiny"]
    network = build_vgg9(
        num_classes=10,
        population=tiny["population"],
        input_shape=tiny["input_shape"],
        channel_scale=tiny["channel_scale"],
        lif=LIFConfig(threshold=1.0),
        seed=42,
    )
    network.eval()
    quantized = convert(network, INT8_P2)
    images = (
        np.random.default_rng(7).random((tiny["batch"],) + tiny["input_shape"])
    ).astype(np.float32)
    timesteps = tiny["timesteps"]
    with runtime_overrides(int_kernels="off"):
        float_out = quantized.forward(images, timesteps)
        float_ms = timeit(
            lambda: quantized.forward(images, timesteps), params["repeats"]
        )
    with runtime_overrides(int_kernels="auto", dispatch_policy="density"):
        int_out = quantized.forward(images, timesteps)
        int_ms = timeit(
            lambda: quantized.forward(images, timesteps), params["repeats"]
        )
    if not np.array_equal(float_out.logits, int_out.logits):
        raise SystemExit("auto int e2e diverged from the float path")
    counters = {
        name: counter.as_dict()
        for name, counter in int_out.runtime_counters.items()
    }
    int_steps = sum(
        c["int_dense_steps"] + c["int_event_steps"] for c in counters.values()
    )
    return {
        "shape": {
            "cin": cin, "height": height, "width": width, "cout": cout,
        },
        "k": int(layer.geometry.k),
        "k_block": int(block or 0),
        "backend": backend,
        "batch": batch,
        "scheme": "int8p2",
        "int_bound": int(layer.int_bound),
        "bit_exact": True,
        "rows": rows,
        "end_to_end": {
            "scale": "tiny",
            "timesteps": timesteps,
            "float_ms": float_ms,
            "int_ms": int_ms,
            "speedup": float_ms / int_ms if int_ms else float("inf"),
            "int_layer_timesteps": int(int_steps),
            "dispatch_counters": counters,
        },
    }


def bench_serving(deployable, images, params) -> Dict:
    """Online serving: latency percentiles at two offered loads.

    Stands up a real :class:`InferenceServer` on the benched deployable
    and replays the open-loop generator against it twice: at ~50% of
    the measured single-batch capacity (the *nominal* row -- every
    request must complete, p50/p99 are the serving overhead on top of
    the forward) and at ~2x capacity (the *overload* row -- the bounded
    queue and deadlines must shed load explicitly; the accounting, not
    the latency, is the contract there).

    Before any timing the served logits are asserted byte-identical to
    the offline forward of the same samples -- the serving layer's
    bit-exactness contract, enforced in the perf record too.

    ``p99_bound_ms`` is self-calibrated from the measured batch forward
    (generous: queue wait + one full batch ahead + scheduling slack) and
    recorded; the smoke gate holds the nominal row's p99 under it.
    """
    from repro.serving import InferenceServer, resolve_serve_config, run_open_loop

    timesteps = params["timesteps"]
    max_batch = 4
    batch_ms = timeit(
        lambda: deployable.forward(images[:max_batch], timesteps),
        params["repeats"],
    )
    capacity_rps = max_batch / (batch_ms / 1e3) if batch_ms else 1.0
    offline = deployable.forward(images, timesteps).logits

    def serve_once(offered_rps, count, queue_depth, timeout_ms):
        server = InferenceServer(
            resolve_serve_config(
                max_batch=max_batch,
                max_wait_ms=2.0,
                queue_depth=queue_depth,
                timeout_ms=timeout_ms,
            )
        )
        try:
            server.register("bench", deployable, timesteps, workers=1)
            return run_open_loop(
                server, "bench", images, rate_rps=offered_rps, count=count
            )
        finally:
            server.shutdown()

    # Bit-exactness first: one request per sample, each under its own
    # stream index, must reproduce the offline batch byte for byte.
    server = InferenceServer(
        resolve_serve_config(
            max_batch=max_batch, max_wait_ms=5.0,
            queue_depth=len(images) + 1, timeout_ms=0.0,
        )
    )
    try:
        server.register("bench", deployable, timesteps, workers=1)
        pendings = [
            server.submit("bench", images[i], stream_index=i)
            for i in range(len(images))
        ]
        for i, pending in enumerate(pendings):
            if (
                pending.result().logits.tobytes()
                != np.ascontiguousarray(offline[i]).tobytes()
            ):
                raise SystemExit(
                    f"served logits diverged from offline forward at "
                    f"sample {i}"
                )
    finally:
        server.shutdown()

    nominal_rps = max(1.0, 0.5 * capacity_rps)
    overload_rps = max(2.0, 2.0 * capacity_rps)
    count = 24
    nominal = serve_once(
        nominal_rps, count, queue_depth=count + 1, timeout_ms=0.0
    )
    overload = serve_once(
        overload_rps, count, queue_depth=3, timeout_ms=max(50.0, 6 * batch_ms)
    )
    if nominal.completed != count:
        raise SystemExit(
            f"nominal serving load lost requests: "
            f"{nominal.completed}/{count} completed"
        )
    shed = overload.rejected + overload.timed_out
    accounted = (
        overload.completed + overload.rejected + overload.timed_out
        + overload.failed
    )
    if accounted != count:
        raise SystemExit(
            f"overload accounting leaked requests: {accounted}/{count}"
        )
    p99_bound_ms = 3.0 * batch_ms + 250.0
    rows = [
        dict(load="nominal", offered_rps=round(nominal_rps, 3),
             **nominal.as_dict()),
        dict(load="overload", offered_rps=round(overload_rps, 3),
             **overload.as_dict()),
    ]
    return {
        "max_batch": max_batch,
        "max_wait_ms": 2.0,
        "batch_forward_ms": batch_ms,
        "capacity_rps": round(capacity_rps, 3),
        "p99_bound_ms": round(p99_bound_ms, 3),
        "overload_shed": shed,
        "bit_exact": True,
        "rows": rows,
    }


def smoke_check(record: Dict) -> List[str]:
    failures = []
    for row in record["layer_micro"]:
        if row["density"] <= 0.05 and row["event_ms"] >= row["legacy_ms"]:
            failures.append(
                f"event path ({row['event_ms']:.2f} ms) not faster than "
                f"legacy ({row['legacy_ms']:.2f} ms) at density "
                f"{row['density']:.0%} on {row['layer']}"
            )
    e2e = record["end_to_end"]
    if e2e["runtime_ms"] >= e2e["legacy_ms"]:
        failures.append(
            f"runtime forward ({e2e['runtime_ms']:.2f} ms) slower than "
            f"legacy ({e2e['legacy_ms']:.2f} ms)"
        )
    # Blocked-scatter gate: at the two sparsest micro densities the
    # blocked event kernel must beat the dense kernel on the deep shape
    # -- otherwise unlocking the event path there bought nothing.
    blocked = record["blocked_scatter"]
    sparsest = sorted(blocked["rows"], key=lambda row: row["density"])[:2]
    for row in sparsest:
        if row["event_ms"] > row["dense_ms"]:
            failures.append(
                f"blocked event ({row['event_ms']:.2f} ms) slower than "
                f"dense ({row['dense_ms']:.2f} ms) at density "
                f"{row['density']:.1%} on the K={blocked['k']} deep shape"
            )
    # Integer-kernel gate: at the two sparsest benched densities the int8
    # event kernel must be at least as fast as the float event kernel --
    # the integer datapath exists to be cheaper, not just truer to the
    # hardware; if it regresses, auto mode would buy exactness attribution
    # at a speed cost the cost model then has to veto everywhere.
    quantized = record["quantized_kernels"]
    sparsest = sorted(quantized["rows"], key=lambda row: row["density"])[:2]
    for row in sparsest:
        if row["int_event_ms"] > row["float_event_ms"]:
            failures.append(
                f"int8 event ({row['int_event_ms']:.2f} ms) slower than "
                f"float event ({row['float_event_ms']:.2f} ms) at density "
                f"{row['density']:.1%} on the K={quantized['k']} deep shape"
            )
    # Fault-recovery gate: a run that healed a worker crash and a
    # wedged shard must merge to the byte-identical output of the
    # fault-free run, with no task quarantined -- recovery that changes
    # a single bit is silent corruption, not resilience.
    recovery = record["fault_recovery"]
    if not recovery["byte_identical"]:
        failures.append(
            f"fault recovery under plan {recovery['plan']!r} was not "
            "byte-identical to the clean run"
        )
    if recovery["quarantined"]:
        failures.append(
            f"recoverable fault plan {recovery['plan']!r} quarantined "
            f"{recovery['quarantined']} task(s)"
        )
    if recovery["retries"] < 2:
        failures.append(
            f"fault plan {recovery['plan']!r} drove only "
            f"{recovery['retries']} retries: recovery was not exercised"
        )
    # Serving gate: at nominal load every request completes and p99
    # stays under the self-calibrated bound; at overload every offered
    # request is accounted for (completed / rejected / timed out) --
    # shedding is expected there, losing requests is not.
    serving = record["serving"]
    by_load = {row["load"]: row for row in serving["rows"]}
    nominal = by_load["nominal"]
    if nominal["completed"] != nominal["offered"]:
        failures.append(
            f"serving lost requests at nominal load: "
            f"{nominal['completed']}/{nominal['offered']} completed"
        )
    if nominal["p99_ms"] > serving["p99_bound_ms"]:
        failures.append(
            f"serving p99 ({nominal['p99_ms']:.1f} ms) over the "
            f"calibrated bound ({serving['p99_bound_ms']:.1f} ms) at "
            "nominal load"
        )
    for row in serving["rows"]:
        accounted = (
            row["completed"] + row["rejected"] + row["timed_out"]
            + row["failed"]
        )
        if accounted != row["offered"]:
            failures.append(
                f"serving {row['load']} row leaked requests: "
                f"{accounted}/{row['offered']} accounted"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="enforce the perf regression gate (exit 1 on violation)",
    )
    parser.add_argument(
        "--scale", default=os.environ.get("REPRO_BENCH_SCALE", "small"),
        choices=sorted(SCALES),
    )
    args = parser.parse_args(argv)

    deployable, images, params = build_workload(args.scale)
    with runtime_overrides():  # pin the default config for reproducibility
        record = {
            "bench": "runtime_hotpaths",
            "scale": args.scale,
            "workload": "VGG9 direct-coded, untrained, theta=1.0",
            "env": {
                "python": platform.python_version(),
                "numpy": np.__version__,
                "event_backend": resolve_event_backend("auto"),
            },
            "layer_micro": bench_layer_micro(deployable, params),
            "blocked_scatter": bench_blocked_scatter(params),
            "end_to_end": bench_end_to_end(deployable, images, params),
            "parallel": bench_parallel(deployable, images, params),
            "persistent_pool": bench_persistent_pool(params),
            "fault_recovery": bench_fault_recovery(deployable, images, params),
            "eval_cache": bench_eval_cache(),
            "quantized_kernels": bench_quantized_kernels(params),
            "serving": bench_serving(deployable, images, params),
        }

    path = result_path(args.scale)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")

    print(f"wrote {path}")
    print(
        f"end-to-end: legacy {record['end_to_end']['legacy_ms']:.2f} ms, "
        f"runtime {record['end_to_end']['runtime_ms']:.2f} ms "
        f"({record['end_to_end']['speedup']:.2f}x)"
    )
    par = record["parallel"]
    print(
        f"sharded x{par['shards']}: serial {par['serial_ms']:.2f} ms "
        f"({par['serial_images_per_s']:.1f} img/s), 2-worker pool "
        f"{par['pooled_ms']:.2f} ms ({par['pooled_images_per_s']:.1f} img/s, "
        f"{par['pooled_speedup']:.2f}x, {par['workers_available']} core(s) "
        "available)"
    )
    pool = record["persistent_pool"]
    print(
        f"persistent pool: cold call {pool['cold_call_ms']:.2f} ms, warm "
        f"call {pool['warm_call_ms']:.2f} ms ({pool['startup_amortization']:.1f}x "
        f"amortized, {pool['warm_runs']} warm run(s), "
        f"{pool['pool_starts']} pool start(s))"
    )
    recovery = record["fault_recovery"]
    print(
        f"fault recovery: clean {recovery['clean_ms']:.2f} ms, faulted "
        f"{recovery['faulted_ms']:.2f} ms (+{recovery['recovery_overhead_ms']:.2f} ms "
        f"for {recovery['retries']} retr{'y' if recovery['retries'] == 1 else 'ies'}, "
        f"byte_identical={recovery['byte_identical']})"
    )
    cache = record["eval_cache"]
    print(
        f"eval cache: cold {cache['cold_ms']:.2f} ms, warm "
        f"{cache['warm_ms']:.2f} ms ({cache['speedup']:.1f}x, "
        f"{cache['hits']} hit(s), {cache['stores']} store(s))"
    )
    for row in record["layer_micro"]:
        print(
            f"  {row['layer']} @ {row['density']:.0%}: "
            f"legacy {row['legacy_ms']:.3f} ms | fused {row['fused_ms']:.3f} ms"
            f" | event {row['event_ms']:.3f} ms"
        )
    blocked = record["blocked_scatter"]
    print(
        f"blocked scatter (K={blocked['k']}, k_block={blocked['k_block']}, "
        f"batch {blocked['batch']}):"
    )
    for row in blocked["rows"]:
        routed = "event" if row["cost_model_routes_event"] else "dense"
        print(
            f"  @ {row['density']:.1%}: dense {row['dense_ms']:.3f} ms | "
            f"event {row['event_ms']:.3f} ms ({row['updates']} updates, "
            f"cost model routes {routed})"
        )
    quantized = record["quantized_kernels"]
    print(
        f"quantized kernels (int8p2, K={quantized['k']}, "
        f"bound={quantized['int_bound']}):"
    )
    for row in quantized["rows"]:
        print(
            f"  @ {row['density']:.1%}: float event "
            f"{row['float_event_ms']:.3f} ms | int event "
            f"{row['int_event_ms']:.3f} ms | float dense "
            f"{row['float_dense_ms']:.3f} ms | int dense "
            f"{row['int_dense_ms']:.3f} ms"
        )
    qe2e = quantized["end_to_end"]
    print(
        f"  e2e tiny int8p2: float {qe2e['float_ms']:.2f} ms, int-auto "
        f"{qe2e['int_ms']:.2f} ms ({qe2e['speedup']:.2f}x, "
        f"{qe2e['int_layer_timesteps']} int layer-timesteps)"
    )
    serving = record["serving"]
    print(
        f"serving (max_batch={serving['max_batch']}, capacity "
        f"~{serving['capacity_rps']:.1f} req/s, p99 bound "
        f"{serving['p99_bound_ms']:.0f} ms):"
    )
    for row in serving["rows"]:
        print(
            f"  {row['load']} @ {row['offered_rps']:.1f} req/s: "
            f"{row['completed']}/{row['offered']} completed, "
            f"{row['rejected']} rejected, {row['timed_out']} timed out, "
            f"p50 {row['p50_ms']:.1f} ms, p99 {row['p99_ms']:.1f} ms"
        )
    if args.smoke:
        failures = smoke_check(record)
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("perf smoke gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
