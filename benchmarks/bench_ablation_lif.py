"""Ablation: LIF threshold as an inference-time sparsity knob.

Sec. II-A notes that a lower theta increases firing frequency (and a
higher beta retains more membrane, firing more). This bench sweeps the
firing threshold of the trained CIFAR10 int4 model at inference time and
reports the accuracy/sparsity trade-off around the paper's operating
point (beta=0.15, theta=0.5).
"""

import pytest

from benchmarks.conftest import report_result
from repro.reporting import Table
from repro.snn.neuron import LIFConfig

THETAS = (0.3, 0.4, 0.5, 0.65, 0.8)


@pytest.fixture(scope="module")
def theta_sweep(ctx):
    model = ctx.trained("cifar10", "int4")
    images, labels = ctx.sim_images("cifar10")
    timesteps = ctx.timesteps_for("direct")
    original = model.lif
    table = Table(
        title="LIF threshold sweep (trained CIFAR10 int4 model)",
        columns=["theta", "acc %", "spikes/img"],
    )
    results = {}
    try:
        for theta in THETAS:
            model.lif = LIFConfig(beta=original.beta, threshold=theta)
            out = model.forward(images, timesteps)
            accuracy = float((out.logits.argmax(axis=1) == labels).mean())
            spikes = out.stats.spikes_per_image()
            table.add_row(theta, 100 * accuracy, spikes)
            results[theta] = (accuracy, spikes)
    finally:
        model.lif = original
    report_result("ablation_lif_threshold", table.render())
    return results


class TestThetaSweep:
    def test_lower_threshold_more_spikes(self, theta_sweep):
        """Eq. 2: lower theta -> easier firing (monotone spike counts)."""
        spikes = [theta_sweep[t][1] for t in THETAS]
        assert spikes == sorted(spikes, reverse=True)

    def test_trained_operating_point_is_best(self, theta_sweep):
        """The model was trained at theta=0.5; accuracy should peak at or
        near it."""
        best_theta = max(theta_sweep, key=lambda t: theta_sweep[t][0])
        assert abs(best_theta - 0.5) <= 0.2

    def test_extreme_thresholds_hurt(self, theta_sweep):
        at_train = theta_sweep[0.5][0]
        assert theta_sweep[0.8][0] <= at_train + 0.02


def test_bench_theta_evaluation(benchmark, ctx, theta_sweep):
    """Times one inference pass of the sweep."""
    model = ctx.trained("cifar10", "int4")
    images, _ = ctx.sim_images("cifar10")

    def run():
        return model.forward(images[:32], ctx.timesteps_for("direct"))

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    assert out.logits.shape[0] == 32
