"""Ablation: timestep count for direct coding.

Sec. V-D notes accuracy plateaus as timesteps grow for both coding
schemes (direct coding already saturating by T=2). This bench sweeps T on
the trained direct-coded model: accuracy should not collapse at the
paper's T=2 and spikes/latency must grow ~linearly with T -- the reason
fewer timesteps win on energy.
"""

import pytest

from benchmarks.conftest import report_result
from repro.hw.config import lw_config
from repro.hw.simulator import HybridSimulator
from repro.quant.schemes import INT4
from repro.reporting import Table
from repro.snn import make_encoder

TIMESTEPS = (1, 2, 4, 6)


@pytest.fixture(scope="module")
def timestep_sweep(ctx):
    model = ctx.trained("cifar10", "int4")
    images, labels = ctx.sim_images("cifar10")
    config = lw_config("cifar10", scheme=INT4)
    table = Table(
        title="Direct-coding timestep sweep (CIFAR10 int4, LW hardware)",
        columns=["T", "acc %", "spikes/img", "latency ms", "energy mJ"],
    )
    results = {}
    for t in TIMESTEPS:
        report = HybridSimulator(model, config).run(
            images, t, make_encoder("direct"), labels
        )
        table.add_row(
            t,
            100 * (report.accuracy or 0.0),
            report.total_spikes_per_image,
            report.latency_ms,
            report.energy_mj,
        )
        results[t] = report
    report_result("ablation_timesteps", table.render())
    return results


class TestTimestepSweep:
    def test_spikes_grow_with_t(self, timestep_sweep):
        spikes = [timestep_sweep[t].total_spikes_per_image for t in TIMESTEPS]
        assert spikes == sorted(spikes)

    def test_latency_grows_with_t(self, timestep_sweep):
        latency = [timestep_sweep[t].latency_ms for t in TIMESTEPS]
        assert latency == sorted(latency)

    def test_energy_roughly_linear_in_t(self, timestep_sweep):
        e2 = timestep_sweep[2].energy_mj
        e4 = timestep_sweep[4].energy_mj
        assert 1.4 < e4 / e2 < 2.8

    def test_accuracy_plateaus_not_collapses(self, timestep_sweep):
        """Trained at T=2; more timesteps shouldn't change accuracy much
        (the paper's plateau observation)."""
        at_2 = timestep_sweep[2].accuracy
        at_6 = timestep_sweep[6].accuracy
        assert abs(at_6 - at_2) < 0.25


def test_bench_t4_simulation(benchmark, ctx, timestep_sweep):
    model = ctx.trained("cifar10", "int4")
    images, _ = ctx.sim_images("cifar10")
    config = lw_config("cifar10", scheme=INT4)

    def run():
        return HybridSimulator(model, config).run(
            images[:32], 4, make_encoder("direct")
        )

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.energy_mj > 0
