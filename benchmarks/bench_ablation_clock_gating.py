"""Ablation: MSB-partition memory clock gating (Sec. IV-C).

The paper gates the inactive half of every weight memory. This bench
compares dynamic power and per-image energy with gating on vs off, at
paper scale for both precisions.
"""

import pytest

from benchmarks.conftest import report_result
from repro.experiments.table1 import paper_scale_network
from repro.hw.config import AcceleratorConfig, PAPER_TABLE1_ALLOCATION
from repro.hw.power import PowerModel
from repro.hw.resources import ResourceEstimator
from repro.quant.schemes import FP32, INT4
from repro.reporting import Table


@pytest.fixture(scope="module")
def gating_table():
    table = Table(
        title="Clock-gating ablation (paper-scale CIFAR100 design)",
        columns=["precision", "gating", "dynamic W", "memory W"],
    )
    results = {}
    for scheme in (INT4, FP32):
        network = paper_scale_network(scheme)
        for gating in (True, False):
            config = AcceleratorConfig(
                name="gate",
                allocation=PAPER_TABLE1_ALLOCATION,
                scheme=scheme,
                clock_gating=gating,
            )
            estimate = ResourceEstimator(config).estimate(network, 2)
            power = PowerModel(config).estimate(estimate)
            memory_w = sum(layer.memory_w for layer in power.layers)
            table.add_row(
                scheme.name, "on" if gating else "off",
                power.dynamic_w, memory_w,
            )
            results[(scheme.name, gating)] = power.dynamic_w
    report_result("ablation_clock_gating", table.render())
    return results


class TestClockGating:
    def test_gating_saves_power_int4(self, gating_table):
        assert gating_table[("int4", True)] < gating_table[("int4", False)]

    def test_gating_saves_power_fp32(self, gating_table):
        assert gating_table[("fp32", True)] < gating_table[("fp32", False)]

    def test_fp32_saves_more_absolute(self, gating_table):
        """fp32 designs hold more memory, so gating saves more watts."""
        int4_saving = gating_table[("int4", False)] - gating_table[("int4", True)]
        fp32_saving = gating_table[("fp32", False)] - gating_table[("fp32", True)]
        assert fp32_saving > int4_saving


def bench_power_with_gating(scheme):
    network = paper_scale_network(scheme)
    config = AcceleratorConfig(
        name="gate", allocation=PAPER_TABLE1_ALLOCATION, scheme=scheme
    )
    estimate = ResourceEstimator(config).estimate(network, 2)
    return PowerModel(config).estimate(estimate).dynamic_w


def test_bench_gated_power_estimation(benchmark, gating_table):
    watts = benchmark.pedantic(
        bench_power_with_gating, args=(INT4,), rounds=3, iterations=1
    )
    assert watts > 0
