"""Ablation: workload-balanced partitioning vs naive allocations.

The paper's LW configurations come from the Eq. 3 workload model; this
bench quantifies what that buys: bottleneck latency of balanced vs
uniform vs proportional allocations on the *measured* workload profile of
the trained CIFAR10 model, and times the partitioning search itself.
"""

import pytest

from benchmarks.conftest import report_result
from repro.reporting import Table
from repro.workload import (
    balanced_allocation,
    proportional_allocation,
    uniform_allocation,
    workloads_from_network,
)

BUDGETS = (18, 36, 72, 144)


@pytest.fixture(scope="module")
def measured_workloads(ctx):
    model = ctx.trained("cifar10", "int4")
    evaluation = ctx.evaluate("cifar10", "int4")
    return workloads_from_network(
        model,
        evaluation.input_events_per_image,
        ctx.timesteps_for("direct"),
    )


@pytest.fixture(scope="module")
def partition_table(measured_workloads):
    table = Table(
        title="Partitioning ablation (measured CIFAR10 int4 workloads)",
        columns=[
            "budget", "balanced bottleneck", "uniform bottleneck",
            "uniform/balanced", "proportional imbalance",
        ],
    )
    rows = {}
    proportional = proportional_allocation(measured_workloads)
    for budget in BUDGETS:
        balanced = balanced_allocation(measured_workloads, budget)
        uniform = uniform_allocation(measured_workloads, budget)
        gain = uniform.bottleneck_cycles / balanced.bottleneck_cycles
        table.add_row(
            budget,
            balanced.bottleneck_cycles,
            uniform.bottleneck_cycles,
            gain,
            proportional.imbalance,
        )
        rows[budget] = (balanced, uniform)
    report_result("ablation_partitioning", table.render())
    return rows


class TestPartitioningAblation:
    def test_balanced_never_worse_than_uniform(self, partition_table):
        for balanced, uniform in partition_table.values():
            assert balanced.bottleneck_cycles <= uniform.bottleneck_cycles * 1.001

    def test_balanced_wins_at_tight_budgets(self, partition_table):
        balanced, uniform = partition_table[BUDGETS[0]]
        assert uniform.bottleneck_cycles > 1.2 * balanced.bottleneck_cycles

    def test_budget_monotonicity(self, partition_table):
        bottlenecks = [
            partition_table[b][0].bottleneck_cycles for b in BUDGETS
        ]
        assert bottlenecks == sorted(bottlenecks, reverse=True)

    def test_proportional_balances_sparse_layers(self, measured_workloads):
        result = proportional_allocation(measured_workloads)
        sparse = [
            lat for wl, lat in zip(measured_workloads, result.latencies)
            if wl.kind != "dense" and lat > 0
        ]
        assert max(sparse) / min(sparse) < 3.0


def test_bench_balanced_search(benchmark, measured_workloads, partition_table):
    """Times the binary-search balanced partitioner."""
    result = benchmark(balanced_allocation, measured_workloads, 72)
    assert sum(result.allocation[1:]) <= 72  # dense row excluded from budget
