"""Benchmark fixtures and reporting plumbing.

Benches reuse the experiment context's disk cache (``artifacts/``): the
first run trains the small-scale models (~15 minutes), subsequent runs
load them. Set ``REPRO_BENCH_SCALE=tiny`` for a fast smoke pass.

Every bench registers its regenerated tables through ``report_result``;
a ``pytest_terminal_summary`` hook prints them after the timing table,
so ``pytest benchmarks/ --benchmark-only`` output contains the
reproduced paper tables, and a copy is written to
``benchmarks/results/``.
"""

from __future__ import annotations

import os
from typing import List, Tuple

import pytest

_RESULTS: List[Tuple[str, str]] = []
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report_result(name: str, text: str) -> None:
    """Register a rendered table/figure for the terminal summary."""
    _RESULTS.append((name, text))
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, f"{name}.md")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    terminalreporter.section("reproduced paper tables/figures")
    for name, text in _RESULTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"==== {name} ====")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def ctx(bench_scale):
    """Shared experiment context backed by the artifacts/ cache."""
    from repro.experiments.context import ExperimentContext

    workspace = os.environ.get("REPRO_BENCH_WORKSPACE", "artifacts")
    return ExperimentContext(
        scale=bench_scale, workspace=workspace, seed=0, verbose=True
    )
