"""Ablation: why the hybrid architecture needs its dense core.

Direct coding feeds the input layer an analog frame: on sparse cores that
frame would be a worst-case all-active event stream, while the dense
systolic core processes it in activity-independent time. This bench
compares the input layer's cycle cost under both mappings (the
architectural argument of Sec. I / IV) at paper-scale dimensions.
"""

import pytest

from benchmarks.conftest import report_result
from repro.hw.dense_core import DenseCoreModel
from repro.hw.sparse_core import SparseCoreModel
from repro.reporting import Table

#: Paper input layer: 3x32x32 frame -> 64 maps, 3x3 kernel, T=2.
IN_SHAPE = (3, 32, 32)
OUT_CHANNELS = 64
TIMESTEPS = 2


def input_layer_cycles(dense_rows, sparse_ncs):
    """(dense cycles, sparse cycles) for the direct-coded input layer."""
    dense = DenseCoreModel(rows=dense_rows)
    dense_cycles = dense.layer_cycles(
        OUT_CHANNELS, 32, 32, IN_SHAPE[0], 3
    ).total_cycles * TIMESTEPS
    # On sparse cores every analog pixel-timestep becomes an event.
    sparse = SparseCoreModel(nc_count=sparse_ncs)
    events = IN_SHAPE[0] * IN_SHAPE[1] * IN_SHAPE[2]
    timing = sparse.conv_timestep_cycles(
        None, IN_SHAPE, OUT_CHANNELS, 3, spike_count=float(events)
    )
    return dense_cycles, timing.total_cycles * TIMESTEPS


@pytest.fixture(scope="module")
def hybrid_table():
    table = Table(
        title="Hybrid ablation: input layer on dense vs sparse cores",
        columns=["cores", "dense cycles", "sparse cycles", "dense advantage x"],
    )
    results = {}
    for cores in (1, 2, 4, 8):
        dense_cycles, sparse_cycles = input_layer_cycles(cores, cores)
        table.add_row(
            cores, dense_cycles, sparse_cycles, sparse_cycles / dense_cycles
        )
        results[cores] = (dense_cycles, sparse_cycles)
    report_result("ablation_hybrid", table.render())
    return results


class TestHybridAblation:
    def test_dense_core_wins_at_every_size(self, hybrid_table):
        for dense_cycles, sparse_cycles in hybrid_table.values():
            assert dense_cycles < sparse_cycles

    def test_advantage_is_large(self, hybrid_table):
        """The event path pays F=9 updates per owned channel per pixel;
        the systolic path pays ~1 cycle per output pixel. The gap should
        be around an order of magnitude."""
        dense_cycles, sparse_cycles = hybrid_table[1]
        assert sparse_cycles / dense_cycles > 5.0

    def test_both_scale_with_cores(self, hybrid_table):
        assert hybrid_table[8][0] < hybrid_table[1][0]
        assert hybrid_table[8][1] < hybrid_table[1][1]


def test_bench_input_layer_models(benchmark, hybrid_table):
    """Times one dense-vs-sparse input-layer sizing comparison."""
    dense_cycles, sparse_cycles = benchmark(input_layer_cycles, 4, 4)
    assert dense_cycles < sparse_cycles
