"""Table III bench: comparison to previous work at paper scale."""

import pytest

from benchmarks.conftest import report_result
from repro.experiments import table3
from repro.experiments.table1 import paper_scale_network
from repro.hw.config import perf_config
from repro.hw.simulator import HybridSimulator
from repro.quant.schemes import INT4
from repro.workload.model import estimate_input_events


@pytest.fixture(scope="module")
def table3_result(ctx):
    result = table3.run(ctx)
    report_result("table3_comparison", result.render())
    return result


class TestTable3Shape:
    def _ours(self, table, dataset, label="paper activity"):
        for row in table.rows:
            if row[0] == dataset and "this work" in str(row[1]) and label in str(row[1]):
                return row
        raise AssertionError(f"no 'this work' ({label}) row for {dataset}")

    def _baseline(self, table, dataset):
        for row in table.rows:
            if row[0] == dataset and "this work" not in str(row[1]):
                return row
        raise AssertionError(f"no baseline row for {dataset}")

    def test_throughput_beats_gerlinghoff(self, table3_result):
        """Paper: 51x throughput vs [7] on CIFAR100 (shape floor: 5x at
        the paper's activity level)."""
        table = table3_result.tables[0]
        ours = self._ours(table, "cifar100")
        baseline = self._baseline(table, "cifar100")
        assert ours[8] > 5 * baseline[8]

    def test_power_below_gerlinghoff(self, table3_result):
        """Paper: ~half the power of [7]."""
        table = table3_result.tables[0]
        ours = self._ours(table, "cifar100")
        baseline = self._baseline(table, "cifar100")
        assert ours[5] < baseline[5]

    def test_throughput_near_syncnn(self, table3_result):
        """Paper: >2x throughput vs [15]. Our calibrated model lands in
        the same order of magnitude at the paper's activity level."""
        table = table3_result.tables[0]
        for dataset in ("svhn", "cifar10"):
            ours = self._ours(table, dataset)
            baseline = self._baseline(table, dataset)
            assert ours[8] > 0.2 * baseline[8]

    def test_measured_rows_slower_than_paper_activity(self, table3_result):
        """Denser small-scale models must cost throughput -- the measured
        rows act as the pessimistic bound."""
        table = table3_result.tables[0]
        for dataset in ("svhn", "cifar10", "cifar100"):
            measured = self._ours(table, dataset, label="measured activity")
            paper_act = self._ours(table, dataset, label="paper activity")
            assert paper_act[8] >= measured[8]

    def test_power_above_syncnn(self, table3_result):
        """SyncNN's ZCU102 point draws less power (paper reports the same
        direction: +1.8-2.2x for this work)."""
        table = table3_result.tables[0]
        ours = self._ours(table, "cifar10")
        baseline = self._baseline(table, "cifar10")
        assert ours[5] > baseline[5] * 0.5


def bench_paper_scale_analytic(ctx):
    network = paper_scale_network(INT4)
    evaluation = ctx.evaluate("cifar100", "int4")
    small = ctx.trained("cifar100", "int4")
    from repro.workload.model import measured_input_density

    density = measured_input_density(
        evaluation.input_events_per_image, small, ctx.timesteps_for("direct")
    )
    events = estimate_input_events(network, density, 2)
    config = perf_config("cifar100", 4, scheme=INT4)
    report = HybridSimulator(network, config).run_from_counts(events, 2)
    return report.throughput_fps


def test_bench_table3_analytic_path(benchmark, ctx, table3_result):
    """Times the paper-scale analytic simulation behind our Table III rows."""
    fps = benchmark.pedantic(
        bench_paper_scale_analytic, args=(ctx,), rounds=2, iterations=1
    )
    assert fps > 0
