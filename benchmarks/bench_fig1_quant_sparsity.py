"""Fig. 1 bench: quantization's effect on total spikes.

Regenerates the paper's Fig. 1 (fp32 vs int4 spike counts and accuracy on
all three datasets) and times the spike-counting evaluation pass that
produces it. Trained models come from the shared artifact cache.
"""

import pytest

from benchmarks.conftest import report_result
from repro.experiments import fig1


@pytest.fixture(scope="module")
def fig1_result(ctx):
    result = fig1.run(ctx)
    report_result("fig1_quant_sparsity", result.render())
    return result


class TestFig1Shape:
    """Assert the *shape* of the paper's finding on the measured data."""

    def test_accuracy_well_above_chance(self, fig1_result, ctx):
        table = fig1_result.tables[0]
        chance = {"svhn": 10.0, "cifar10": 10.0, "cifar100": 1.0}
        for row in table.rows:
            dataset, fp32_acc = row[0], row[1]
            assert fp32_acc > 2.5 * chance[dataset], (
                f"{dataset} fp32 accuracy {fp32_acc}% too close to chance"
            )

    def test_int4_accuracy_close_to_fp32(self, fig1_result):
        table = fig1_result.tables[0]
        for row in table.rows:
            dataset, fp32_acc, int4_acc = row[0], row[1], row[2]
            assert abs(fp32_acc - int4_acc) < 15.0, (
                f"{dataset}: fp32 {fp32_acc}% vs int4 {int4_acc}%"
            )

    def test_spike_counts_same_order_of_magnitude(self, fig1_result):
        table = fig1_result.tables[0]
        for row in table.rows:
            fp32_spikes, int4_spikes = row[3], row[4]
            assert 0.5 < fp32_spikes / int4_spikes < 2.0


def bench_spike_counting(ctx):
    model = ctx.trained("cifar10", "int4")
    images, _ = ctx.sim_images("cifar10")
    out = model.forward(images, ctx.timesteps_for("direct"))
    return out.stats.total_spikes


def test_bench_fig1_eval_pass(benchmark, ctx, fig1_result):
    """Times one spike-counting inference pass (the Fig. 1 measurement)."""
    total = benchmark.pedantic(
        bench_spike_counting, args=(ctx,), rounds=3, iterations=1
    )
    assert total > 0
