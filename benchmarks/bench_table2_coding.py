"""Table II bench: direct vs rate coding on the quantized LW hardware."""

import pytest

from benchmarks.conftest import report_result
from repro.baselines import rate_coded_config
from repro.experiments import table2
from repro.hw.config import lw_config
from repro.hw.simulator import HybridSimulator
from repro.quant.schemes import INT4
from repro.snn import make_encoder


@pytest.fixture(scope="module")
def table2_result(ctx):
    result = table2.run(ctx)
    report_result("table2_coding", result.render())
    return result


class TestTable2Shape:
    def test_direct_uses_fewer_timesteps(self, table2_result):
        table = table2_result.tables[0]
        steps = dict(zip(table.column("coding"), table.column("timesteps")))
        assert steps["direct"] < steps["rate"]

    def test_direct_fewer_spikes(self, table2_result):
        """Paper: 2.6x fewer spikes for direct coding."""
        table = table2_result.tables[0]
        spikes = dict(zip(table.column("coding"), table.column("spikes/img")))
        assert spikes["direct"] < spikes["rate"]

    def test_direct_less_energy(self, table2_result):
        """Paper: 26.4x less energy for direct coding."""
        table = table2_result.tables[0]
        energy = dict(zip(table.column("coding"), table.column("energy mJ")))
        assert energy["direct"] < energy["rate"]

    def test_direct_lower_latency(self, table2_result):
        table = table2_result.tables[0]
        latency = dict(zip(table.column("coding"), table.column("latency ms")))
        assert latency["direct"] < latency["rate"]

    def test_direct_at_least_as_accurate(self, table2_result):
        """Paper: +10pp for direct. Allow slack for reduced-scale noise."""
        table = table2_result.tables[0]
        acc = dict(zip(table.column("coding"), table.column("acc %")))
        assert acc["direct"] > acc["rate"] - 5.0


def bench_rate_coded_sim(ctx):
    model = ctx.trained("cifar10", "int4", "rate")
    config = rate_coded_config(lw_config("cifar10", scheme=INT4))
    images, _ = ctx.sim_images("cifar10")
    report = HybridSimulator(model, config).run(
        images[:32],
        ctx.timesteps_for("rate"),
        make_encoder("rate", seed=7),
    )
    return report.energy_mj


def test_bench_table2_rate_simulation(benchmark, ctx, table2_result):
    """Times the rate-coded (sparse-cores-only) simulation arm."""
    energy = benchmark.pedantic(
        bench_rate_coded_sim, args=(ctx,), rounds=2, iterations=1
    )
    assert energy > 0
