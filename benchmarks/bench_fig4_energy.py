"""Fig. 4 bench: energy per image, fp32 vs int4, across LW/perf2/perf4.

Regenerates all three bar groups from the trained small-scale models and
times a single simulator cell (the unit of the sweep).
"""

import pytest

from benchmarks.conftest import report_result
from repro.experiments import fig4
from repro.hw.config import lw_config
from repro.hw.simulator import HybridSimulator
from repro.quant.schemes import INT4
from repro.snn import make_encoder


@pytest.fixture(scope="module")
def fig4_result(ctx):
    result = fig4.run(ctx)
    report_result("fig4_energy", result.render())
    return result


class TestFig4Shape:
    def test_int4_cheaper_everywhere(self, fig4_result):
        """The paper's Fig. 4 shape: int4 beats fp32 in every cell."""
        for table in fig4_result.tables:
            fp32 = table.column("fp32")
            int4 = table.column("int4")
            for config, f, q in zip(table.column("config"), fp32, int4):
                assert q < f, f"{table.title} {config}: int4 {q} >= fp32 {f}"

    def test_perf_configs_cost_less_energy_than_lw(self, fig4_result):
        """More cores -> shorter busy time; the paper reports perf4 at
        28-52% below LW. Energy should not grow with scaling."""
        for table in fig4_result.tables:
            int4 = table.column("int4")
            assert int4[2] <= int4[0] * 1.4  # perf4 vs lw, generous band

    def test_average_improvement_reported(self, fig4_result):
        for comparison in fig4_result.comparisons:
            row = comparison.rows[0]
            assert row.measured_value > 1.0


def bench_one_cell(ctx):
    model = ctx.trained("cifar10", "int4")
    config = lw_config("cifar10", scheme=INT4)
    images, labels = ctx.sim_images("cifar10")
    report = HybridSimulator(model, config).run(
        images, ctx.timesteps_for("direct"), make_encoder("direct"), labels
    )
    return report.energy_mj


def test_bench_fig4_simulation_cell(benchmark, ctx, fig4_result):
    """Times one (dataset, scheme, config) simulation cell of the sweep."""
    energy = benchmark.pedantic(
        bench_one_cell, args=(ctx,), rounds=3, iterations=1
    )
    assert energy > 0
