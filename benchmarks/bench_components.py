"""Micro-benchmarks of the core computational kernels.

Not a paper table -- these keep an eye on the substrate itself: the conv
engine, the LIF step, the event-driven golden sim, the dense-core
operational model, and a full training step. Regressions here make every
experiment slower.
"""

import numpy as np
import pytest

from repro.hw.compression import compression_cycles_batch
from repro.hw.dense_core import DenseCoreModel
from repro.hw.event_sim import EventDrivenLayerSim
from repro.snn import Trainer, TrainingConfig, build_network
from repro.snn.neuron import LIFNeuron
from repro.tensor import Tensor, ops, parameter


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_bench_conv2d_forward(benchmark, rng):
    x = Tensor(rng.random((16, 32, 16, 16)).astype(np.float32))
    w = Tensor(rng.normal(size=(64, 32, 3, 3)).astype(np.float32))
    result = benchmark(ops.conv2d, x, w, None, 1, 1)
    assert result.shape == (16, 64, 16, 16)


def test_bench_conv2d_backward(benchmark, rng):
    x = parameter(rng.random((8, 16, 16, 16)))
    w = parameter(rng.normal(size=(32, 16, 3, 3)) * 0.1)

    def step():
        x.zero_grad()
        w.zero_grad()
        out = ops.conv2d(x, w, None, 1, 1)
        out.backward(np.ones(out.shape, dtype=np.float32))
        return w.grad

    grad = benchmark(step)
    assert grad.shape == (32, 16, 3, 3)


def test_bench_lif_step(benchmark, rng):
    neuron = LIFNeuron()
    current = Tensor(rng.normal(size=(32, 64, 16, 16)).astype(np.float32))

    def step():
        return neuron.step(current, None)

    spikes, _ = benchmark(step)
    assert spikes.shape == (32, 64, 16, 16)


def test_bench_compression_kernel_large(benchmark, rng):
    trains = (rng.random((64, 112, 256)) < 0.15).astype(np.float32)
    cycles = benchmark(compression_cycles_batch, trains, 32)
    assert cycles.shape == (64, 112)


def test_bench_event_sim(benchmark, rng):
    spikes = (rng.random((16, 16, 16)) < 0.1).astype(np.float32)
    weight = rng.normal(size=(32, 16, 3, 3)).astype(np.float32)
    sim = EventDrivenLayerSim(nc_count=4)
    result = benchmark(sim.run_conv, spikes, weight)
    assert result.membrane.shape == (32, 16, 16)


def test_bench_dense_core_operational(benchmark, rng):
    frame = rng.random((3, 32, 32)).astype(np.float32)
    weight = rng.normal(size=(64, 3, 3, 3)).astype(np.float32)
    bias = np.zeros(64, dtype=np.float32)
    model = DenseCoreModel(rows=4)
    membrane, timing = benchmark(model.run_layer, frame, weight, bias)
    assert membrane.shape == (64, 32, 32)
    assert timing.total_cycles > 0


def test_bench_training_step(benchmark, rng):
    net = build_network("8C3-MP2-16C3-MP2-40", (3, 8, 8), 10, seed=0)
    trainer = Trainer(net, TrainingConfig(epochs=1, seed=0))
    images = rng.random((32, 3, 8, 8)).astype(np.float32)
    labels = rng.integers(0, 10, size=32)
    encoder = trainer._make_encoder()

    def step():
        return trainer._step(images, labels, encoder)

    loss, _correct = benchmark(step)
    assert np.isfinite(loss)
