"""Table I bench: paper-scale area utilization and power estimation.

Regenerates the per-layer LUT/FF/BRAM/URAM/power rows for both precisions
at full paper dimensions and times the analytic estimation pass.
"""

import pytest

from benchmarks.conftest import report_result
from repro.experiments import table1
from repro.hw.config import AcceleratorConfig, PAPER_TABLE1_ALLOCATION
from repro.hw.power import PowerModel
from repro.hw.resources import ResourceEstimator
from repro.quant.schemes import INT4


@pytest.fixture(scope="module")
def table1_result(ctx):
    result = table1.run(ctx)
    report_result("table1_resources", result.render())
    return result


@pytest.fixture(scope="module")
def paper_network():
    return table1.paper_scale_network(INT4)


class TestTable1Shape:
    def test_int4_uses_no_uram(self, table1_result):
        int4_table = table1_result.tables[0]
        assert all(v == 0 for v in int4_table.column("URAM"))

    def test_fp32_power_exceeds_int4(self, table1_result):
        ratios = next(
            c for c in table1_result.comparisons if "ratio" in c.name.lower()
        )
        power_row = next(
            r for r in ratios.rows if "power" in r.metric.lower()
        )
        assert power_row.measured_value > 1.5  # paper: 2.82x

    def test_lut_gap(self, table1_result):
        ratios = next(
            c for c in table1_result.comparisons if "ratio" in c.name.lower()
        )
        lut_row = next(r for r in ratios.rows if "LUT" in r.metric)
        assert lut_row.measured_value > 3.0  # paper: ~8x

    def test_conv1_2_dominates_fp32_luts(self, table1_result):
        fp32_table = next(
            t for t in table1_result.tables if "fp32" in t.title
        )
        layers = fp32_table.column("layer")
        luts = fp32_table.column("LUT")
        by_layer = dict(zip(layers, luts))
        others = [v for k, v in by_layer.items() if k not in ("conv1_2", "total")]
        assert by_layer["conv1_2"] > max(others)


def bench_estimation(paper_network):
    config = AcceleratorConfig(
        name="bench", allocation=PAPER_TABLE1_ALLOCATION, scheme=INT4
    )
    estimate = ResourceEstimator(config).estimate(paper_network, 2)
    power = PowerModel(config).estimate(estimate)
    return estimate.total_luts, power.dynamic_w


def test_bench_table1_estimation(benchmark, paper_network, table1_result):
    """Times the full-design resource+power estimation at paper scale."""
    luts, watts = benchmark.pedantic(
        bench_estimation, args=(paper_network,), rounds=5, iterations=1
    )
    assert luts > 0 and watts > 0
