"""The fused, event-driven inference engine.

Executes a :class:`~repro.runtime.plan.NetworkPlan` layer-major: for each
layer the full ``(T, N, ...)`` input train is turned into currents in one
or two kernel calls (time folded into the batch axis), the LIF state scan
runs sequentially over ``T`` on the fused tensor, and the spike train
feeds the next layer. Because the network is feed-forward and LIF state
is purely per-layer, this reordering of the legacy time-major loop is
exact.

Per layer and timestep the dispatcher measures input activity and routes
the step to the dense gather-matmul kernel or the event-driven scatter
kernel (see :mod:`repro.runtime.kernels`); both are calibrated
bit-identical -- for deep conv shapes via the canonical blocked k-fold,
which both kernels share -- so dispatch never changes results, only
speed. Which fold a layer uses is a pure function of the layer shape and
``event_kblock``; the routing knobs (``force_path``,
``dispatch_threshold``, ``dispatch_policy``) choose between
already-bit-identical kernels. Under ``dispatch_policy='cost'``
(default) eligible timesteps are routed by predicted wall time from the
measured per-layer cost model (:mod:`repro.runtime.costmodel`), and
every dense decision is attributed to its cause (density, cost,
calibration, forced) in the layer counters. The engine also memoises the
first-layer current under time-invariant encodings (direct coding
presents the same frame every timestep), which removes ``(T-1)/T`` of
the dense-core work outright.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.config import LayerCounters, RuntimeConfig, runtime_config
from repro.runtime.costmodel import ensure_cost_state, ensure_int_rates
from repro.runtime.kernels import (
    BufferPool,
    calibrate_int_exact,
    dense_conv,
    dense_conv_int,
    dense_fc,
    event_conv,
    event_conv_blocked,
    event_conv_int,
    or_pool,
    resolve_event_backend,
    resolve_event_block,
)
from repro.runtime.plan import LayerPlan, NetworkPlan
from repro.snn.metrics import SpikeStats
from repro.snn.neuron import lif_scan

_UNRESOLVED = object()


def stack_encoder_frames(encoder, images: np.ndarray, timesteps: int, record: bool = False):
    """Encode ``images`` for every timestep into one (T, N, ...) array.

    Time-invariant encodings (direct coding) are encoded once and
    broadcast -- zero copies for the T-fold repetition. When ``record``
    is set the base frame is copied first: recorded trains are handed
    back to the caller and must not alias the caller's image buffer
    (the legacy loops copied every recorded frame).

    The first-layer memoisation this enables keys on the declared
    *stream* property (``time_invariant``, shared by every encoder with
    the same ``stream_signature()``) -- never on the identity of a
    particular encoder object, so re-materialised worker-side encoders
    and the parent's original memoise identically.

    Returns ``(stacked, time_invariant)``.
    """
    encoder.reset()
    time_invariant = bool(getattr(encoder, "time_invariant", False))
    if time_invariant:
        base = encoder.encode(images, 0).data
        if record:
            base = base.copy()
        return np.broadcast_to(base, (timesteps,) + base.shape), True
    stacked = np.stack(
        [encoder.encode(images, t).data for t in range(timesteps)]
    )
    return stacked, False


@dataclass
class RuntimeResult:
    """Everything one engine pass produces.

    ``trains`` holds the exact per-layer input trains as stacked
    ``(T, N, ...)`` arrays (views are shared with engine internals; do
    not mutate). ``counters`` records the dispatcher's dense/event split.
    """

    accumulated: np.ndarray  # (N, population) output spike counts
    stats: SpikeStats
    input_totals: Dict[str, float]
    trains: Optional[Dict[str, np.ndarray]] = None
    counters: Dict[str, LayerCounters] = field(default_factory=dict)


class InferenceEngine:
    """Runs a lowered network plan over stacked encoder output."""

    def __init__(
        self,
        plan: NetworkPlan,
        config: Optional[RuntimeConfig] = None,
        buffers: Optional[BufferPool] = None,
    ) -> None:
        self.plan = plan
        self.config = config
        self.buffers = buffers if buffers is not None else BufferPool()
        self._block_by_layer: Dict[str, Optional[int]] = {}
        self._int_by_layer: Dict[str, Tuple[bool, bool, Optional[str]]] = {}

    def _config(self) -> RuntimeConfig:
        return self.config if self.config is not None else runtime_config()

    def _layer_block(self, layer: LayerPlan) -> Optional[int]:
        """The layer's calibrated fold: ``None`` (no exact event config,
        dense fallback on the unblocked fold), ``0`` (unblocked event
        path exact) or a block size.

        A pure function of (shape, ``event_kblock``, backend) -- never of
        the routing knobs -- so forcing a path or changing the dispatch
        policy can never change which fold a layer computes with. This
        is deliberate even for dense-only configurations
        (``force_path='dense'``, threshold 0): they pay the one-time
        resolution probes and the slightly slower blocked dense GEMM on
        deep shapes so their results stay bit-comparable with routed
        runs -- the property every equivalence test and determinism gate
        relies on. Opting a deployment out of blocking entirely is what
        ``event_kblock=0`` is for.
        """
        cached = self._block_by_layer.get(layer.name, _UNRESOLVED)
        if cached is not _UNRESOLVED:
            return cached
        config = self._config()
        block = resolve_event_block(
            layer,
            resolve_event_backend(config.event_backend),
            config.event_kblock,
        )
        self._block_by_layer[layer.name] = block
        return block

    def _layer_int(
        self, layer: LayerPlan, block: Optional[int]
    ) -> Tuple[bool, bool, Optional[str]]:
        """The layer's integer-datapath decision:
        ``(event_int, dense_int, fallback_reason)``.

        ``event_int`` / ``dense_int`` say whether that flavour of the
        layer's binary conv steps runs with int32 accumulation;
        ``fallback_reason`` attributes steps that stayed float on an
        int-lowered layer (``'overflow'``, ``'exactness'``, ``'cost'``,
        or ``None`` when nothing fell back -- including layers that
        carry no lowering at all).

        Resolution order (``int_kernels``): ``'off'`` never routes to
        int. ``'on'`` forces both flavours whenever the overflow bound
        holds -- integer accumulation is associative, so any
        dense/event/batch split still yields identical results, but they
        may differ from the float reference when the exactness probe
        would have failed. ``'auto'`` is exactness-preserving: the
        overflow bound and the per-layer bit-exactness probe must pass;
        then under ``dispatch_policy='cost'`` the measured int rates
        pick each flavour, while under ``'density'`` the int event
        kernel is preferred deterministically (counters stay
        byte-comparable across geometries) and dense steps keep the
        BLAS-backed float GEMM.
        """
        cached = self._int_by_layer.get(layer.name)
        if cached is not None:
            return cached
        config = self._config()
        mode = config.int_kernels
        event_int = dense_int = False
        reason: Optional[str] = None
        if mode != "off" and layer.kind == "conv" and layer.has_int_lowering:
            backend = resolve_event_backend(config.event_backend)
            if not layer.int_overflow_ok:
                reason = "overflow"
            elif mode == "on":
                event_int = dense_int = True
            elif not calibrate_int_exact(layer, backend, block):
                reason = "exactness"
            elif config.dispatch_policy == "cost":
                state = ensure_int_rates(layer, backend, block or None)
                event_int = state.int_event_preferred()
                dense_int = state.int_dense_preferred()
                if not (event_int and dense_int):
                    reason = "cost"
            else:
                event_int = True
        result = (event_int, dense_int, reason)
        self._int_by_layer[layer.name] = result
        return result

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        stacked: np.ndarray,
        record: bool = False,
        analog_first: bool = False,
        time_invariant: bool = False,
    ) -> RuntimeResult:
        """Execute the plan on stacked input of shape (T, N, C, H, W).

        Args:
            stacked: encoder output for every timestep (a broadcast view
                is fine when the encoding is time-invariant).
            record: keep each layer's input train.
            analog_first: first layer consumes analog (non-binary) input
                (direct coding) and must never take the event path.
            time_invariant: every timestep of ``stacked`` is the same
                frame, enabling first-layer current memoisation.
        """
        plan = self.plan
        config = self._config()
        timesteps, samples = stacked.shape[0], stacked.shape[1]
        stats = SpikeStats(samples=samples, timesteps=timesteps)
        input_totals: Dict[str, float] = {}
        trains: Optional[Dict[str, np.ndarray]] = {} if record else None
        counters: Dict[str, LayerCounters] = {}
        # Density scans only matter when the dispatcher can actually
        # route away from the dense kernel.
        dispatch_possible = config.force_path != "dense" and (
            config.force_path == "event" or config.dispatch_threshold > 0.0
        )
        x = stacked
        for layer in plan.layers:
            if trains is not None:
                trains[layer.name] = x
            # Per-timestep activity scan: reused for the legacy-ordered
            # input totals, the density dispatch, and the binary check.
            # A time-invariant first layer scans its one frame once.
            invariant = time_invariant and layer.is_input_layer
            if invariant:
                t_sums = [float(x[0].sum())] * timesteps
            else:
                t_sums = [float(x[t].sum()) for t in range(timesteps)]
            if not dispatch_possible:
                t_nnz = None
            elif invariant:
                t_nnz = [int(np.count_nonzero(x[0]))] * timesteps
            else:
                t_nnz = [int(np.count_nonzero(x[t])) for t in range(timesteps)]
            total = 0.0
            for value in t_sums:
                total = total + value
            input_totals[layer.name] = total
            layer_counter = counters.setdefault(layer.name, LayerCounters())
            current = self._layer_current(
                layer,
                x,
                t_sums,
                t_nnz,
                analog=analog_first and layer.is_input_layer,
                time_invariant=time_invariant and layer.is_input_layer,
                counter=layer_counter,
            )
            if layer.has_bn:
                current = (current - layer.bn_mu) * layer.bn_inv_std
                current = current * layer.bn_gamma + layer.bn_beta
            spikes, _ = lif_scan(
                current, plan.beta, plan.threshold, plan.spike_rule
            )
            for t in range(timesteps):
                stats.record(layer.name, t, spikes[t])
            x = spikes
            if layer.pool_after > 1:
                flat = x.reshape((timesteps * samples,) + x.shape[2:])
                pooled = or_pool(flat, layer.pool_after)
                x = pooled.reshape((timesteps, samples) + pooled.shape[1:])
        accumulated = np.zeros(
            (samples, plan.layers[-1].out_channels), dtype=np.float32
        )
        flat_out = x.reshape(timesteps, samples, -1)
        for t in range(timesteps):
            accumulated += flat_out[t]
        return RuntimeResult(
            accumulated=accumulated,
            stats=stats,
            input_totals=input_totals,
            trains=trains,
            counters=counters,
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _layer_current(
        self,
        layer: LayerPlan,
        x: np.ndarray,
        t_sums: List[float],
        t_nnz: List[int],
        analog: bool,
        time_invariant: bool,
        counter: LayerCounters,
    ) -> np.ndarray:
        timesteps, samples = x.shape[0], x.shape[1]
        block = (
            self._layer_block(layer)
            if layer.kind == "conv" and not analog
            else None
        )
        int_eligible = (
            layer.kind == "conv" and not analog and layer.has_int_lowering
        )
        event_int, dense_int, int_reason = (
            self._layer_int(layer, block)
            if int_eligible
            else (False, False, None)
        )
        if time_invariant:
            cur0, used_event, updates, used_int, reason = self._batch_current(
                layer,
                x[0],
                t_sums[0],
                t_nnz[0] if t_nnz is not None else None,
                analog,
                block,
            )
            if used_event:
                counter.event_steps += timesteps
                counter.event_updates += updates
                if used_int:
                    counter.int_event_steps += timesteps
                    counter.int_event_updates += updates
                elif int_reason is not None and updates:
                    counter.count_float_fallback(int_reason, timesteps)
            else:
                counter.count_dense(reason, timesteps)
            return np.broadcast_to(cur0, (timesteps,) + cur0.shape)

        config = self._config()
        out_spatial = (
            (layer.out_channels, layer.geometry.oh, layer.geometry.ow)
            if layer.kind == "conv"
            else (layer.out_channels,)
        )
        if t_nnz is None:  # dispatch disabled: everything is dense
            reason = "forced" if config.force_path == "dense" else "density"
            if layer.kind != "conv" or analog:
                reason = None
            counter.count_dense(reason, timesteps)
            fused = x.reshape((timesteps * samples,) + x.shape[2:])
            use_int = False
            if dense_int:
                # The int dense kernel needs strictly binary input; with
                # the per-timestep scan disabled, check the fused batch.
                nnz = int(np.count_nonzero(fused))
                use_int = float(nnz) == sum(t_sums)
                if use_int:
                    counter.int_dense_steps += timesteps
            elif int_reason is not None:
                counter.count_float_fallback(int_reason, timesteps)
            return self._kernel_dense(layer, fused, block, use_int).reshape(
                (timesteps, samples) + out_spatial
            )
        slice_size = x[0].size
        # Timesteps with zero events short-circuit to a bias broadcast:
        # a GEMM over an all-zero input yields exact zeros under *any*
        # BLAS fold, so this is bit-exact without calibration (and it is
        # where near-silent deep layers spend most of their steps). The
        # integer path agrees by construction: a zero accumulator
        # dequantizes to exactly the bias.
        empty_ts: List[int] = []
        event_ts: List[int] = []
        dense_ts: List[int] = []
        dense_binary = True  # every routed dense step had binary input
        for t in range(timesteps):
            if t_nnz[t] == 0:
                empty_ts.append(t)
                continue
            use_event, reason = self._classify_step(
                config, layer, block, analog,
                t_sums[t], t_nnz[t], slice_size, samples,
            )
            if use_event:
                event_ts.append(t)
            else:
                dense_ts.append(t)
                counter.count_dense(reason)
                if float(t_nnz[t]) != t_sums[t]:
                    dense_binary = False
        counter.event_steps += len(event_ts) + len(empty_ts)
        # Dense steps run the int flavour only when the whole fused dense
        # batch is binary (one kernel call either way).
        use_int_dense = dense_int and bool(dense_ts) and dense_binary
        if event_ts:
            if event_int:
                counter.int_event_steps += len(event_ts)
            elif int_reason is not None:
                counter.count_float_fallback(int_reason, len(event_ts))
        if dense_ts and int_eligible and dense_binary:
            if use_int_dense:
                counter.int_dense_steps += len(dense_ts)
            elif int_reason is not None:
                counter.count_float_fallback(int_reason, len(dense_ts))
        bias_cast = layer.bias.reshape(
            (1, 1, -1) + (1,) * (len(out_spatial) - 1)
        )
        if not dense_ts and not event_ts:
            return np.broadcast_to(bias_cast, (timesteps, samples) + out_spatial)
        if not event_ts and not empty_ts:
            fused = x.reshape((timesteps * samples,) + x.shape[2:])
            return self._kernel_dense(layer, fused, block, use_int_dense).reshape(
                (timesteps, samples) + out_spatial
            )
        if not dense_ts and not empty_ts:
            fused = x.reshape((timesteps * samples,) + x.shape[2:])
            cur, updates = self._kernel_event(layer, fused, block, event_int)
            counter.event_updates += updates
            if event_int:
                counter.int_event_updates += updates
            return cur.reshape((timesteps, samples) + out_spatial)
        current = np.empty((timesteps, samples) + out_spatial, dtype=np.float32)
        if empty_ts:
            current[empty_ts] = bias_cast[0]
        if dense_ts:
            batch_d = x[dense_ts].reshape((-1,) + x.shape[2:])
            current[dense_ts] = self._kernel_dense(
                layer, batch_d, block, use_int_dense
            ).reshape((len(dense_ts), samples) + out_spatial)
        if event_ts:
            batch_e = x[event_ts].reshape((-1,) + x.shape[2:])
            cur_e, updates = self._kernel_event(layer, batch_e, block, event_int)
            counter.event_updates += updates
            if event_int:
                counter.int_event_updates += updates
            current[event_ts] = cur_e.reshape(
                (len(event_ts), samples) + out_spatial
            )
        return current

    def _classify_step(
        self,
        config: RuntimeConfig,
        layer: LayerPlan,
        block: Optional[int],
        analog: bool,
        t_sum: float,
        nnz: int,
        size: int,
        samples: int,
    ) -> Tuple[bool, Optional[str]]:
        """Route one layer-timestep: ``(use_event, dense_reason)``.

        ``dense_reason`` attributes a dense decision for the counters:
        ``None`` (ineligible by construction), ``'forced'``,
        ``'density'``, ``'calibration'`` or ``'cost'``.
        """
        if layer.kind != "conv" or analog or size == 0:
            return False, None
        binary = float(nnz) == t_sum  # non-negative spikes: sum==nnz <=> {0,1}
        if not binary:
            return False, None
        if config.force_path == "dense":
            return False, "forced"
        if config.force_path == "event":
            # Never dispatch to a shape without a calibrated bit-exact
            # event configuration (see kernels docs).
            if block is None:
                return False, "calibration"
            return True, None
        if config.dispatch_threshold <= 0.0:
            return False, "density"
        if (
            config.dispatch_threshold < 1.0
            and nnz / size > config.dispatch_threshold
        ):
            return False, "density"
        if block is None:
            return False, "calibration"
        if config.dispatch_policy == "cost" and config.dispatch_threshold < 1.0:
            backend = resolve_event_backend(config.event_backend)
            state = ensure_cost_state(layer, backend, block or None)
            updates = nnz * layer.geometry.avg_taps
            if state.predict_event_ms(updates) > state.predict_dense_ms(samples):
                return False, "cost"
        return True, None

    def _batch_current(self, layer, xb, b_sum, b_nnz, analog, block):
        """Single-batch current with dispatch (time-invariant memo path).

        Returns ``(current, used_event, updates, used_int, dense_reason)``.
        """
        config = self._config()
        if b_nnz is not None:
            if b_nnz == 0 and layer.kind == "conv" and not analog:
                # Empty-input shortcut, same as the per-timestep path.
                bias_cast = layer.bias.reshape(
                    (1, -1) + (1,) * (xb.ndim - 2)
                )
                shape = (xb.shape[0], layer.out_channels,
                         layer.geometry.oh, layer.geometry.ow)
                return np.broadcast_to(bias_cast, shape), True, 0, False, None
            use_event, reason = self._classify_step(
                config, layer, block, analog, b_sum, b_nnz, xb.size,
                xb.shape[0],
            )
            if use_event:
                event_int, _, _ = (
                    self._layer_int(layer, block)
                    if layer.has_int_lowering
                    else (False, False, None)
                )
                cur, updates = self._kernel_event(layer, xb, block, event_int)
                return cur, True, updates, event_int, None
        else:
            reason = "forced" if config.force_path == "dense" else "density"
            if layer.kind != "conv" or analog:
                reason = None
        return self._kernel_dense(layer, xb, block), False, 0, False, reason

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _kernel_dense(
        self,
        layer: LayerPlan,
        batch: np.ndarray,
        block: Optional[int] = None,
        use_int: bool = False,
    ) -> np.ndarray:
        if layer.kind == "conv":
            start = time.perf_counter()  # repro: lint-ok[D102] cost-model EMA measurement; never reaches results
            if use_int:
                out = dense_conv_int(
                    layer,
                    batch,
                    buffers=self.buffers,
                    max_elements=self._config().max_fused_elements,
                )
            else:
                out = dense_conv(
                    layer,
                    batch,
                    buffers=self.buffers,
                    max_elements=self._config().max_fused_elements,
                    kblock=block if block else None,
                )
            state = layer.cost_state
            if state is not None:
                ms = (time.perf_counter() - start) * 1e3  # repro: lint-ok[D102] cost-model EMA measurement; never reaches results
                if use_int:
                    state.observe_int_dense(ms, batch.shape[0])
                else:
                    state.observe_dense(ms, batch.shape[0])
            return out
        return dense_fc(layer, batch.reshape(batch.shape[0], -1))

    def _kernel_event(
        self,
        layer: LayerPlan,
        batch: np.ndarray,
        block: Optional[int] = None,
        use_int: bool = False,
    ):
        backend = resolve_event_backend(self._config().event_backend)
        start = time.perf_counter()  # repro: lint-ok[D102] cost-model EMA measurement; never reaches results
        if use_int:
            # No blocked variant: integer accumulation is associative,
            # so the unblocked scatter is exact at every depth.
            result = event_conv_int(layer, batch, backend)
        else:
            if block:
                result = event_conv_blocked(layer, batch, backend, block)
            else:
                result = event_conv(layer, batch, backend)
        state = layer.cost_state
        if state is not None:
            ms = (time.perf_counter() - start) * 1e3  # repro: lint-ok[D102] cost-model EMA measurement; never reaches results
            if use_int:
                state.observe_int_event(ms, result[1])
            else:
                state.observe_event(ms, result[1])
        return result
