"""Measured dispatch-cost model for the dense/event kernel choice.

A density threshold answers "is the event path *legal and plausibly*
cheaper here"; it cannot answer "is it *actually* cheaper on this
machine for this layer". The two diverge exactly where the blocked
k-fold matters most: on deep conv shapes the dense GEMM is large but
perfectly amortised, while the scatter cost scales with events x taps --
at 5% density the event path can lose by 1.5x on the same shape where it
wins by 5x at 0.5% (measured in ``BENCH_runtime.json``'s
``blocked_scatter`` section). The dispatcher therefore tracks, per
layer:

* ``dense_ms_per_sample`` -- wall time of the dense kernel divided by
  the fused batch it processed, and
* ``event_ms_per_update`` -- wall time of the event kernel divided by
  the scatter contributions (events x in-bounds taps) it accumulated,

both seeded by a one-shot probe on the layer's real shape (so the very
first routed timestep already has a calibrated estimate) and refined
online with an exponential moving average every time a kernel actually
runs. A timestep is routed to the event path when

    predicted_updates * event_ms_per_update <= samples * dense_ms_per_sample

with ``predicted_updates = nnz * geometry.avg_taps`` (the expected
scatter contributions for the observed input activity).

Both kernels are calibrated bit-identical before any of this applies, so
cost routing can only ever change *speed*. It does make the dispatch
*counters* wall-clock dependent -- contexts that byte-compare counters
pin ``dispatch_policy='density'`` (see :class:`RuntimeConfig`).

Persistence: ``network-plan-v3`` sidecars (:mod:`repro.runtime.plan_io`)
carry each event-eligible layer's probe-seeded rates, gated by the same
environment fingerprint as the calibration verdicts, so cold-started
workers skip the seeding probe GEMMs and their first routed timestep is
already informed by measured rates (then refined online as usual).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.runtime.plan import LayerPlan
from repro.utils.rng import new_rng

#: EMA weight of a new online observation (probe seeds count as the
#: first observation). High enough to adapt within a few calls, low
#: enough that one scheduling hiccup cannot flip the routing.
EMA_ALPHA = 0.3

#: Input density of the one-shot seeding probe. Sparse enough that the
#: event side is exercised in its intended regime, dense enough that it
#: accumulates a measurable number of updates on every shape.
PROBE_DENSITY = 0.05

#: Samples in the seeding probe's batch. A single sample would charge
#: the dense kernel's fixed setup (im2col, GEMM launch) entirely to one
#: sample's rate; a small batch amortizes it closer to the fused-batch
#: rates real calls see.
PROBE_BATCH = 4


@dataclass
class LayerCostState:
    """Measured per-layer kernel rates (milliseconds).

    The ``int_*`` rates cover the integer kernels of int-lowered layers;
    they stay ``None`` until :func:`ensure_int_rates` probes them (or a
    v4 sidecar seeds them), so float-only layers and v3 sidecars carry
    no dead fields.
    """

    dense_ms_per_sample: float
    event_ms_per_update: float
    int_dense_ms_per_sample: Optional[float] = None
    int_event_ms_per_update: Optional[float] = None

    def predict_dense_ms(self, samples: int) -> float:
        return self.dense_ms_per_sample * samples

    def predict_event_ms(self, updates: float) -> float:
        return self.event_ms_per_update * updates

    def observe_dense(self, ms: float, samples: int) -> None:
        if samples < 1 or ms <= 0.0:
            return
        rate = ms / samples
        self.dense_ms_per_sample += EMA_ALPHA * (rate - self.dense_ms_per_sample)

    def observe_event(self, ms: float, updates: int) -> None:
        if updates < 1 or ms <= 0.0:
            return
        rate = ms / updates
        self.event_ms_per_update += EMA_ALPHA * (rate - self.event_ms_per_update)

    def observe_int_dense(self, ms: float, samples: int) -> None:
        if samples < 1 or ms <= 0.0 or self.int_dense_ms_per_sample is None:
            return
        rate = ms / samples
        self.int_dense_ms_per_sample += EMA_ALPHA * (
            rate - self.int_dense_ms_per_sample
        )

    def observe_int_event(self, ms: float, updates: int) -> None:
        if updates < 1 or ms <= 0.0 or self.int_event_ms_per_update is None:
            return
        rate = ms / updates
        self.int_event_ms_per_update += EMA_ALPHA * (
            rate - self.int_event_ms_per_update
        )

    def int_event_preferred(self) -> bool:
        """True when the measured int event rate beats the float one.

        Per-update rates compare directly (same updates either way), so
        no predicted workload is needed for the flavour choice -- only
        for the dense-vs-event choice that precedes it.
        """
        return (
            self.int_event_ms_per_update is not None
            and self.int_event_ms_per_update <= self.event_ms_per_update
        )

    def int_dense_preferred(self) -> bool:
        return (
            self.int_dense_ms_per_sample is not None
            and self.int_dense_ms_per_sample <= self.dense_ms_per_sample
        )


def probe_cost_state(
    layer: LayerPlan, backend: str, kblock: Optional[int]
) -> LayerCostState:
    """One-shot timing probe of both kernels on ``layer``'s real shape.

    Runs the exact kernel variants the dispatcher would run (blocked
    when the layer resolved to a blocked fold) on a small random binary
    batch, so the seeded rates reflect this process, this BLAS and this
    cache state. Deterministic inputs; the timings of course are not --
    which is the point.

    The seed is still an estimate: real dense calls fuse larger batches
    and amortize better than even a :data:`PROBE_BATCH`-sample probe, so
    the seeded dense rate errs *high* -- which biases borderline steps
    toward the event path, i.e. toward exactly what the pre-cost-model
    density policy always did. Layers with any above-threshold (or
    cost-vetoed) timesteps then refine the dense rate from real
    observations; layers that never run dense keep at worst the
    historical routing, never something slower than it.
    """
    from repro.runtime.kernels import (
        dense_conv,
        event_conv,
        event_conv_blocked,
    )

    g = layer.geometry
    rng = new_rng(0x5EED)
    probe = (
        rng.random((PROBE_BATCH, g.cin, g.height, g.width)) < PROBE_DENSITY
    ).astype(np.float32)

    start = time.perf_counter()
    dense_conv(layer, probe, kblock=kblock if kblock else None)
    dense_ms = (time.perf_counter() - start) * 1e3

    start = time.perf_counter()
    if kblock:
        _, updates = event_conv_blocked(layer, probe, backend, kblock)
    else:
        _, updates = event_conv(layer, probe, backend)
    event_ms = (time.perf_counter() - start) * 1e3

    return LayerCostState(
        dense_ms_per_sample=max(dense_ms, 1e-6) / PROBE_BATCH,
        event_ms_per_update=max(event_ms, 1e-6) / max(updates, 1),
    )


def probe_int_rates(layer: LayerPlan, backend: str) -> "tuple[float, float]":
    """One-shot timing probe of both integer kernels on ``layer``.

    Same probe input discipline as :func:`probe_cost_state` (same seed,
    density and batch), so the int and float rates are measured on
    comparable workloads.
    """
    from repro.runtime.kernels import dense_conv_int, event_conv_int

    g = layer.geometry
    rng = new_rng(0x5EED)
    probe = (
        rng.random((PROBE_BATCH, g.cin, g.height, g.width)) < PROBE_DENSITY
    ).astype(np.float32)

    start = time.perf_counter()
    dense_conv_int(layer, probe)
    dense_ms = (time.perf_counter() - start) * 1e3

    start = time.perf_counter()
    _, updates = event_conv_int(layer, probe, backend)
    event_ms = (time.perf_counter() - start) * 1e3

    return (
        max(dense_ms, 1e-6) / PROBE_BATCH,
        max(event_ms, 1e-6) / max(updates, 1),
    )


def ensure_int_rates(
    layer: LayerPlan, backend: str, kblock: Optional[int]
) -> LayerCostState:
    """The layer's cost state with integer rates populated.

    Probes the integer kernels on first use for a layer whose state (or
    seeded sidecar rates) lacks them; float rates are ensured first so
    both sides of the flavour comparison exist.
    """
    state = ensure_cost_state(layer, backend, kblock)
    if state.int_event_ms_per_update is None:
        dense_rate, event_rate = probe_int_rates(layer, backend)
        state.int_dense_ms_per_sample = dense_rate
        state.int_event_ms_per_update = event_rate
    return state


def ensure_cost_state(
    layer: LayerPlan, backend: str, kblock: Optional[int]
) -> LayerCostState:
    """The layer's cost state, probing it on first use.

    Stored on the :class:`LayerPlan` so the estimate survives across
    engine instances (one is built per forward call) for as long as the
    plan is cached, and is rebuilt -- cheaply, one probe -- whenever the
    plan is relowered or a worker materialises it from a sidecar.
    """
    state = layer.cost_state
    if state is None:
        state = probe_cost_state(layer, backend, kblock)
        layer.cost_state = state
    return state
