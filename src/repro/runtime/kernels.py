"""Dense and event-driven layer kernels used by the inference engine.

Both kernels compute the same layer current and are bit-identical on
binary spike inputs, so the density dispatcher can switch freely:

* the **dense** kernel gathers im2col columns with the plan's cached
  index vector and issues one BLAS matmul for the whole fused batch;
* the **event** kernel extracts active spike coordinates, expands them
  into (im2col-row, output-position) contributions through the plan's
  inverse tap tables, and scatter-accumulates the corresponding weight
  columns -- the software twin of the ECU + accumulation pipeline.

Bit-exactness of the event path rests on the accumulation order: when
BLAS folds each output element over ``k`` in ascending order with a
single accumulator, skipping the zero terms of a binary input cannot
change a float32 partial sum (beyond the sign of an exact zero), and the
scatter backends preserve that order -- CSR rows store ascending column
indices, and the ``np.add.at`` fallback is applied to ``(row, k)``-sorted
contributions. Which fold a GEMM uses, however, depends on the BLAS
kernel selected for the layer's shape (large-``k`` and FC-shaped GEMMs
may split ``k`` over several accumulator lanes). The runtime therefore
*calibrates* each conv layer shape once per process --
:func:`calibrate_event_exact` probes the scatter kernel against the
dense kernel on random binary inputs -- and the dispatcher only ever
routes layers to the event path after their shape has proven
bit-identical in this environment.

Deep conv shapes (``K >= ~500`` in this environment) fail that unblocked
probe: their full-``K`` GEMM folds multi-lane. For them the runtime
switches both kernels to a **canonical blocked k-fold**: the im2col
reduction is split into fixed-size k-blocks, each block is reduced on
its own (a small block GEMM on the dense side, a per-block scatter on
the event side), and the per-block partial sums are folded in the same
ascending block order by both kernels. Bit-exactness then only requires
the *within-block* GEMM to fold single-lane, which holds for small
enough blocks; :func:`calibrate_event_block` probes candidate block
sizes largest-first and picks the biggest one that proves exact, so the
event path stays open at any depth -- the software twin of the blocked
event-accumulation pipelines in sparse-SNN accelerators (Sommer et al.,
ExSpike). FC layers always take the dense path: their single small GEMM
is negligible host cost and their BLAS shape is the multi-lane one.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.runtime.plan import LayerPlan
from repro.utils.rng import new_rng

try:  # scipy ships with the image; gate anyway so the runtime degrades cleanly
    from scipy import sparse as _sparse
except Exception:  # pragma: no cover - exercised only without scipy
    _sparse = None


def resolve_event_backend(name: str) -> str:
    """Map an ``event_backend`` config value to a concrete backend."""
    if name == "auto":
        return "scipy" if _sparse is not None else "numpy"
    if name == "scipy" and _sparse is None:
        raise ConfigError("event_backend='scipy' requested but scipy is missing")
    return name


class BufferPool:
    """Reusable scratch arrays keyed by (tag, shape); one per network."""

    def __init__(self) -> None:
        self._buffers: Dict[Tuple, np.ndarray] = {}

    def get(self, tag: str, shape: Tuple[int, ...], dtype=np.float32) -> np.ndarray:
        key = (tag, shape, np.dtype(dtype).str)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[key] = buffer
        return buffer

    def clear(self) -> None:
        self._buffers.clear()


# ---------------------------------------------------------------------------
# Dense (time-fused) path
# ---------------------------------------------------------------------------

def dense_conv(
    layer: LayerPlan,
    x: np.ndarray,
    buffers: Optional[BufferPool] = None,
    max_elements: int = 1 << 24,
    kblock: Optional[int] = None,
) -> np.ndarray:
    """Unfold-matmul convolution over a fused (B, Cin, H, W) batch.

    The unfold copies sliding windows into the pooled im2col buffer (one
    strided C-level copy, measurably faster than an index gather) and a
    single batched matmul against the plan's cached weight matrix
    produces every output position for the whole fused batch. Batches
    whose im2col buffer would exceed ``max_elements`` are chunked --
    bit-exact either way, since per-sample GEMM results are independent
    of the batch split.

    With ``kblock`` set, the ``k`` reduction runs as the canonical
    blocked fold instead of one full-``K`` GEMM: one block GEMM per
    ``kblock``-sized slice of the im2col rows, partial sums accumulated
    in ascending block order. :func:`event_conv_blocked` folds the same
    partials in the same order, which is what makes the two bit-identical
    at shapes whose full-``K`` fold is multi-lane (see module docs).
    """
    g = layer.geometry
    batch = x.shape[0]
    cout = layer.out_channels
    kernel = g.kernel
    out = np.empty((batch, cout, g.p), dtype=np.float32)
    chunk = max(1, min(batch, max_elements // max(1, g.k * g.p)))
    tables = layer.block_tables(kblock) if kblock else None
    for start in range(0, batch, chunk):
        stop = min(batch, start + chunk)
        xc = x[start:stop]
        if g.padding:
            p = g.padding
            xc = np.pad(xc, ((0, 0), (0, 0), (p, p), (p, p)))
        windows = np.lib.stride_tricks.sliding_window_view(
            xc, (kernel, kernel), axis=(2, 3)
        )  # (b, Cin, OH, OW, K, K)
        if buffers is not None:
            cols = buffers.get("cols", (stop - start, g.k, g.p))
        else:
            cols = np.empty((stop - start, g.k, g.p), dtype=np.float32)
        np.copyto(
            cols.reshape(stop - start, g.cin, kernel, kernel, g.oh, g.ow),
            windows.transpose(0, 1, 4, 5, 2, 3),
        )
        out_chunk = out[start:stop]
        if tables is None or tables.nblocks == 1:
            np.matmul(layer.wmat, cols, out=out_chunk)
        else:
            if buffers is not None:
                partial = buffers.get("kpartial", out_chunk.shape)
            else:
                partial = np.empty(out_chunk.shape, dtype=np.float32)
            edges = tables.edges
            np.matmul(
                tables.wmat_blocks[0], cols[:, edges[0]:edges[1], :],
                out=out_chunk,
            )
            for i in range(1, tables.nblocks):
                np.matmul(
                    tables.wmat_blocks[i], cols[:, edges[i]:edges[i + 1], :],
                    out=partial,
                )
                np.add(out_chunk, partial, out=out_chunk)
    out = out.reshape(batch, cout, g.oh, g.ow)
    np.add(out, layer.bias.reshape(1, -1, 1, 1), out=out)
    return out


def dense_fc(layer: LayerPlan, x2d: np.ndarray) -> np.ndarray:
    """Fully connected current for a fused (B, Nin) batch."""
    out = x2d @ layer.wmat.T
    np.add(out, layer.bias, out=out)
    return out


# ---------------------------------------------------------------------------
# Event-driven path
# ---------------------------------------------------------------------------

def _scatter_columns(
    rows: np.ndarray,
    cols: np.ndarray,
    weight_rows: np.ndarray,
    n_rows: int,
    backend: str,
) -> np.ndarray:
    """Sum ``weight_rows[cols]`` into ``out[rows]`` in ascending-k order."""
    if backend == "scipy":
        matrix = _sparse.csr_matrix(
            (np.ones(rows.size, dtype=np.float32), (rows, cols)),
            shape=(n_rows, weight_rows.shape[0]),
        )
        return matrix @ weight_rows
    out = np.zeros((n_rows, weight_rows.shape[1]), dtype=np.float32)
    if rows.size:
        order = np.lexsort((cols, rows))
        np.add.at(out, rows[order], weight_rows[cols[order]])
    return out


def event_conv(
    layer: LayerPlan, x: np.ndarray, backend: str
) -> Tuple[np.ndarray, int]:
    """Event-driven convolution over a (B, Cin, H, W) binary batch.

    Returns the layer current and the number of scatter contributions
    (events x in-bounds taps) actually accumulated.
    """
    g = layer.geometry
    batch = x.shape[0]
    cout = layer.out_channels
    b_idx, pix = np.nonzero(x.reshape(batch, -1))
    updates = 0
    if b_idx.size == 0:
        out2d = np.zeros((batch * g.p, cout), dtype=np.float32)
    else:
        valid = g.contrib_valid[pix]
        k_all = g.contrib_k[pix][valid]
        q_all = (b_idx[:, None].astype(np.int64) * g.p + g.contrib_p[pix])[valid]
        updates = int(k_all.size)
        out2d = _scatter_columns(q_all, k_all, layer.wT, batch * g.p, backend)
    current = np.ascontiguousarray(
        out2d.reshape(batch, g.p, cout).transpose(0, 2, 1)
    ).reshape(batch, cout, g.oh, g.ow)
    np.add(current, layer.bias.reshape(1, -1, 1, 1), out=current)
    return current, updates


def event_conv_blocked(
    layer: LayerPlan, x: np.ndarray, backend: str, kblock: int
) -> Tuple[np.ndarray, int]:
    """Blocked event-driven convolution over a (B, Cin, H, W) binary batch.

    The event coordinates are extracted once, sorted by im2col row ``k``
    (stable, so the within-row order is untouched), and partitioned into
    ``kblock``-sized k-ranges with one ``searchsorted`` against the
    plan's precomputed block edges. Each block's contributions are
    scatter-accumulated against that block's contiguous weight slice --
    ascending ``k`` within the block, exactly as :func:`event_conv` does
    for the whole row range -- and the per-block partial sums are folded
    in ascending block order, mirroring the blocked dense fold term for
    term. Blocks that received no events are skipped: their dense-side
    partial is exactly zero, so the fold is unchanged (calibration
    probes sparse inputs and would catch any environment where it is
    not).

    Returns the layer current and the number of scatter contributions,
    exactly like :func:`event_conv`.
    """
    g = layer.geometry
    batch = x.shape[0]
    cout = layer.out_channels
    tables = layer.block_tables(kblock)
    n_rows = batch * g.p
    b_idx, pix = np.nonzero(x.reshape(batch, -1))
    updates = 0
    out2d: Optional[np.ndarray] = None
    if b_idx.size:
        valid = g.contrib_valid[pix]
        k_all = g.contrib_k[pix][valid]
        q_all = (b_idx[:, None].astype(np.int64) * g.p + g.contrib_p[pix])[valid]
        updates = int(k_all.size)
        order = np.argsort(k_all, kind="stable")
        k_sorted = k_all[order]
        q_sorted = q_all[order]
        edges = tables.edges
        splits = np.searchsorted(k_sorted, edges)
        for i in range(tables.nblocks):
            lo, hi = int(splits[i]), int(splits[i + 1])
            if lo == hi:
                continue
            partial = _scatter_columns(
                q_sorted[lo:hi],
                k_sorted[lo:hi] - edges[i],
                tables.wT_blocks[i],
                n_rows,
                backend,
            )
            if out2d is None:
                out2d = partial
            else:
                np.add(out2d, partial, out=out2d)
    if out2d is None:
        out2d = np.zeros((n_rows, cout), dtype=np.float32)
    current = np.ascontiguousarray(
        out2d.reshape(batch, g.p, cout).transpose(0, 2, 1)
    ).reshape(batch, cout, g.oh, g.ow)
    np.add(current, layer.bias.reshape(1, -1, 1, 1), out=current)
    return current, updates


# ---------------------------------------------------------------------------
# Integer (int32-accumulation) path for quantized deployables
# ---------------------------------------------------------------------------

def _dequantize_current(acc: np.ndarray, layer: LayerPlan) -> np.ndarray:
    """Layer-boundary dequantization of a (B, Cout, OH, OW) accumulator.

    The documented rounding rule (see :mod:`repro.quant.quantizer`): one
    float32 multiply by the scale, one float32 bias add, IEEE-754
    round-half-to-even at each step. The int32 -> float32 cast is exact
    because the engine only routes here when ``layer.int_overflow_ok``.
    """
    current = acc.astype(np.float32)
    scale = layer.wq_scale
    if scale.ndim == 0:
        np.multiply(current, scale, out=current)
    else:
        np.multiply(current, scale.reshape(1, -1, 1, 1), out=current)
    np.add(current, layer.bias.reshape(1, -1, 1, 1), out=current)
    return current


def _scatter_columns_int(
    rows: np.ndarray,
    cols: np.ndarray,
    weight_rows: np.ndarray,
    n_rows: int,
    backend: str,
) -> np.ndarray:
    """Integer twin of :func:`_scatter_columns`: int32 in, int32 out.

    No sorting and no k-blocking: integer addition is associative, so
    every accumulation order yields the same exact int32 sums (given the
    overflow bound the dispatcher enforces) -- the order discipline the
    float scatter needs simply has nothing to protect here.
    """
    if backend == "scipy":
        matrix = _sparse.csr_matrix(
            (np.ones(rows.size, dtype=np.int32), (rows, cols)),
            shape=(n_rows, weight_rows.shape[0]),
        )
        return matrix @ weight_rows
    out = np.zeros((n_rows, weight_rows.shape[1]), dtype=np.int32)
    if rows.size:
        np.add.at(out, rows, weight_rows[cols])
    return out


def event_conv_int(
    layer: LayerPlan, x: np.ndarray, backend: str
) -> Tuple[np.ndarray, int]:
    """Event-driven convolution with int32 accumulation.

    Same contract as :func:`event_conv` -- (current, updates) -- but the
    scatter accumulates the layer's quantized int32 weight rows and the
    float current is produced by a single boundary dequantization. This
    is the software twin of the paper's integer datapath: binary spikes
    select quantized weight columns, the accumulator is an integer, and
    the shift-and-add de-quantizer runs once per output element.
    """
    g = layer.geometry
    batch = x.shape[0]
    cout = layer.out_channels
    b_idx, pix = np.nonzero(x.reshape(batch, -1))
    updates = 0
    if b_idx.size == 0:
        acc2d = np.zeros((batch * g.p, cout), dtype=np.int32)
    else:
        valid = g.contrib_valid[pix]
        k_all = g.contrib_k[pix][valid]
        q_all = (b_idx[:, None].astype(np.int64) * g.p + g.contrib_p[pix])[valid]
        updates = int(k_all.size)
        acc2d = _scatter_columns_int(
            q_all, k_all, layer.wqT_i32(), batch * g.p, backend
        )
    acc = np.ascontiguousarray(
        acc2d.reshape(batch, g.p, cout).transpose(0, 2, 1)
    ).reshape(batch, cout, g.oh, g.ow)
    return _dequantize_current(acc, layer), updates


def dense_conv_int(
    layer: LayerPlan,
    x: np.ndarray,
    buffers: Optional[BufferPool] = None,
    max_elements: int = 1 << 24,
) -> np.ndarray:
    """Unfold-matmul convolution with int32 accumulation.

    The im2col gather casts the binary float input to int32 (exact for
    0/1 values) and the GEMM runs entirely in int32; associativity makes
    the result identical to :func:`event_conv_int` by construction, so
    no blocked variant is needed at any depth. Numpy's integer matmul
    has no BLAS backing, so this kernel trades speed for an exact
    integer fold -- the cost model decides when that trade is worth it.
    """
    g = layer.geometry
    batch = x.shape[0]
    cout = layer.out_channels
    kernel = g.kernel
    acc = np.empty((batch, cout, g.p), dtype=np.int32)
    chunk = max(1, min(batch, max_elements // max(1, g.k * g.p)))
    wq = layer.wq_i32()
    for start in range(0, batch, chunk):
        stop = min(batch, start + chunk)
        xc = x[start:stop]
        if g.padding:
            p = g.padding
            xc = np.pad(xc, ((0, 0), (0, 0), (p, p), (p, p)))
        windows = np.lib.stride_tricks.sliding_window_view(
            xc, (kernel, kernel), axis=(2, 3)
        )
        if buffers is not None:
            cols = buffers.get("cols_i32", (stop - start, g.k, g.p), np.int32)
        else:
            cols = np.empty((stop - start, g.k, g.p), dtype=np.int32)
        np.copyto(
            cols.reshape(stop - start, g.cin, kernel, kernel, g.oh, g.ow),
            windows.transpose(0, 1, 4, 5, 2, 3),
            casting="unsafe",
        )
        np.matmul(wq, cols, out=acc[start:stop])
    acc = acc.reshape(batch, cout, g.oh, g.ow)
    return _dequantize_current(acc, layer)


def calibrate_int_exact(
    layer: LayerPlan, backend: str, block: Optional[int] = None
) -> bool:
    """True when the integer path reproduces the float path bit-for-bit.

    The reference is what the engine would otherwise compute for these
    steps: the float dense fold at the layer's calibrated ``block``
    (which the float event kernel is already calibrated identical to).
    Both integer flavours are probed -- they share one exact accumulator,
    so a mismatch between them would indicate a kernel bug rather than a
    fold-order effect. The verdict depends on the weight values (through
    the scales), so it is cached per layer -- keyed by (backend, block)
    -- not in the per-shape calibration cache; sidecars persist it via
    :func:`seed_int_exact` with the same live-wins semantics.

    Power-of-two scales (``QuantScheme.pow2_scale``) pass by
    construction: the dequantized weights and every float32 partial sum
    are exactly representable, making all fold orders agree. Arbitrary
    scales essentially always fail -- the probe is what keeps the 'auto'
    integer path exactness-preserving rather than hopeful.
    """
    if not layer.has_int_lowering or layer.geometry is None:
        return False
    if not layer.int_overflow_ok:
        return False
    key = (backend, int(block or 0))
    cached = layer._int_exact.get(key)
    if cached is not None:
        return cached
    g = layer.geometry
    rng = new_rng(0xC0FFEE)
    exact = True
    for density in (0.02, 0.1, 0.3):
        probe = (
            rng.random((2, g.cin, g.height, g.width)) < density
        ).astype(np.float32)
        want = dense_conv(layer, probe, kblock=block if block else None)
        got_event, _ = event_conv_int(layer, probe, backend)
        if not np.array_equal(got_event, want):
            exact = False
            break
        if not np.array_equal(dense_conv_int(layer, probe), want):
            exact = False
            break
    layer._int_exact[key] = exact
    return exact


def seed_int_exact(
    layer: LayerPlan, backend: str, block: Optional[int], exact: bool
) -> None:
    """Pre-populate a layer's integer-exactness verdict (sidecar fast
    path). Live-wins: a verdict probed in this process is never
    overwritten by a loaded one."""
    layer._int_exact.setdefault((backend, int(block or 0)), bool(exact))


_CALIBRATION_CACHE: Dict[Tuple, bool] = {}  # repro: lint-ok[P102] per-process memo of a pure predicate; same key gives same value in every process

#: Candidate k-block sizes probed largest-first by the auto resolution.
#: In practice the within-block GEMM stays single-lane up to a few
#: hundred k rows on common BLAS builds, so the largest candidates keep
#: the per-block overhead lowest while the small ones are the safety net.
KBLOCK_CANDIDATES = (512, 256, 128, 64, 32)

# (shape key, block) -> the blocked kernels proved bit-identical.
_BLOCK_EXACT_CACHE: Dict[Tuple, bool] = {}  # repro: lint-ok[P102] per-process memo of a pure predicate; same key gives same value in every process
# shape key -> auto-resolved block (0 = unblocked exact, >0 = blocked
# with that size, None = no exact configuration; dense fallback).
_BLOCK_CHOICE_CACHE: Dict[Tuple, Optional[int]] = {}  # repro: lint-ok[P102] per-process memo of a pure choice function; same key gives same value in every process

_UNRESOLVED = object()  # distinguishes "never probed" from "probed: None"


def calibration_key(layer: LayerPlan, backend: str) -> Tuple:
    """Process-wide calibration-cache key for a conv layer shape."""
    g = layer.geometry
    return (
        g.cin, g.height, g.width, g.kernel, g.padding,
        layer.out_channels, backend,
    )


def seed_calibration(key: Tuple, exact: bool) -> None:
    """Pre-populate the calibration cache (plan persistence fast path).

    A verdict already probed live in this process wins over a seeded one,
    so loading a stale sidecar can never *upgrade* a shape to the event
    path that the current environment has disproven.
    """
    _CALIBRATION_CACHE.setdefault(tuple(key), bool(exact))


def calibrate_event_exact(layer: LayerPlan, backend: str) -> bool:
    """True when the event path is bit-identical to the dense path for
    this layer's GEMM shape in the current environment.

    A multi-lane BLAS fold differing from the scatter kernel's sequential
    ascending-``k`` fold produces last-ulp mismatches on essentially every
    random probe, so a handful of probes across densities separates the
    two regimes decisively. The verdict depends only on the layer shape
    (not the weight values) and is cached process-wide.
    """
    key = calibration_key(layer, backend)
    g = layer.geometry
    cached = _CALIBRATION_CACHE.get(key)
    if cached is not None:
        return cached
    rng = new_rng(0xC0FFEE)
    exact = True
    for density in (0.02, 0.1, 0.3):
        probe = (
            rng.random((2, g.cin, g.height, g.width)) < density
        ).astype(np.float32)
        want = dense_conv(layer, probe)
        got, _ = event_conv(layer, probe, backend)
        if not np.array_equal(got, want):
            exact = False
            break
    _CALIBRATION_CACHE[key] = exact
    return exact


def calibrate_block_exact(layer: LayerPlan, backend: str, kblock: int) -> bool:
    """True when the blocked event and blocked dense kernels are
    bit-identical for this layer's shape at block size ``kblock``.

    The probe compares the two kernels *at the same block size* -- the
    canonical blocked fold is the reference, not the unblocked GEMM (at
    deep shapes those differ in the last ulp by construction, which is
    the whole reason the blocked fold exists). A block that is too large
    for this environment's BLAS to fold single-lane within the block
    fails on essentially every random probe, exactly like the unblocked
    probe at deep shapes, so wrong fold orders are rejected decisively.
    """
    key = (calibration_key(layer, backend), int(kblock))
    cached = _BLOCK_EXACT_CACHE.get(key)
    if cached is not None:
        return cached
    g = layer.geometry
    rng = new_rng(0xC0FFEE)
    exact = True
    for density in (0.02, 0.1, 0.3):
        probe = (
            rng.random((2, g.cin, g.height, g.width)) < density
        ).astype(np.float32)
        want = dense_conv(layer, probe, kblock=kblock)
        got, _ = event_conv_blocked(layer, probe, backend, kblock)
        if not np.array_equal(got, want):
            exact = False
            break
    _BLOCK_EXACT_CACHE[key] = exact
    return exact


def resolve_event_block(
    layer: LayerPlan, backend: str, kblock: Optional[int] = None
) -> Optional[int]:
    """The layer's calibrated event-path configuration.

    Returns ``0`` when the plain (unblocked) event path is bit-exact,
    a block size ``B > 0`` when only the blocked fold is, and ``None``
    when no probed configuration is exact (the layer stays on the dense
    fallback). ``kblock`` mirrors ``RuntimeConfig.event_kblock``:

    * ``None`` (auto) -- prefer the unblocked path, else the largest
      exact :data:`KBLOCK_CANDIDATES` entry;
    * ``0`` -- blocking disabled: unblocked-or-dense (pre-blocking
      behaviour);
    * ``B > 0`` -- force block size ``B`` (still subject to the
      exactness probe; an inexact forced block falls back like auto
      would at that single candidate).
    """
    if layer.kind != "conv" or layer.geometry is None:
        return None
    k = int(layer.geometry.k)
    if kblock is not None and kblock > 0:
        if kblock >= k:  # one block spanning all of k == unblocked
            return 0 if calibrate_event_exact(layer, backend) else None
        return kblock if calibrate_block_exact(layer, backend, kblock) else None
    if kblock == 0:
        return 0 if calibrate_event_exact(layer, backend) else None
    key = calibration_key(layer, backend)
    choice = _BLOCK_CHOICE_CACHE.get(key, _UNRESOLVED)
    if choice is not _UNRESOLVED:
        return choice
    if calibrate_event_exact(layer, backend):
        choice = 0
    else:
        choice = None
        for candidate in KBLOCK_CANDIDATES:
            if candidate >= k:
                continue
            if calibrate_block_exact(layer, backend, candidate):
                choice = candidate
                break
    _BLOCK_CHOICE_CACHE[key] = choice
    return choice


def seed_block_resolution(key: Tuple, block: Optional[int]) -> None:
    """Pre-populate the auto block choice (plan persistence fast path).

    Same live-wins semantics as :func:`seed_calibration`: a resolution
    probed in this process is never overwritten by a sidecar. A seeded
    positive block also seeds its (shape, block) exactness verdict, so a
    cold worker runs zero probe GEMMs for shapes its sidecar settled.
    """
    key = tuple(key)
    if key not in _BLOCK_CHOICE_CACHE:
        _BLOCK_CHOICE_CACHE[key] = None if block is None else int(block)
        if block:
            _BLOCK_EXACT_CACHE.setdefault((key, int(block)), True)


# ---------------------------------------------------------------------------
# Spike-domain helpers
# ---------------------------------------------------------------------------

def or_pool(x: np.ndarray, window: int) -> np.ndarray:
    """OR-gate max pooling on a (B, C, H, W) binary batch (Sec. IV-B).

    Folds the window via strided ``np.maximum`` passes, which is an
    order of magnitude faster than a reshape + multi-axis ``max`` and
    exactly equal (max involves no rounding).
    """
    out = np.ascontiguousarray(x[:, :, ::window, ::window])
    for i in range(window):
        for j in range(window):
            if i == 0 and j == 0:
                continue
            np.maximum(out, x[:, :, i::window, j::window], out=out)
    return out
