"""Dense and event-driven layer kernels used by the inference engine.

Both kernels compute the same layer current and are bit-identical on
binary spike inputs, so the density dispatcher can switch freely:

* the **dense** kernel gathers im2col columns with the plan's cached
  index vector and issues one BLAS matmul for the whole fused batch;
* the **event** kernel extracts active spike coordinates, expands them
  into (im2col-row, output-position) contributions through the plan's
  inverse tap tables, and scatter-accumulates the corresponding weight
  columns -- the software twin of the ECU + accumulation pipeline.

Bit-exactness of the event path rests on the accumulation order: when
BLAS folds each output element over ``k`` in ascending order with a
single accumulator, skipping the zero terms of a binary input cannot
change a float32 partial sum (beyond the sign of an exact zero), and the
scatter backends preserve that order -- CSR rows store ascending column
indices, and the ``np.add.at`` fallback is applied to ``(row, k)``-sorted
contributions. Which fold a GEMM uses, however, depends on the BLAS
kernel selected for the layer's shape (large-``k`` and FC-shaped GEMMs
may split ``k`` over several accumulator lanes). The runtime therefore
*calibrates* each conv layer shape once per process --
:func:`calibrate_event_exact` probes the scatter kernel against the
dense kernel on random binary inputs -- and the dispatcher only ever
routes layers to the event path after their shape has proven
bit-identical in this environment. FC layers always take the dense path:
their single small GEMM is negligible host cost and their BLAS shape is
the multi-lane one.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.runtime.plan import LayerPlan

try:  # scipy ships with the image; gate anyway so the runtime degrades cleanly
    from scipy import sparse as _sparse
except Exception:  # pragma: no cover - exercised only without scipy
    _sparse = None


def resolve_event_backend(name: str) -> str:
    """Map an ``event_backend`` config value to a concrete backend."""
    if name == "auto":
        return "scipy" if _sparse is not None else "numpy"
    if name == "scipy" and _sparse is None:
        raise ConfigError("event_backend='scipy' requested but scipy is missing")
    return name


class BufferPool:
    """Reusable scratch arrays keyed by (tag, shape); one per network."""

    def __init__(self) -> None:
        self._buffers: Dict[Tuple, np.ndarray] = {}

    def get(self, tag: str, shape: Tuple[int, ...], dtype=np.float32) -> np.ndarray:
        key = (tag, shape, np.dtype(dtype).str)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[key] = buffer
        return buffer

    def clear(self) -> None:
        self._buffers.clear()


# ---------------------------------------------------------------------------
# Dense (time-fused) path
# ---------------------------------------------------------------------------

def dense_conv(
    layer: LayerPlan,
    x: np.ndarray,
    buffers: Optional[BufferPool] = None,
    max_elements: int = 1 << 24,
) -> np.ndarray:
    """Unfold-matmul convolution over a fused (B, Cin, H, W) batch.

    The unfold copies sliding windows into the pooled im2col buffer (one
    strided C-level copy, measurably faster than an index gather) and a
    single batched matmul against the plan's cached weight matrix
    produces every output position for the whole fused batch. Batches
    whose im2col buffer would exceed ``max_elements`` are chunked --
    bit-exact either way, since per-sample GEMM results are independent
    of the batch split.
    """
    g = layer.geometry
    batch = x.shape[0]
    cout = layer.out_channels
    kernel = g.kernel
    out = np.empty((batch, cout, g.p), dtype=np.float32)
    chunk = max(1, min(batch, max_elements // max(1, g.k * g.p)))
    for start in range(0, batch, chunk):
        stop = min(batch, start + chunk)
        xc = x[start:stop]
        if g.padding:
            p = g.padding
            xc = np.pad(xc, ((0, 0), (0, 0), (p, p), (p, p)))
        windows = np.lib.stride_tricks.sliding_window_view(
            xc, (kernel, kernel), axis=(2, 3)
        )  # (b, Cin, OH, OW, K, K)
        if buffers is not None:
            cols = buffers.get("cols", (stop - start, g.k, g.p))
        else:
            cols = np.empty((stop - start, g.k, g.p), dtype=np.float32)
        np.copyto(
            cols.reshape(stop - start, g.cin, kernel, kernel, g.oh, g.ow),
            windows.transpose(0, 1, 4, 5, 2, 3),
        )
        np.matmul(layer.wmat, cols, out=out[start:stop])
    out = out.reshape(batch, cout, g.oh, g.ow)
    np.add(out, layer.bias.reshape(1, -1, 1, 1), out=out)
    return out


def dense_fc(layer: LayerPlan, x2d: np.ndarray) -> np.ndarray:
    """Fully connected current for a fused (B, Nin) batch."""
    out = x2d @ layer.wmat.T
    np.add(out, layer.bias, out=out)
    return out


# ---------------------------------------------------------------------------
# Event-driven path
# ---------------------------------------------------------------------------

def _scatter_columns(
    rows: np.ndarray,
    cols: np.ndarray,
    weight_rows: np.ndarray,
    n_rows: int,
    backend: str,
) -> np.ndarray:
    """Sum ``weight_rows[cols]`` into ``out[rows]`` in ascending-k order."""
    if backend == "scipy":
        matrix = _sparse.csr_matrix(
            (np.ones(rows.size, dtype=np.float32), (rows, cols)),
            shape=(n_rows, weight_rows.shape[0]),
        )
        return matrix @ weight_rows
    out = np.zeros((n_rows, weight_rows.shape[1]), dtype=np.float32)
    if rows.size:
        order = np.lexsort((cols, rows))
        np.add.at(out, rows[order], weight_rows[cols[order]])
    return out


def event_conv(
    layer: LayerPlan, x: np.ndarray, backend: str
) -> Tuple[np.ndarray, int]:
    """Event-driven convolution over a (B, Cin, H, W) binary batch.

    Returns the layer current and the number of scatter contributions
    (events x in-bounds taps) actually accumulated.
    """
    g = layer.geometry
    batch = x.shape[0]
    cout = layer.out_channels
    b_idx, pix = np.nonzero(x.reshape(batch, -1))
    updates = 0
    if b_idx.size == 0:
        out2d = np.zeros((batch * g.p, cout), dtype=np.float32)
    else:
        valid = g.contrib_valid[pix]
        k_all = g.contrib_k[pix][valid]
        q_all = (b_idx[:, None].astype(np.int64) * g.p + g.contrib_p[pix])[valid]
        updates = int(k_all.size)
        out2d = _scatter_columns(q_all, k_all, layer.wT, batch * g.p, backend)
    current = np.ascontiguousarray(
        out2d.reshape(batch, g.p, cout).transpose(0, 2, 1)
    ).reshape(batch, cout, g.oh, g.ow)
    np.add(current, layer.bias.reshape(1, -1, 1, 1), out=current)
    return current, updates


_CALIBRATION_CACHE: Dict[Tuple, bool] = {}


def calibration_key(layer: LayerPlan, backend: str) -> Tuple:
    """Process-wide calibration-cache key for a conv layer shape."""
    g = layer.geometry
    return (
        g.cin, g.height, g.width, g.kernel, g.padding,
        layer.out_channels, backend,
    )


def seed_calibration(key: Tuple, exact: bool) -> None:
    """Pre-populate the calibration cache (plan persistence fast path).

    A verdict already probed live in this process wins over a seeded one,
    so loading a stale sidecar can never *upgrade* a shape to the event
    path that the current environment has disproven.
    """
    _CALIBRATION_CACHE.setdefault(tuple(key), bool(exact))


def calibrate_event_exact(layer: LayerPlan, backend: str) -> bool:
    """True when the event path is bit-identical to the dense path for
    this layer's GEMM shape in the current environment.

    A multi-lane BLAS fold differing from the scatter kernel's sequential
    ascending-``k`` fold produces last-ulp mismatches on essentially every
    random probe, so a handful of probes across densities separates the
    two regimes decisively. The verdict depends only on the layer shape
    (not the weight values) and is cached process-wide.
    """
    key = calibration_key(layer, backend)
    g = layer.geometry
    cached = _CALIBRATION_CACHE.get(key)
    if cached is not None:
        return cached
    rng = np.random.default_rng(0xC0FFEE)
    exact = True
    for density in (0.02, 0.1, 0.3):
        probe = (
            rng.random((2, g.cin, g.height, g.width)) < density
        ).astype(np.float32)
        want = dense_conv(layer, probe)
        got, _ = event_conv(layer, probe, backend)
        if not np.array_equal(got, want):
            exact = False
            break
    _CALIBRATION_CACHE[key] = exact
    return exact


# ---------------------------------------------------------------------------
# Spike-domain helpers
# ---------------------------------------------------------------------------

def or_pool(x: np.ndarray, window: int) -> np.ndarray:
    """OR-gate max pooling on a (B, C, H, W) binary batch (Sec. IV-B).

    Folds the window via strided ``np.maximum`` passes, which is an
    order of magnitude faster than a reshape + multi-axis ``max`` and
    exactly equal (max involves no rounding).
    """
    out = np.ascontiguousarray(x[:, :, ::window, ::window])
    for i in range(window):
        for j in range(window):
            if i == 0 and j == 0:
                continue
            np.maximum(out, x[:, :, i::window, j::window], out=out)
    return out
