"""Reference conv shapes for fold-calibration gates, benches and tests.

The deep-VGG9 shape list and the synthetic-plan constructors below are
shared by ``tests/runtime/test_fold_calibration.py``,
``scripts/check_blocked_routing.py`` and
``benchmarks/bench_runtime_hotpaths.py`` -- one definition, so the CI
gate, the perf record and the test suite provably guard the same
shapes. Weights are seeded-random: calibration verdicts depend only on
the GEMM shape, never the values.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.runtime.plan import LayerPlan, NetworkPlan, conv_geometry
from repro.utils.rng import new_rng

#: Deep-VGG9 (CIFAR scale) conv input shapes with K = Cin * 3 * 3 >= 500
#: -- conv2_2, conv3_1, conv3_2/3_3: the shapes whose full-K GEMM folds
#: multi-lane in this environment, reachable by the event path only
#: through the canonical blocked k-fold.
DEEP_VGG9_SHAPES: Tuple[Tuple[int, int, int, int], ...] = (
    # (cin, height, width, cout)
    (64, 16, 16, 128),
    (128, 8, 8, 256),
    (256, 8, 8, 256),
)


def make_conv_layer_plan(
    cin: int, height: int, width: int, cout: int, seed: int = 0,
    name: str = None,
) -> LayerPlan:
    """A standalone 3x3 same-padded conv :class:`LayerPlan` with seeded
    random weights."""
    geometry = conv_geometry(cin, height, width, 3, 1)
    rng = new_rng(seed)
    wmat = rng.standard_normal((cout, geometry.k)).astype(np.float32)
    return LayerPlan(
        name=name or f"conv{cin}x{height}",
        kind="conv",
        wmat=wmat,
        wT=np.ascontiguousarray(wmat.T),
        bias=rng.standard_normal(cout).astype(np.float32),
        input_shape=(cin, height, width),
        output_shape=(cout, height, width),
        geometry=geometry,
    )


def make_conv_network_plan(
    cin: int, height: int, width: int, cout: int, seed: int = 0,
    num_classes: int = 10,
) -> NetworkPlan:
    """A runnable conv + FC-head :class:`NetworkPlan` around one conv
    shape -- the minimal plan the engine's dispatcher can execute."""
    conv = make_conv_layer_plan(cin, height, width, cout, seed=seed)
    rng = new_rng(seed + 1)
    fc_w = rng.standard_normal(
        (num_classes, cout * height * width)
    ).astype(np.float32)
    head = LayerPlan(
        name="fc",
        kind="fc",
        wmat=fc_w,
        wT=np.ascontiguousarray(fc_w.T),
        bias=np.zeros(num_classes, dtype=np.float32),
        input_shape=(cout, height, width),
        output_shape=(num_classes,),
    )
    return NetworkPlan(
        layers=[conv, head],
        beta=0.5,
        threshold=1.0,
        num_classes=num_classes,
        population_group=1,
        spike_rule="threshold",
        source="deployable",
    )
