"""Runtime configuration and per-layer dispatch counters.

One process-wide :class:`RuntimeConfig` governs whether the fused
inference runtime is used at all, where the density dispatcher switches
between the dense and the event-driven kernel, and which scatter backend
realises the event path. Tests pin behaviour with
:func:`runtime_overrides`; ``REPRO_RUNTIME=0`` in the environment turns
the runtime off globally (every consumer then falls back to the legacy
per-timestep loops).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the fused inference runtime.

    Attributes:
        enabled: route eligible forwards through the runtime at all.
        dispatch_threshold: input spike density (fraction of set bits) at
            or below which a layer-timestep takes the event-driven path;
            0 disables the event path, 1 forces it whenever legal.
        force_path: pin every eligible layer-timestep to ``'dense'`` or
            ``'event'`` regardless of density (equivalence testing).
        event_backend: ``'scipy'`` (CSR scatter-matmul), ``'numpy'``
            (sorted ``np.add.at``), or ``'auto'`` (scipy when available).
        max_fused_elements: cap on the im2col buffer (elements) per fused
            dense call; larger batches are chunked (bit-exact either way).
    """

    enabled: bool = True
    dispatch_threshold: float = 0.05
    force_path: Optional[str] = None
    event_backend: str = "auto"
    max_fused_elements: int = 1 << 24

    def __post_init__(self) -> None:
        if not 0.0 <= self.dispatch_threshold <= 1.0:
            raise ConfigError(
                f"dispatch_threshold must be in [0, 1], got {self.dispatch_threshold}"
            )
        if self.force_path not in (None, "dense", "event"):
            raise ConfigError(
                f"force_path must be None, 'dense' or 'event', got {self.force_path!r}"
            )
        if self.event_backend not in ("auto", "scipy", "numpy"):
            raise ConfigError(
                f"event_backend must be 'auto', 'scipy' or 'numpy', "
                f"got {self.event_backend!r}"
            )
        if self.max_fused_elements < 1:
            raise ConfigError(
                f"max_fused_elements must be >= 1, got {self.max_fused_elements}"
            )


_CONFIG = RuntimeConfig(enabled=os.environ.get("REPRO_RUNTIME", "1") != "0")


def runtime_config() -> RuntimeConfig:
    """The active process-wide runtime configuration."""
    return _CONFIG


def set_runtime_config(config: RuntimeConfig) -> None:
    global _CONFIG
    _CONFIG = config


def configure(**overrides) -> RuntimeConfig:
    """Update individual fields of the active configuration."""
    set_runtime_config(replace(_CONFIG, **overrides))
    return _CONFIG


@contextmanager
def runtime_overrides(**overrides) -> Iterator[RuntimeConfig]:
    """Temporarily override runtime settings (test/bench scoping)."""
    global _CONFIG
    previous = _CONFIG
    _CONFIG = replace(previous, **overrides)
    try:
        yield _CONFIG
    finally:
        _CONFIG = previous


@dataclass
class LayerCounters:
    """Dispatch statistics for one layer across one forward pass."""

    dense_steps: int = 0
    event_steps: int = 0
    event_updates: int = 0  # scatter contributions routed through the event path

    def as_dict(self) -> Dict[str, int]:
        return {
            "dense_steps": self.dense_steps,
            "event_steps": self.event_steps,
            "event_updates": self.event_updates,
        }

    def merge(self, other: "LayerCounters") -> None:
        self.dense_steps += other.dense_steps
        self.event_steps += other.event_steps
        self.event_updates += other.event_updates
