"""Runtime configuration and per-layer dispatch counters.

One process-wide :class:`RuntimeConfig` governs whether the fused
inference runtime is used at all, where the density dispatcher switches
between the dense and the event-driven kernel, and which scatter backend
realises the event path. Tests pin behaviour with
:func:`runtime_overrides`; ``REPRO_RUNTIME=0`` in the environment turns
the runtime off globally (every consumer then falls back to the legacy
per-timestep loops).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the fused inference runtime.

    Attributes:
        enabled: route eligible forwards through the runtime at all.
        dispatch_threshold: input spike density (fraction of set bits) at
            or below which a layer-timestep is *eligible* for the
            event-driven path; 0 disables the event path, 1 forces it
            whenever legal.
        dispatch_policy: how eligible timesteps are routed. ``'cost'``
            (default) predicts each side's wall time from measured
            per-layer rates (seeded by a one-shot probe, refined online;
            see :mod:`repro.runtime.costmodel`) and takes the cheaper
            kernel; ``'density'`` restores the pre-cost-model behaviour
            (eligible == event). Cost routing depends on wall-clock
            measurements, so dispatch *counters* may vary between runs
            under ``'cost'`` -- results never do (both kernels are
            calibrated bit-identical); pin ``'density'`` where counters
            are byte-compared.
        force_path: pin every eligible layer-timestep to ``'dense'`` or
            ``'event'`` regardless of density (equivalence testing).
        event_backend: ``'scipy'`` (CSR scatter-matmul), ``'numpy'``
            (sorted ``np.add.at``), or ``'auto'`` (scipy when available).
        event_kblock: canonical blocked k-fold control. ``None`` (auto)
            calibrates per shape and picks the largest bit-exact block
            for shapes whose unblocked fold fails; ``0`` disables
            blocking (deep shapes return to the dense fallback); ``B >
            0`` forces that block size for every blockable conv shape
            (still probe-guarded). Env default: ``REPRO_EVENT_KBLOCK``.
        int_kernels: integer datapath for quantized deployables.
            ``'auto'`` (default) runs int32-accumulating kernels on the
            binary conv steps of int-lowered layers whenever the
            per-layer exactness probe passed, the overflow bound holds
            and the cost model predicts them no slower -- results stay
            bit-identical to the float path by construction. ``'on'``
            forces the integer kernels on every such step (both dense
            and event flavours; integer accumulation is associative, so
            results are still deterministic at any dispatch split, but
            may differ from the float reference when the probe failed).
            ``'off'`` disables the integer path entirely. Env default:
            ``REPRO_INT_KERNELS``.
        max_fused_elements: cap on the im2col buffer (elements) per fused
            dense call; larger batches are chunked (bit-exact either way).
    """

    enabled: bool = True
    dispatch_threshold: float = 0.05
    dispatch_policy: str = "cost"
    force_path: Optional[str] = None
    event_backend: str = "auto"
    event_kblock: Optional[int] = None
    int_kernels: str = "auto"
    max_fused_elements: int = 1 << 24

    def __post_init__(self) -> None:
        if not 0.0 <= self.dispatch_threshold <= 1.0:
            raise ConfigError(
                f"dispatch_threshold must be in [0, 1], got {self.dispatch_threshold}"
            )
        if self.dispatch_policy not in ("cost", "density"):
            raise ConfigError(
                f"dispatch_policy must be 'cost' or 'density', "
                f"got {self.dispatch_policy!r}"
            )
        if self.force_path not in (None, "dense", "event"):
            raise ConfigError(
                f"force_path must be None, 'dense' or 'event', got {self.force_path!r}"
            )
        if self.event_backend not in ("auto", "scipy", "numpy"):
            raise ConfigError(
                f"event_backend must be 'auto', 'scipy' or 'numpy', "
                f"got {self.event_backend!r}"
            )
        if self.event_kblock is not None and self.event_kblock < 0:
            raise ConfigError(
                f"event_kblock must be None (auto) or >= 0, "
                f"got {self.event_kblock}"
            )
        if self.int_kernels not in ("off", "auto", "on"):
            raise ConfigError(
                f"int_kernels must be 'off', 'auto' or 'on', "
                f"got {self.int_kernels!r}"
            )
        if self.max_fused_elements < 1:
            raise ConfigError(
                f"max_fused_elements must be >= 1, got {self.max_fused_elements}"
            )


def _env_event_kblock() -> Optional[int]:
    """``REPRO_EVENT_KBLOCK``: ``auto`` (default) -> None, else an int.

    Unparseable values fall back to auto -- consistent with the lenient
    ``REPRO_RUNTIME`` handling (a typo must not break every import)."""
    raw = os.environ.get("REPRO_EVENT_KBLOCK", "auto").strip().lower()
    if raw in ("", "auto"):
        return None
    try:
        return max(0, int(raw))
    except ValueError:
        return None


def _env_dispatch_policy() -> str:
    """``REPRO_DISPATCH_POLICY``: ``cost`` (default) or ``density``."""
    raw = os.environ.get("REPRO_DISPATCH_POLICY", "cost").strip().lower()
    return raw if raw in ("cost", "density") else "cost"


def _env_int_kernels() -> str:
    """``REPRO_INT_KERNELS``: ``auto`` (default), ``on`` or ``off``.

    Unrecognised values fall back to auto, consistent with the other
    lenient env knobs (a typo must not break every import)."""
    raw = os.environ.get("REPRO_INT_KERNELS", "auto").strip().lower()
    return raw if raw in ("off", "auto", "on") else "auto"


_CONFIG = RuntimeConfig(  # repro: lint-ok[P102] per-process config snapshot; workers re-resolve it from env at bootstrap
    enabled=os.environ.get("REPRO_RUNTIME", "1") != "0",
    dispatch_policy=_env_dispatch_policy(),
    event_kblock=_env_event_kblock(),
    int_kernels=_env_int_kernels(),
)


def runtime_config() -> RuntimeConfig:
    """The active process-wide runtime configuration."""
    return _CONFIG


def set_runtime_config(config: RuntimeConfig) -> None:
    global _CONFIG
    _CONFIG = config


def configure(**overrides) -> RuntimeConfig:
    """Update individual fields of the active configuration."""
    set_runtime_config(replace(_CONFIG, **overrides))
    return _CONFIG


@contextmanager
def runtime_overrides(**overrides) -> Iterator[RuntimeConfig]:
    """Temporarily override runtime settings (test/bench scoping)."""
    global _CONFIG
    previous = _CONFIG
    _CONFIG = replace(previous, **overrides)
    try:
        yield _CONFIG
    finally:
        _CONFIG = previous


@dataclass
class LayerCounters:
    """Dispatch statistics for one layer across one forward pass.

    ``dense_steps`` is the total; the ``dense_*_steps`` fields attribute
    each dense decision to its cause so a report can explain *why* a
    layer stayed dense: ``density`` (input activity above the dispatch
    threshold, or the event path disabled), ``cost`` (eligible, but the
    measured cost model predicted the dense kernel cheaper),
    ``calibration`` (no bit-exact event configuration at this shape --
    the dense fallback), ``forced`` (``force_path='dense'``). Steps that
    are ineligible by construction (FC layers, analog or non-binary
    input) are counted in the total only.

    The ``int_*`` fields attribute the integer datapath the same way:
    ``int_dense_steps`` / ``int_event_steps`` are the sub-counts of
    ``dense_steps`` / ``event_steps`` that ran with int32 accumulation
    (so the float-step count is the difference), ``int_event_updates``
    the scatter contributions accumulated in int32, and the
    ``float_*_steps`` fields say why an int-lowered layer's step stayed
    float: ``exactness`` (the bit-exactness probe failed),
    ``overflow`` (the int32/2^24 accumulation bound failed), ``cost``
    (the cost model predicted the float kernel faster).
    """

    dense_steps: int = 0
    event_steps: int = 0
    event_updates: int = 0  # scatter contributions routed through the event path
    dense_density_steps: int = 0
    dense_cost_steps: int = 0
    dense_calibration_steps: int = 0
    dense_forced_steps: int = 0
    int_dense_steps: int = 0
    int_event_steps: int = 0
    int_event_updates: int = 0
    float_exactness_steps: int = 0
    float_overflow_steps: int = 0
    float_cost_steps: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "dense_steps": self.dense_steps,
            "event_steps": self.event_steps,
            "event_updates": self.event_updates,
            "dense_density_steps": self.dense_density_steps,
            "dense_cost_steps": self.dense_cost_steps,
            "dense_calibration_steps": self.dense_calibration_steps,
            "dense_forced_steps": self.dense_forced_steps,
            "int_dense_steps": self.int_dense_steps,
            "int_event_steps": self.int_event_steps,
            "int_event_updates": self.int_event_updates,
            "float_exactness_steps": self.float_exactness_steps,
            "float_overflow_steps": self.float_overflow_steps,
            "float_cost_steps": self.float_cost_steps,
        }

    def count_dense(self, reason: Optional[str], steps: int = 1) -> None:
        """Tally ``steps`` dense layer-timesteps attributed to ``reason``."""
        self.dense_steps += steps
        if reason == "density":
            self.dense_density_steps += steps
        elif reason == "cost":
            self.dense_cost_steps += steps
        elif reason == "calibration":
            self.dense_calibration_steps += steps
        elif reason == "forced":
            self.dense_forced_steps += steps

    def count_float_fallback(self, reason: str, steps: int = 1) -> None:
        """Tally ``steps`` of an int-lowered layer that stayed float."""
        if reason == "exactness":
            self.float_exactness_steps += steps
        elif reason == "overflow":
            self.float_overflow_steps += steps
        elif reason == "cost":
            self.float_cost_steps += steps
        else:
            raise ValueError(f"unknown float-fallback reason {reason!r}")

    def merge(self, other: "LayerCounters") -> None:
        self.dense_steps += other.dense_steps
        self.event_steps += other.event_steps
        self.event_updates += other.event_updates
        self.dense_density_steps += other.dense_density_steps
        self.dense_cost_steps += other.dense_cost_steps
        self.dense_calibration_steps += other.dense_calibration_steps
        self.dense_forced_steps += other.dense_forced_steps
        self.int_dense_steps += other.int_dense_steps
        self.int_event_steps += other.int_event_steps
        self.int_event_updates += other.int_event_updates
        self.float_exactness_steps += other.float_exactness_steps
        self.float_overflow_steps += other.float_overflow_steps
        self.float_cost_steps += other.float_cost_steps
