"""Time-fused, event-driven inference runtime for the hot forward path.

Every experiment, table and benchmark in this reproduction funnels
through the same forward loops; this package replaces their per-timestep
Python iteration with a batched engine that exploits exactly the
property the paper's architecture exploits -- spike sparsity.

Execution model
---------------

1. **Plan** (:mod:`repro.runtime.plan`): each network is lowered once
   into per-layer plans holding pre-reshaped ``(Cout, Cin*K*K)`` weight
   matrices, cached im2col geometry, the precomputed per-pixel index
   tables used by the event path, and (for ``SpikingNetwork``) the
   eval-mode BN constants. Repeated timesteps and batches therefore do
   zero redundant index math or dequantization.
2. **Time fusion** (:mod:`repro.runtime.engine`): the stateless
   conv/linear current computation folds ``T`` into the batch axis --
   one gather + one matmul per layer instead of ``T`` small ones. Only
   the LIF membrane scan (Eq. 1/2) stays sequential in time, and it runs
   vectorised over the fused pre-activation tensor.
3. **Event dispatch** (:mod:`repro.runtime.kernels`): per layer and
   timestep, when input spike density falls at or below the dispatch
   threshold, the engine gathers the active event coordinates and
   scatter-accumulates the corresponding weight columns instead of
   running the dense kernel. This is the software twin of the paper's
   Sec. IV-B sparse pipeline: the ECU compresses the input train to
   event addresses, and the accumulation units add one weight column per
   event x tap -- silent neurons cost nothing. Dense timesteps (and the
   analog direct-coded input layer, the dense core's job in hardware)
   keep the matmul path, mirroring the hybrid dense/sparse split.

Bit-exactness is enforced, not assumed: the scatter kernel reproduces a
sequential ascending-``k`` BLAS fold while skipping zero terms, and each
conv layer shape is *calibrated* once against the environment's actual
BLAS kernel (:func:`~repro.runtime.kernels.calibrate_event_exact`).
Shapes whose full-``K`` GEMM folds multi-lane (deep conv layers,
``K >= ~500`` here) switch both kernels to the canonical **blocked
k-fold** (:func:`~repro.runtime.kernels.calibrate_event_block` picks the
largest block size whose within-block fold proves single-lane), so the
event path stays open at any depth; only shapes with no bit-exact
configuration at all remain on the dense fallback. Dispatch therefore
affects speed only, and under the default measured cost model
(:mod:`repro.runtime.costmodel`) each eligible timestep takes whichever
calibrated kernel is predicted cheaper on this machine. Dispatch
decisions -- with the reason for every dense one -- are tallied per
layer in :class:`~repro.runtime.config.LayerCounters` and surfaced in
simulation reports and :func:`~repro.runtime.plan_io.plan_report`.
"""

from repro.runtime.config import (
    LayerCounters,
    RuntimeConfig,
    configure,
    runtime_config,
    runtime_overrides,
    set_runtime_config,
)
from repro.runtime.engine import (
    InferenceEngine,
    RuntimeResult,
    stack_encoder_frames,
)
from repro.runtime.costmodel import (
    LayerCostState,
    ensure_cost_state,
    ensure_int_rates,
)
from repro.runtime.kernels import (
    KBLOCK_CANDIDATES,
    BufferPool,
    calibrate_block_exact,
    calibrate_event_exact,
    calibrate_int_exact,
    calibration_key,
    dense_conv_int,
    event_conv_int,
    resolve_event_backend,
    resolve_event_block,
    seed_block_resolution,
    seed_calibration,
    seed_int_exact,
)
from repro.runtime.plan import (
    ConvGeometry,
    LayerPlan,
    NetworkPlan,
    attach_int_lowering,
    conv_geometry,
    plan_deployable,
    plan_spiking,
)
from repro.runtime.plan_io import (
    arrays_digest,
    load_plan,
    plan_report,
    plan_sidecar_path,
    save_plan,
    try_load_plan,
)

__all__ = [
    "BufferPool",
    "ConvGeometry",
    "InferenceEngine",
    "KBLOCK_CANDIDATES",
    "LayerCostState",
    "LayerCounters",
    "LayerPlan",
    "NetworkPlan",
    "RuntimeConfig",
    "RuntimeResult",
    "arrays_digest",
    "attach_int_lowering",
    "calibrate_block_exact",
    "calibrate_event_exact",
    "calibrate_int_exact",
    "calibration_key",
    "configure",
    "conv_geometry",
    "dense_conv_int",
    "ensure_cost_state",
    "ensure_int_rates",
    "event_conv_int",
    "load_plan",
    "plan_deployable",
    "plan_report",
    "plan_sidecar_path",
    "plan_spiking",
    "resolve_event_backend",
    "resolve_event_block",
    "runtime_config",
    "runtime_overrides",
    "save_plan",
    "seed_block_resolution",
    "seed_calibration",
    "seed_int_exact",
    "set_runtime_config",
    "stack_encoder_frames",
    "try_load_plan",
]
