"""NetworkPlan persistence and the per-layer plan report.

A lowered :class:`~repro.runtime.plan.NetworkPlan` is expensive to build
only in two places: dequantizing weights (the lowering itself) and the
per-shape BLAS-fold *calibration* probes that decide event-path
eligibility. Both are deterministic, so they can be captured once and
shipped next to the deployable ``.npz``: :func:`save_plan` writes a
``<model>.plan.npz`` sidecar holding the lowered weight matrices, bias
and BN constants plus the calibration verdict of every conv shape;
:func:`load_plan` rebuilds the plan without touching the network (the
im2col geometry is recomputed through the shared process-wide cache --
pure index math, paid once per shape per process) and seeds the
calibration cache so cold-started worker processes skip the probes
entirely.

Calibration verdicts are only trusted when the sidecar's environment
fingerprint (numpy version, platform, BLAS-visible machine) matches the
loading process -- a different BLAS may fold GEMMs differently, and a
wrong ``True`` verdict would break bit-exactness. On mismatch the plan
still loads; the verdicts are simply re-probed on first dispatch.

:func:`plan_report` renders the per-layer lowering outcome -- which conv
shapes take the unblocked event path, which needed the canonical blocked
k-fold (and at what block size), and which have no bit-exact event
configuration at all and stay on the dense fallback. Passing a run's
dispatch counters additionally explains every dense *decision* taken at
runtime (density vs calibration vs cost vs forced).

Sidecar format history: ``network-plan-v4`` (current) additionally
persists each quantized conv layer's integer lowering -- the int8/int16
weight matrix, its dequantization scale(s), the integer bit-exactness
verdict and overflow bound, and (when the verdict passed) the int kernel
cost rates -- so cold loaders restore the full integer datapath without
re-probing; ``network-plan-v3`` extended each event-eligible calibration
entry with the probe-seeded dispatch cost-model rates (dense ms/sample,
event ms/update -- see :mod:`repro.runtime.costmodel`), trusted under
the same environment fingerprint as the calibration verdicts and refined
online after loading, so cold-started workers skip the seeding probe
GEMMs; ``network-plan-v2`` added the auto-resolved k-block per entry;
``network-plan-v1`` sidecars (written before the blocked fold existed)
still load -- their verdicts seed the unblocked calibration cache only,
and the block resolution (v1) and cost rates (v1/v2) re-probe lazily on
first dispatch. v1-v3 sidecars carry no integer lowering: they load
fine, but a quantized model loses its integer datapath with them, so
sidecar consumers on the numeric path (see
``repro.experiments.context``) rebuild and re-save such sidecars.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import zipfile
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.errors import ReproError, RuntimeUnsupportedError
from repro.runtime.config import runtime_config
from repro.runtime.costmodel import (
    LayerCostState,
    ensure_cost_state,
    ensure_int_rates,
)
from repro.runtime.kernels import (
    calibrate_event_exact,
    calibrate_int_exact,
    calibration_key,
    resolve_event_backend,
    resolve_event_block,
    seed_block_resolution,
    seed_calibration,
    seed_int_exact,
)
from repro.runtime.plan import LayerPlan, NetworkPlan, conv_geometry
from repro.utils.serialization import load_npz, save_npz

PLAN_SIDECAR_SUFFIX = ".plan.npz"

#: Accepted sidecar formats, newest first. v3 lacks the integer lowering
#: (quantized weights + scales + int verdicts); v2 additionally lacks
#: per-entry ``cost`` rates; v1 additionally lacks per-entry ``block``.
_PLAN_FORMATS = (
    "network-plan-v4",
    "network-plan-v3",
    "network-plan-v2",
    "network-plan-v1",
)

_BN_FIELDS = ("bn_mu", "bn_inv_std", "bn_gamma", "bn_beta")


def _blas_signature() -> str:
    """Digest of the BLAS/LAPACK numpy was built against.

    The fold a GEMM uses depends on the linked BLAS and its per-CPU
    kernel selection, not just the numpy version -- two identical numpy
    wheels on MKL vs OpenBLAS fold differently, and a calibration
    verdict must never cross that boundary.
    """
    try:
        config = np.show_config(mode="dicts")
    except TypeError:  # pragma: no cover - numpy < 1.25 has no dicts mode
        config = None
    if config is not None:
        dependencies = config.get("Build Dependencies", {})
        raw = json.dumps(
            [dependencies.get("blas", {}), dependencies.get("lapack", {})],
            sort_keys=True,
            default=str,
        )
    else:  # pragma: no cover - legacy numpy fallback
        raw = str(getattr(np.__config__, "blas_opt_info", ""))
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]


def environment_fingerprint() -> Dict[str, str]:
    """Identity of everything that can change a BLAS fold verdict."""
    return {
        "numpy": np.__version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "blas": _blas_signature(),
    }


def arrays_digest(arrays: Iterable[np.ndarray]) -> str:
    """Order-sensitive content digest of a sequence of arrays."""
    digest = hashlib.sha256()
    for array in arrays:
        array = np.ascontiguousarray(array)
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def plan_sidecar_path(model_path: str) -> str:
    """``<dir>/<stem>.plan.npz`` next to a deployable ``.npz`` artifact."""
    stem, ext = os.path.splitext(model_path)
    if ext != ".npz":
        stem = model_path
    return stem + PLAN_SIDECAR_SUFFIX


def save_plan(
    plan: NetworkPlan,
    path: str,
    backend: Optional[str] = None,
    model_digest: Optional[str] = None,
) -> None:
    """Serialize ``plan`` (weights, BN, calibration verdicts) to ``path``.

    ``model_digest`` ties the sidecar to the exact stored parameters of
    the model it was lowered from (see
    :meth:`DeployableNetwork.weights_digest`); loaders passing the same
    digest will reject a stale sidecar left behind by a retrain.
    """
    backend = resolve_event_backend(backend or runtime_config().event_backend)
    arrays: Dict[str, np.ndarray] = {}
    meta: Dict[str, object] = {
        "format": "network-plan-v4",
        "model_digest": model_digest,
        "beta": plan.beta,
        "threshold": plan.threshold,
        "num_classes": plan.num_classes,
        "population_group": plan.population_group,
        "spike_rule": plan.spike_rule,
        "source": plan.source,
        "backend": backend,
        "fingerprint": environment_fingerprint(),
        "layers": [],
        "calibration": [],
    }
    for index, layer in enumerate(plan.layers):
        prefix = f"layer{index}"
        arrays[f"{prefix}.wmat"] = layer.wmat
        arrays[f"{prefix}.bias"] = layer.bias
        for bn_field in _BN_FIELDS:
            value = getattr(layer, bn_field)
            if value is not None:
                arrays[f"{prefix}.{bn_field}"] = value
        if layer.has_int_lowering:
            arrays[f"{prefix}.wq"] = layer.wq
            arrays[f"{prefix}.wq_scale"] = np.asarray(layer.wq_scale)
        geometry = layer.geometry
        meta["layers"].append(
            {
                "name": layer.name,
                "kind": layer.kind,
                "input_shape": list(layer.input_shape),
                "output_shape": list(layer.output_shape),
                "pool_after": layer.pool_after,
                "is_input_layer": layer.is_input_layer,
                "kernel": geometry.kernel if geometry is not None else 0,
                "padding": geometry.padding if geometry is not None else 0,
                "has_bn": layer.has_bn,
                "has_int": layer.has_int_lowering,
            }
        )
        if layer.kind == "conv":
            block = resolve_event_block(layer, backend)
            entry: Dict[str, object] = {
                "key": list(calibration_key(layer, backend)),
                "exact": calibrate_event_exact(layer, backend),
                # Auto resolution (None = dense fallback, 0 =
                # unblocked, >0 = blocked): probed here once so cold
                # loaders skip every block-candidate GEMM.
                "block": block,
            }
            if block is not None:
                # Dispatch cost rates (v3): probe-seeded here (or taken
                # from the live plan's already-refined state) so cold
                # loaders skip the one-shot seeding GEMMs. Only
                # event-eligible shapes ever consult the cost model;
                # dense-fallback shapes carry no rates.
                state = ensure_cost_state(layer, backend, block or None)
                entry["cost"] = {
                    "dense_ms_per_sample": float(state.dense_ms_per_sample),
                    "event_ms_per_update": float(state.event_ms_per_update),
                }
            if layer.has_int_lowering:
                # Integer datapath verdicts (v4): the per-layer
                # bit-exactness probe and overflow bound, plus -- only
                # when the probe passed, the sole case the dispatcher
                # consults them -- the int kernel cost rates.
                int_exact = calibrate_int_exact(layer, backend, block)
                int_entry: Dict[str, object] = {
                    "exact": bool(int_exact),
                    "bound": int(layer.int_bound),
                }
                if int_exact:
                    state = ensure_int_rates(layer, backend, block or None)
                    int_entry["cost"] = {
                        "int_dense_ms_per_sample": float(
                            state.int_dense_ms_per_sample
                        ),
                        "int_event_ms_per_update": float(
                            state.int_event_ms_per_update
                        ),
                    }
                entry["int"] = int_entry
            meta["calibration"].append(entry)
    save_npz(path, arrays, meta)


def load_plan(path: str, model_digest: Optional[str] = None) -> NetworkPlan:
    """Rebuild a :class:`NetworkPlan` written by :func:`save_plan`.

    Seeds the process-wide calibration cache from the sidecar's verdicts
    when the environment fingerprint matches, so the loading process
    never re-probes shapes the saving process already settled. When both
    sides carry a ``model_digest`` and they differ, the sidecar is stale
    (the model was retrained under it) and loading fails.
    """
    arrays, meta = load_npz(path)
    if meta.get("format") not in _PLAN_FORMATS:
        raise RuntimeUnsupportedError(
            f"{path!r} is not a serialized network plan"
        )
    stored_digest = meta.get("model_digest")
    if (
        model_digest is not None
        and stored_digest is not None
        and stored_digest != model_digest
    ):
        raise RuntimeUnsupportedError(
            f"plan sidecar {path!r} was lowered from a different model "
            "(digest mismatch; retrain left a stale sidecar)"
        )
    layers: List[LayerPlan] = []
    for index, info in enumerate(meta["layers"]):
        prefix = f"layer{index}"
        wmat = np.ascontiguousarray(arrays[f"{prefix}.wmat"])
        input_shape = tuple(info["input_shape"])
        geometry = (
            conv_geometry(
                input_shape[0], input_shape[1], input_shape[2],
                info["kernel"], info["padding"],
            )
            if info["kind"] == "conv"
            else None
        )
        layer = LayerPlan(
            name=info["name"],
            kind=info["kind"],
            wmat=wmat,
            wT=np.ascontiguousarray(wmat.T),
            bias=np.ascontiguousarray(arrays[f"{prefix}.bias"]),
            input_shape=input_shape,
            output_shape=tuple(info["output_shape"]),
            geometry=geometry,
            pool_after=info["pool_after"],
            is_input_layer=info["is_input_layer"],
        )
        if info["has_bn"]:
            for bn_field in _BN_FIELDS:
                setattr(layer, bn_field, arrays[f"{prefix}.{bn_field}"])
        # v4 sidecars persist the integer lowering; v1-v3 predate it
        # ("has_int" absent), so quantized plans loaded from them run
        # float-only until the sidecar is rebuilt.
        if info.get("has_int"):
            layer.wq = np.ascontiguousarray(arrays[f"{prefix}.wq"])
            layer.wq_scale = np.ascontiguousarray(
                arrays[f"{prefix}.wq_scale"]
            )
        layers.append(layer)
    plan = NetworkPlan(
        layers=layers,
        beta=meta["beta"],
        threshold=meta["threshold"],
        num_classes=meta["num_classes"],
        population_group=meta["population_group"],
        spike_rule=meta["spike_rule"],
        source=meta["source"],
    )
    if meta.get("fingerprint") == environment_fingerprint():
        conv_layers = [layer for layer in layers if layer.kind == "conv"]
        entries = meta.get("calibration", [])
        for index, entry in enumerate(entries):
            key = tuple(entry["key"])
            seed_calibration(key, entry["exact"])
            # v1 sidecars carry no block resolution: leave the choice
            # cache untouched so it is probed live on first dispatch.
            if "block" in entry:
                seed_block_resolution(key, entry["block"])
            # v3 sidecars carry the probe-seeded dispatch cost rates;
            # the entry order matches the conv-layer order save_plan
            # walked. Timings from a different environment are never
            # trusted (same fingerprint gate as the verdicts); seeded
            # rates are still refined online by the dispatcher's EMA.
            cost = entry.get("cost")
            if cost is not None and index < len(conv_layers):
                conv_layers[index].cost_state = LayerCostState(
                    dense_ms_per_sample=float(cost["dense_ms_per_sample"]),
                    event_ms_per_update=float(cost["event_ms_per_update"]),
                )
            # v4 sidecars carry the integer bit-exactness verdict (and,
            # when it passed, the int kernel rates). The verdict is
            # weight-dependent, so it is seeded per layer object, not
            # into the shape-keyed calibration cache.
            int_entry = entry.get("int")
            if int_entry is not None and index < len(conv_layers):
                conv = conv_layers[index]
                if conv.has_int_lowering:
                    seed_int_exact(
                        conv,
                        meta["backend"],
                        entry.get("block"),
                        bool(int_entry["exact"]),
                    )
                    int_cost = int_entry.get("cost")
                    if int_cost is not None and conv.cost_state is not None:
                        conv.cost_state.int_dense_ms_per_sample = float(
                            int_cost["int_dense_ms_per_sample"]
                        )
                        conv.cost_state.int_event_ms_per_update = float(
                            int_cost["int_event_ms_per_update"]
                        )
    return plan


def try_load_plan(
    path: str, model_digest: Optional[str] = None
) -> Optional[NetworkPlan]:
    """:func:`load_plan`, returning ``None`` instead of raising.

    The one loader every sidecar consumer should use: a missing, stale
    (digest mismatch), foreign-format, truncated or otherwise corrupt
    sidecar yields ``None`` -- the caller falls back to live lowering,
    which is always correct, just slower.
    """
    if not os.path.exists(path):
        return None
    try:
        return load_plan(path, model_digest=model_digest)
    except (
        ReproError,
        EOFError,  # zero-byte/torn file: np.load dies before the zip layer
        KeyError,
        ValueError,
        OSError,
        zipfile.BadZipFile,
    ):
        return None


def plan_report(
    plan: NetworkPlan,
    backend: Optional[str] = None,
    counters: Optional[Dict] = None,
) -> List[Dict]:
    """Per-layer lowering outcome: kernel shape and dispatch eligibility.

    Each row carries ``event_exact`` (``None`` for FC layers, which never
    take the event path), the resolved ``k_block`` (``None`` = no exact
    event configuration, ``0`` = unblocked, ``B > 0`` = canonical
    blocked fold at that size) and a human-readable ``path`` that
    distinguishes the *calibration* dense fallback (no bit-exact fold at
    this shape) from shapes that are event-eligible and merely routed
    dense at runtime. Passing a run's dispatch counters (a mapping of
    layer name to :class:`~repro.runtime.config.LayerCounters`) adds a
    ``dispatch`` column explaining every dense decision of that run --
    density above threshold vs cost-model veto vs calibration fallback
    vs forced.
    """
    backend = resolve_event_backend(backend or runtime_config().event_backend)
    kblock = runtime_config().event_kblock
    rows: List[Dict] = []
    for layer in plan.layers:
        if layer.kind != "conv":
            row = {
                "name": layer.name,
                "kind": layer.kind,
                "k": int(layer.wmat.shape[1]),
                "event_exact": None,
                "k_block": None,
                "path": "dense (fc layers never dispatch)",
            }
        else:
            exact = calibrate_event_exact(layer, backend)
            block = resolve_event_block(layer, backend, kblock)
            if block is None:
                path = "dense-fallback (calibration: no bit-exact fold at this shape)"
            elif block == 0:
                path = "event-eligible"
            else:
                path = f"event-eligible (blocked fold, k_block={block})"
            row = {
                "name": layer.name,
                "kind": layer.kind,
                "k": int(layer.geometry.k),
                "event_exact": exact,
                "k_block": block,
                "path": path,
            }
        if counters is not None and layer.name in counters:
            row["dispatch"] = counters[layer.name].as_dict()
        rows.append(row)
    return rows
