"""Lowered execution plans: cached geometry, weights and BN constants.

A :class:`NetworkPlan` is the runtime's view of a network: one
:class:`LayerPlan` per weight-bearing layer carrying

* the pre-reshaped weight matrix ``(Cout, Cin*K*K)`` (and its transposed
  contiguous twin for the event-driven scatter path),
* the layer's :class:`ConvGeometry` -- the im2col shape math plus the
  precomputed per-pixel index tables (im2col row / output position per
  tap) that the event path scatters with, and
* for :class:`~repro.snn.network.SpikingNetwork` plans, the eval-mode
  batch-norm constants applied exactly as the legacy Tensor path does.

Geometry depends only on ``(Cin, H, W, kernel, padding)`` and is shared
process-wide through an LRU-ish cache, so repeated plan builds (e.g. a
``SpikingNetwork`` re-planned after every optimiser step) pay zero index
math.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import RuntimeUnsupportedError

_GEOMETRY_CACHE: Dict[Tuple[int, int, int, int, int], "ConvGeometry"] = {}  # repro: lint-ok[P102] per-process memo of pure conv geometry; same key gives same value in every process
_GEOMETRY_CACHE_MAX = 64


@dataclass(frozen=True)
class ConvGeometry:
    """Index math for one 'same'-padded stride-1 convolution shape."""

    cin: int
    height: int
    width: int
    kernel: int
    padding: int
    oh: int
    ow: int
    k: int  # Cin * K * K (im2col rows)
    p: int  # OH * OW (im2col columns)
    padded_hw: Tuple[int, int]
    contrib_k: np.ndarray  # (Cin*H*W, K*K) int32 -- im2col row per pixel/tap
    contrib_p: np.ndarray  # (Cin*H*W, K*K) int32 -- output position per pixel/tap
    contrib_valid: np.ndarray  # (Cin*H*W, K*K) bool -- in-bounds taps
    avg_taps: float  # mean in-bounds taps per input pixel (cost prediction)


def conv_geometry(
    cin: int, height: int, width: int, kernel: int, padding: int
) -> ConvGeometry:
    """Build (or fetch) the shared geometry for one conv input shape."""
    key = (cin, height, width, kernel, padding)
    cached = _GEOMETRY_CACHE.get(key)
    if cached is not None:
        return cached
    kh = kw = kernel
    hp, wp = height + 2 * padding, width + 2 * padding
    oh = hp - kh + 1
    ow = wp - kw + 1
    if oh <= 0 or ow <= 0:
        raise RuntimeUnsupportedError(
            f"conv output would be empty for input ({cin}, {height}, {width}), "
            f"kernel {kernel}, padding {padding}"
        )
    # Inverse im2col tables: input pixel (c, h, w) lands in im2col cell
    # (k=(c, i, j), p=(y, x)) with y = h - i + padding, x = w - j + padding.
    c_g, h_g, w_g = np.meshgrid(
        np.arange(cin), np.arange(height), np.arange(width), indexing="ij"
    )
    c_f = c_g.reshape(-1, 1)
    h_f = h_g.reshape(-1, 1)
    w_f = w_g.reshape(-1, 1)
    i_f = np.repeat(np.arange(kh), kw).reshape(1, -1)
    j_f = np.tile(np.arange(kw), kh).reshape(1, -1)
    y = h_f - i_f + padding
    x = w_f - j_f + padding
    valid = (y >= 0) & (y < oh) & (x >= 0) & (x < ow)
    contrib_k = (c_f * (kh * kw) + i_f * kw + j_f).astype(np.int32)
    contrib_p = (np.clip(y, 0, oh - 1) * ow + np.clip(x, 0, ow - 1)).astype(np.int32)
    geometry = ConvGeometry(
        cin=cin,
        height=height,
        width=width,
        kernel=kernel,
        padding=padding,
        oh=oh,
        ow=ow,
        k=cin * kh * kw,
        p=oh * ow,
        padded_hw=(hp, wp),
        contrib_k=np.ascontiguousarray(contrib_k),
        contrib_p=np.ascontiguousarray(contrib_p),
        contrib_valid=np.ascontiguousarray(valid),
        avg_taps=float(valid.sum()) / max(1, valid.shape[0]),
    )
    if len(_GEOMETRY_CACHE) >= _GEOMETRY_CACHE_MAX:
        _GEOMETRY_CACHE.pop(next(iter(_GEOMETRY_CACHE)))
    _GEOMETRY_CACHE[key] = geometry
    return geometry


@dataclass
class BlockTables:
    """Per-k-block weight slices for the canonical blocked fold.

    ``edges`` are the k boundaries ``[0, B, 2B, ..., K]`` (last block
    ragged); ``wmat_blocks[i]`` / ``wT_blocks[i]`` are contiguous copies
    of the weight columns/rows of block ``i``, so neither kernel slices
    (or re-copies) weights in the hot loop. Both kernels fold the
    per-block partial sums in ascending ``edges`` order -- that shared
    sequential block fold is what makes the blocked dense and blocked
    event kernels bit-identical by construction (see
    :mod:`repro.runtime.kernels`).
    """

    block: int
    edges: np.ndarray  # (nblocks + 1,) int64 k boundaries
    wmat_blocks: List[np.ndarray]  # each (Cout, bk) contiguous float32
    wT_blocks: List[np.ndarray]  # each (bk, Cout) contiguous float32

    @property
    def nblocks(self) -> int:
        return len(self.wmat_blocks)


@dataclass
class LayerPlan:
    """One weight-bearing layer lowered for the runtime."""

    name: str
    kind: str  # 'conv' | 'fc'
    wmat: np.ndarray  # conv: (Cout, Cin*K*K); fc: (Cout, Nin) -- float32
    wT: np.ndarray  # contiguous transpose of wmat, event-path scatter rows
    bias: np.ndarray  # (Cout,) float32
    input_shape: Tuple[int, ...]
    output_shape: Tuple[int, ...]
    geometry: Optional[ConvGeometry] = None
    pool_after: int = 1
    is_input_layer: bool = False
    # Eval-mode BN constants (SpikingNetwork plans only), each (1, C, 1, 1).
    bn_mu: Optional[np.ndarray] = None
    bn_inv_std: Optional[np.ndarray] = None
    bn_gamma: Optional[np.ndarray] = None
    bn_beta: Optional[np.ndarray] = None
    # Integer lowering (quantized deployables only): the quantized weight
    # matrix in its narrowest storage dtype (int8 when |q| <= 127, int16
    # for wider schemes) and its dequantization scale(s). The int32
    # compute twins are built lazily via wq_i32 / wqT_i32.
    wq: Optional[np.ndarray] = None  # (Cout, K) int8/int16
    wq_scale: Optional[np.ndarray] = None  # float32 scalar or (Cout,)
    # Lazily built per-block weight slices, keyed by block size.
    _block_tables: Dict[int, BlockTables] = field(
        default_factory=dict, repr=False, compare=False
    )
    # Measured dispatch-cost state (repro.runtime.costmodel), seeded by a
    # one-shot probe and refined online; never persisted.
    cost_state: Optional[object] = field(default=None, repr=False, compare=False)
    # Lazy int32 compute twins of wq (dense matmul / event scatter rows).
    _wq_i32: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    _wqT_i32: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    # Cached worst-case |int32 accumulator| for binary inputs (int64).
    _int_bound: Optional[int] = field(default=None, repr=False, compare=False)
    # Bit-exactness verdicts of the integer path vs the float reference,
    # keyed by scatter backend ('scipy' | 'numpy'). Weight-dependent, so
    # cached per layer (not per shape); seedable from plan sidecars.
    _int_exact: Dict[str, bool] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def out_channels(self) -> int:
        return int(self.wmat.shape[0])

    @property
    def has_bn(self) -> bool:
        return self.bn_mu is not None

    @property
    def has_int_lowering(self) -> bool:
        return self.wq is not None

    @property
    def int_bound(self) -> int:
        """Worst-case |accumulator| over binary inputs (max channel L1)."""
        if self._int_bound is None:
            from repro.quant.quantizer import int_accumulation_bound

            self._int_bound = (
                int_accumulation_bound(self.wq) if self.wq is not None else 0
            )
        return self._int_bound

    @property
    def int_overflow_ok(self) -> bool:
        """True when every binary-input partial sum is exact in float32.

        The bound also sits far inside int32, so passing it rules out
        wraparound and inexact boundary dequantization at once.
        """
        from repro.quant.quantizer import INT_ACCUMULATION_LIMIT

        return self.has_int_lowering and self.int_bound <= INT_ACCUMULATION_LIMIT

    def wq_i32(self) -> np.ndarray:
        """(Cout, K) int32 twin of ``wq`` for the dense integer fold."""
        if self._wq_i32 is None:
            self._wq_i32 = np.ascontiguousarray(self.wq, dtype=np.int32)
        return self._wq_i32

    def wqT_i32(self) -> np.ndarray:
        """(K, Cout) contiguous int32 twin for the event scatter rows."""
        if self._wqT_i32 is None:
            self._wqT_i32 = np.ascontiguousarray(self.wq.T, dtype=np.int32)
        return self._wqT_i32

    def block_tables(self, block: int) -> BlockTables:
        """The (cached) per-block weight slices for ``block``-sized k-folds."""
        tables = self._block_tables.get(block)
        if tables is None:
            k = int(self.wmat.shape[1])
            edges = np.arange(0, k + block, block, dtype=np.int64)
            edges[-1] = k
            if edges.size >= 2 and edges[-1] == edges[-2]:
                edges = edges[:-1]
            wmat_blocks = [
                np.ascontiguousarray(self.wmat[:, e0:e1])
                for e0, e1 in zip(edges[:-1], edges[1:])
            ]
            wT_blocks = [
                np.ascontiguousarray(self.wT[e0:e1])
                for e0, e1 in zip(edges[:-1], edges[1:])
            ]
            tables = BlockTables(
                block=block,
                edges=edges,
                wmat_blocks=wmat_blocks,
                wT_blocks=wT_blocks,
            )
            self._block_tables[block] = tables
        return tables


@dataclass
class NetworkPlan:
    """A full network lowered for the runtime."""

    layers: List[LayerPlan]
    beta: float
    threshold: float
    num_classes: int
    population_group: int
    spike_rule: str  # 'threshold' (deployable) | 'shifted' (SpikingNetwork)
    source: str  # 'deployable' | 'spiking'


def _as_f32(array: np.ndarray) -> np.ndarray:
    array = np.asarray(array)
    if array.dtype != np.float32:
        array = array.astype(np.float32)
    return array


def _lower_weights(
    name: str,
    kind: str,
    weight: np.ndarray,
    bias: np.ndarray,
    kernel: int,
    padding: int,
    input_shape: Tuple[int, ...],
    output_shape: Tuple[int, ...],
    is_input_layer: bool,
) -> LayerPlan:
    weight = _as_f32(weight)
    if kind == "conv":
        cout = weight.shape[0]
        wmat = np.ascontiguousarray(weight.reshape(cout, -1))
        geometry = conv_geometry(
            input_shape[0], input_shape[1], input_shape[2], kernel, padding
        )
    else:
        wmat = np.ascontiguousarray(weight)
        geometry = None
    return LayerPlan(
        name=name,
        kind=kind,
        wmat=wmat,
        wT=np.ascontiguousarray(wmat.T),
        bias=_as_f32(bias),
        input_shape=tuple(input_shape),
        output_shape=tuple(output_shape),
        geometry=geometry,
        is_input_layer=is_input_layer,
    )


def attach_int_lowering(
    plan: LayerPlan, weight_q: np.ndarray, weight_scale: np.ndarray
) -> None:
    """Carry a conv layer's quantized weights into its plan.

    Stores the (Cout, K) quantized matrix in the narrowest integer dtype
    that holds it (int8 up to |q| <= 127) plus the float32 scale(s); the
    int32 compute twins and the overflow bound are derived lazily. The
    exactness probe (``runtime.kernels.calibrate_int_exact``) and the
    engine decide per step whether this lowering actually runs.
    """
    q = np.asarray(weight_q)
    q2d = q.reshape(q.shape[0], -1)
    max_abs = int(np.abs(q2d).max()) if q2d.size else 0
    dtype = np.int8 if max_abs <= 127 else np.int16
    plan.wq = np.ascontiguousarray(q2d, dtype=dtype)
    plan.wq_scale = np.asarray(weight_scale, dtype=np.float32)
    plan._wq_i32 = None
    plan._wqT_i32 = None
    plan._int_bound = None
    plan._int_exact = {}


def plan_deployable(network) -> NetworkPlan:
    """Lower a :class:`~repro.quant.convert.DeployableNetwork`.

    Dequantization happens once here -- the per-call
    ``effective_weight()`` materialisation of the legacy loop is hoisted
    into the plan. Quantized conv layers additionally carry their integer
    weights + scales (see :func:`attach_int_lowering`) so the engine can
    run them with int32 accumulation instead of dequantized floats.
    """
    layers: List[LayerPlan] = []
    for layer in network.layers:
        plan = _lower_weights(
            name=layer.name,
            kind=layer.kind,
            weight=layer.effective_weight(),
            bias=layer.effective_bias(),
            kernel=layer.kernel,
            padding=layer.padding,
            input_shape=layer.input_shape,
            output_shape=layer.output_shape,
            is_input_layer=layer.is_input_layer,
        )
        plan.pool_after = layer.pool_after
        if layer.kind == "conv" and layer.weight_scale is not None:
            attach_int_lowering(plan, layer.weight_q, layer.weight_scale)
        layers.append(plan)
    return NetworkPlan(
        layers=layers,
        beta=network.lif.beta,
        threshold=network.lif.threshold,
        num_classes=network.num_classes,
        population_group=network.population_group,
        spike_rule="threshold",
        source="deployable",
    )


def plan_spiking(network) -> NetworkPlan:
    """Lower an eval-mode :class:`~repro.snn.network.SpikingNetwork`.

    BN stays un-folded: the plan captures the eval-mode normalisation
    constants and the engine applies them in the same elementwise order
    as :class:`~repro.snn.layers.BatchNorm2d`, keeping the lowered pass
    bit-identical to the legacy Tensor path. QAT-wrapped layers lower
    their fake-quantized forward weights.
    """
    layers: List[LayerPlan] = []
    for stage in network.stages:
        if stage.spec.kind == "pool":
            if not layers:
                raise RuntimeUnsupportedError(
                    "pool layer precedes any compute layer"
                )
            layers[-1].pool_after *= stage.spec.kernel
            continue
        layer = stage.layer
        if hasattr(layer, "_quantized_weight"):  # QAT wrapper
            weight = layer._quantized_weight().data
            bias_t = layer._quantized_bias()
            bias = (
                bias_t.data
                if bias_t is not None
                else np.zeros(weight.shape[0], dtype=np.float32)
            )
        else:
            weight = layer.weight.data
            bias = (
                layer.bias.data
                if layer.bias is not None
                else np.zeros(weight.shape[0], dtype=np.float32)
            )
        kind = "conv" if stage.spec.kind == "conv" else "fc"
        plan = _lower_weights(
            name=stage.name,
            kind=kind,
            weight=weight,
            bias=bias,
            kernel=stage.spec.kernel if kind == "conv" else 0,
            padding=(stage.spec.kernel // 2) if kind == "conv" else 0,
            input_shape=stage.input_shape,
            output_shape=stage.output_shape,
            is_input_layer=not layers,
        )
        if stage.bn is not None:
            if stage.bn.training:
                raise RuntimeUnsupportedError(
                    "runtime plans require eval-mode batch norm"
                )
            bn = stage.bn
            shape = (1, bn.num_features, 1, 1)
            mu = bn.running_mean.reshape(shape)
            var = bn.running_var.reshape(shape)
            # Same float32 op sequence as BatchNorm2d.forward in eval mode.
            plan.bn_mu = _as_f32(mu)
            plan.bn_inv_std = np.sqrt(var + np.float32(bn.eps)) ** -1.0
            plan.bn_gamma = _as_f32(bn.gamma.data.reshape(shape))
            plan.bn_beta = _as_f32(bn.beta.data.reshape(shape))
        layers.append(plan)
    if not layers:
        raise RuntimeUnsupportedError("network has no compute layers")
    return NetworkPlan(
        layers=layers,
        beta=network.lif_config.beta,
        threshold=network.lif_config.threshold,
        num_classes=network.num_classes,
        population_group=network.population_group,
        spike_rule="shifted",
        source="spiking",
    )
