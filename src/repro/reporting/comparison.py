"""Paper-vs-measured comparisons.

EXPERIMENTS.md is generated from these: each row pairs a metric the paper
reports with our measured value, and the verdict records whether the
*shape* of the result holds (direction / rough factor), which is the
reproduction target -- absolute numbers differ because the substrate is a
simulator and the datasets are synthetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.reporting.tables import Table


@dataclass
class ComparisonRow:
    """One metric compared between paper and reproduction."""

    metric: str
    paper_value: Optional[float]
    measured_value: Optional[float]
    unit: str = ""
    higher_is_better: Optional[bool] = None

    @property
    def ratio(self) -> Optional[float]:
        if (
            self.paper_value in (None, 0)
            or self.measured_value is None
        ):
            return None
        return self.measured_value / self.paper_value

    def direction_matches(self, reference: "ComparisonRow") -> bool:
        """True when this row beats/loses to ``reference`` the same way in
        paper and in measurement (sign of the comparison agrees)."""
        if None in (
            self.paper_value,
            self.measured_value,
            reference.paper_value,
            reference.measured_value,
        ):
            return False
        paper_sign = self.paper_value - reference.paper_value
        measured_sign = self.measured_value - reference.measured_value
        return (paper_sign >= 0) == (measured_sign >= 0)


@dataclass
class PaperComparison:
    """A named set of comparison rows with an overall verdict."""

    name: str
    rows: List[ComparisonRow] = field(default_factory=list)
    verdict: str = ""

    def add(
        self,
        metric: str,
        paper: Optional[float],
        measured: Optional[float],
        unit: str = "",
    ) -> None:
        self.rows.append(
            ComparisonRow(
                metric=metric,
                paper_value=paper,
                measured_value=measured,
                unit=unit,
            )
        )

    def as_table(self) -> Table:
        table = Table(
            title=self.name,
            columns=["metric", "paper", "measured", "measured/paper"],
        )
        for row in self.rows:
            label = f"{row.metric} [{row.unit}]" if row.unit else row.metric
            table.add_row(label, row.paper_value, row.measured_value, row.ratio)
        if self.verdict:
            table.add_note(f"verdict: {self.verdict}")
        return table

    def render(self) -> str:
        return self.as_table().render()
