"""Lightweight table / series containers with text renderers.

Every experiment harness returns these instead of printing directly, so
benches, the CLI and the EXPERIMENTS.md generator all share one path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError


def _format(value: Any) -> str:
    if value is None:
        return "--"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class Table:
    """A titled table with named columns."""

    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ReproError(
                f"row has {len(values)} values, table {self.title!r} has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        try:
            index = self.columns.index(name)
        except ValueError:
            raise ReproError(
                f"table {self.title!r} has no column {name!r}"
            ) from None
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """Markdown-style rendering with aligned columns."""
        cells = [[_format(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        divider = "-|-".join("-" * w for w in widths)
        lines = [f"### {self.title}", "", f"| {header} |", f"|-{divider}-|"]
        for row in cells:
            lines.append(
                "| " + " | ".join(v.ljust(w) for v, w in zip(row, widths)) + " |"
            )
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass
class Series:
    """One named data series of a figure (x -> y)."""

    name: str
    x_label: str
    y_label: str
    x: List[Any] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def add_point(self, x: Any, y: float) -> None:
        self.x.append(x)
        self.y.append(float(y))

    def as_table(self) -> Table:
        table = Table(
            title=self.name, columns=[self.x_label, self.y_label]
        )
        for x, y in zip(self.x, self.y):
            table.add_row(x, y)
        return table

    def render(self) -> str:
        return self.as_table().render()


def render_figure(title: str, series: Sequence[Series]) -> str:
    """Render several series of one figure as stacked tables."""
    parts = [f"## {title}"]
    for one in series:
        parts.append(one.render())
    return "\n\n".join(parts)
