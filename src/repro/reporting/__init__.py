"""Result tables, figure series, and paper-vs-measured comparisons."""

from repro.reporting.tables import Series, Table
from repro.reporting.comparison import ComparisonRow, PaperComparison

__all__ = ["ComparisonRow", "PaperComparison", "Series", "Table"]
