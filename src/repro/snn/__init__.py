"""Spiking neural network framework: neurons, layers, coding, training.

Implements the algorithmic side of the paper: LIF dynamics (Eq. 1-2),
surrogate-gradient BPTT training, direct and rate input coding, the
population-coded readout, and the VGG9 network used in the evaluation.
"""

from repro.snn.arch import LayerSpec, parse_architecture, VGG9_ARCH
from repro.snn.encoding import DirectEncoder, Encoder, RateEncoder, make_encoder
from repro.snn.layers import (
    BatchNorm2d,
    Module,
    SpikingConv2d,
    SpikingLinear,
    SpikeMaxPool2d,
)
from repro.snn.metrics import SpikeStats, accuracy
from repro.snn.network import NetworkOutput, SpikingNetwork, build_network, build_vgg9
from repro.snn.neuron import LIFConfig, LIFNeuron
from repro.snn.surrogate import ATanSurrogate, FastSigmoidSurrogate, Surrogate
from repro.snn.training import Trainer, TrainingConfig, TrainingResult

__all__ = [
    "ATanSurrogate",
    "BatchNorm2d",
    "DirectEncoder",
    "Encoder",
    "FastSigmoidSurrogate",
    "LIFConfig",
    "LIFNeuron",
    "LayerSpec",
    "Module",
    "NetworkOutput",
    "RateEncoder",
    "SpikeMaxPool2d",
    "SpikeStats",
    "SpikingConv2d",
    "SpikingLinear",
    "SpikingNetwork",
    "Surrogate",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
    "VGG9_ARCH",
    "accuracy",
    "build_network",
    "build_vgg9",
    "make_encoder",
    "parse_architecture",
]
