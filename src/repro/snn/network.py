"""The spiking network: multi-timestep execution, recording, readout.

A :class:`SpikingNetwork` is built from parsed :class:`~repro.snn.arch.LayerSpec`
tokens. Execution unrolls ``T`` timesteps (BPTT when gradients are on),
threading LIF membrane state through time, and produces

* class logits from the population-coded output layer (spike counts
  summed over time and grouped per class, following reference [14]),
* per-layer spike statistics (Fig. 1 / workload model Eq. 3), and
* optionally the full per-layer input trains that the hardware simulator
  replays cycle-accurately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ArchitectureError, ShapeError
from repro.snn.arch import LayerSpec, VGG9_ARCH, parse_architecture
from repro.snn.encoding import DirectEncoder, Encoder
from repro.snn.layers import (
    BatchNorm2d,
    Module,
    SpikeMaxPool2d,
    SpikingConv2d,
    SpikingLinear,
)
from repro.snn.metrics import SpikeStats
from repro.snn.neuron import LIFConfig, LIFNeuron
from repro.snn.surrogate import Surrogate
from repro.tensor import Tensor, no_grad
from repro.utils.rng import SeedLike, fork_rng, new_rng


@dataclass
class _Stage:
    """One executable step of the network (compute layer or pool)."""

    spec: LayerSpec
    layer: Optional[Module] = None
    bn: Optional[BatchNorm2d] = None
    lif: Optional[LIFNeuron] = None
    pool: Optional[SpikeMaxPool2d] = None
    input_shape: Tuple[int, ...] = ()
    output_shape: Tuple[int, ...] = ()

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_compute(self) -> bool:
        return self.spec.is_compute


@dataclass
class NetworkOutput:
    """Everything one forward pass produces.

    Attributes:
        logits: (N, num_classes) class scores (accumulated population
            spike counts); a Tensor so losses can backpropagate.
        stats: spike statistics for this batch.
        input_spike_totals: per compute layer, the number of *input*
            events it consumed (drives the Eq. 3 workload model). The
            analog input layer under direct coding reports pixel count.
        spike_trains: when recording, per compute layer a list of T
            arrays holding the layer's input at each timestep (binary for
            sparse layers; analog frame for the direct-coded input layer).
        output_spike_counts: (N, P) spike counts of the output layer.
    """

    logits: Tensor
    stats: SpikeStats
    input_spike_totals: Dict[str, float] = field(default_factory=dict)
    spike_trains: Optional[Dict[str, List[np.ndarray]]] = None
    output_spike_counts: Optional[np.ndarray] = None


class SpikingNetwork(Module):
    """A feed-forward SNN assembled from an architecture string.

    Args:
        specs: parsed layer specs (see :func:`repro.snn.arch.parse_architecture`).
        input_shape: (channels, height, width) of one input frame.
        num_classes: classification classes; the population layer size
            must be divisible by this.
        lif: LIF hyper-parameters shared by all layers (paper: beta=0.15,
            theta=0.5).
        surrogate: surrogate gradient; default fast sigmoid.
        use_batchnorm: attach layer-wise BN after each convolution
            (Sec. V-A); folded away at deployment.
        seed: weight-initialisation seed.
    """

    def __init__(
        self,
        specs: Sequence[LayerSpec],
        input_shape: Tuple[int, int, int],
        num_classes: int,
        lif: Optional[LIFConfig] = None,
        surrogate: Optional[Surrogate] = None,
        use_batchnorm: bool = True,
        seed: SeedLike = None,
    ) -> None:
        if len(input_shape) != 3:
            raise ShapeError(f"input_shape must be (C, H, W), got {input_shape}")
        self.specs = list(specs)
        self.input_shape = tuple(int(v) for v in input_shape)
        self.num_classes = int(num_classes)
        self.lif_config = lif or LIFConfig()
        self.surrogate = surrogate
        self.use_batchnorm = use_batchnorm
        rng = new_rng(seed)
        self.stages: List[_Stage] = self._build(rng)
        self._validate_output()
        self._runtime_plan = None
        self._runtime_buffers = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, rng: np.random.Generator) -> List[_Stage]:
        stages: List[_Stage] = []
        channels, height, width = self.input_shape
        flattened = False
        for spec in self.specs:
            if spec.kind == "conv":
                if flattened:
                    raise ArchitectureError(
                        f"conv layer {spec.name} after a fully connected layer"
                    )
                layer = SpikingConv2d(
                    channels,
                    spec.units,
                    kernel_size=spec.kernel,
                    seed=fork_rng(rng, spec.name),
                )
                bn = BatchNorm2d(spec.units) if self.use_batchnorm else None
                stage = _Stage(
                    spec=spec,
                    layer=layer,
                    bn=bn,
                    lif=LIFNeuron(self.lif_config, self.surrogate),
                    input_shape=(channels, height, width),
                    output_shape=(spec.units, height, width),
                )
                channels = spec.units
            elif spec.kind == "pool":
                if height % spec.kernel or width % spec.kernel:
                    raise ArchitectureError(
                        f"pool {spec.name} window {spec.kernel} does not divide "
                        f"spatial size {(height, width)}"
                    )
                stage = _Stage(
                    spec=spec,
                    pool=SpikeMaxPool2d(spec.kernel),
                    input_shape=(channels, height, width),
                    output_shape=(
                        channels,
                        height // spec.kernel,
                        width // spec.kernel,
                    ),
                )
                height //= spec.kernel
                width //= spec.kernel
            else:  # fc / population
                in_features = channels * height * width if not flattened else channels
                layer = SpikingLinear(
                    in_features, spec.units, seed=fork_rng(rng, spec.name)
                )
                stage = _Stage(
                    spec=spec,
                    layer=layer,
                    lif=LIFNeuron(self.lif_config, self.surrogate),
                    input_shape=(in_features,),
                    output_shape=(spec.units,),
                )
                channels = spec.units
                height = width = 1
                flattened = True
            stages.append(stage)
        return stages

    def _validate_output(self) -> None:
        last = self.stages[-1]
        if not last.is_compute:
            raise ArchitectureError("network must end with a compute layer")
        out_units = last.spec.units
        if out_units % self.num_classes:
            raise ArchitectureError(
                f"output layer size {out_units} is not divisible by "
                f"num_classes={self.num_classes} (population coding needs "
                "equal groups)"
            )
        self.population_size = out_units
        self.population_group = out_units // self.num_classes

    # ------------------------------------------------------------------
    # Module protocol
    # ------------------------------------------------------------------
    def parameters(self) -> List[Tensor]:
        params: List[Tensor] = []
        for stage in self.stages:
            if stage.layer is not None:
                params.extend(stage.layer.parameters())
            if stage.bn is not None:
                params.extend(stage.bn.parameters())
        return params

    def train(self, mode: bool = True) -> "SpikingNetwork":
        self.training = mode
        for stage in self.stages:
            if stage.layer is not None:
                stage.layer.train(mode)
            if stage.bn is not None:
                stage.bn.train(mode)
        # Mode flips bracket weight/BN mutation (training steps, QAT prep);
        # drop the lowered plan so eval forwards re-capture fresh weights.
        self._runtime_plan = None
        return self

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for stage in self.stages:
            if stage.layer is not None:
                for key, value in stage.layer.state_dict().items():
                    state[f"{stage.name}.{key}"] = value
            if stage.bn is not None:
                for key, value in stage.bn.state_dict().items():
                    state[f"{stage.name}.bn.{key}"] = value
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for stage in self.stages:
            if stage.layer is not None:
                sub = _extract(state, f"{stage.name}.", exclude=f"{stage.name}.bn.")
                stage.layer.load_state_dict(sub)
            if stage.bn is not None:
                stage.bn.load_state_dict(_extract(state, f"{stage.name}.bn."))
        self.invalidate_runtime_cache()

    def invalidate_runtime_cache(self) -> None:
        """Drop the cached runtime plan (call after mutating weights
        outside of ``train()``/``load_state_dict``)."""
        self._runtime_plan = None
        if self._runtime_buffers is not None:
            self._runtime_buffers.clear()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def forward(
        self,
        images: np.ndarray,
        timesteps: int,
        encoder: Optional[Encoder] = None,
        record: bool = False,
    ) -> NetworkOutput:
        """Run ``timesteps`` steps of the network on an image batch.

        Args:
            images: (N, C, H, W) float array (analog frames in [0, 1]).
            timesteps: T >= 1; the paper uses T=2 for direct coding and
                T=25 for the rate-coding comparison.
            encoder: input encoder; defaults to direct coding.
            record: additionally capture per-layer input trains (needed to
                replay the batch on the hardware model).
        """
        if timesteps < 1:
            raise ShapeError(f"timesteps must be >= 1, got {timesteps}")
        images = np.asarray(images, dtype=np.float32)
        if images.ndim != 4 or images.shape[1:] != self.input_shape:
            raise ShapeError(
                f"expected images of shape (N, {self.input_shape}), got {images.shape}"
            )
        encoder = encoder or DirectEncoder()
        if self._runtime_eligible():
            output = self._forward_runtime(images, timesteps, encoder, record)
            if output is not None:
                return output
        encoder.reset()

        stats = SpikeStats(samples=images.shape[0], timesteps=timesteps)
        input_totals: Dict[str, float] = {}
        trains: Optional[Dict[str, List[np.ndarray]]] = (
            {s.name: [] for s in self.stages if s.is_compute} if record else None
        )
        membranes: Dict[str, Optional[Tensor]] = {
            stage.name: None for stage in self.stages if stage.is_compute
        }
        accumulated: Optional[Tensor] = None

        for t in range(timesteps):
            x = encoder.encode(images, t)
            for stage in self.stages:
                if stage.pool is not None:
                    x = stage.pool(x)
                    continue
                if trains is not None:
                    trains[stage.name].append(x.data.copy())
                input_totals[stage.name] = (
                    input_totals.get(stage.name, 0.0) + float(x.data.sum())
                )
                current = stage.layer(x)
                if stage.bn is not None:
                    current = stage.bn(current)
                spikes, membranes[stage.name] = stage.lif.step(
                    current, membranes[stage.name]
                )
                stats.record(stage.name, t, spikes.data)
                x = spikes
            accumulated = x if accumulated is None else accumulated + x

        logits = self._readout(accumulated)
        return NetworkOutput(
            logits=logits,
            stats=stats,
            input_spike_totals=input_totals,
            spike_trains=trains,
            output_spike_counts=accumulated.data.copy(),
        )

    __call__ = forward

    def _runtime_eligible(self) -> bool:
        """Route through the fused runtime only for pure inference.

        Training-mode BN and autograd recording need the legacy Tensor
        loop; :meth:`predict` (eval + no_grad) takes the runtime path.
        """
        from repro.runtime import runtime_config
        from repro.tensor.tensor import grad_enabled

        return (
            runtime_config().enabled
            and not self.training
            and not grad_enabled()
        )

    def _forward_runtime(
        self,
        images: np.ndarray,
        timesteps: int,
        encoder: Encoder,
        record: bool,
    ) -> Optional[NetworkOutput]:
        """Inference via :mod:`repro.runtime`; None if the net can't lower."""
        from repro.errors import RuntimeUnsupportedError
        from repro.runtime import (
            BufferPool,
            InferenceEngine,
            plan_spiking,
            stack_encoder_frames,
        )

        if self._runtime_plan is None:
            try:
                self._runtime_plan = plan_spiking(self)
            except RuntimeUnsupportedError:
                return None
        stacked, time_invariant = stack_encoder_frames(
            encoder, images, timesteps, record=record
        )
        if self._runtime_buffers is None:
            self._runtime_buffers = BufferPool()
        engine = InferenceEngine(
            self._runtime_plan, buffers=self._runtime_buffers
        )
        result = engine.run(
            stacked,
            record=record,
            analog_first=encoder.analog_input,
            time_invariant=time_invariant,
        )
        n = images.shape[0]
        grouped = result.accumulated.reshape(
            n, self.num_classes, self.population_group
        )
        logits = Tensor(np.asarray(grouped.sum(axis=2), dtype=np.float32))
        trains = (
            {name: list(arr) for name, arr in result.trains.items()}
            if result.trains is not None
            else None
        )
        return NetworkOutput(
            logits=logits,
            stats=result.stats,
            input_spike_totals=result.input_totals,
            spike_trains=trains,
            output_spike_counts=result.accumulated.copy(),
        )

    def _readout(self, counts: Tensor) -> Tensor:
        """Population readout: sum each class's neuron group (ref. [14])."""
        n = counts.shape[0]
        grouped = counts.reshape(n, self.num_classes, self.population_group)
        return grouped.sum(axis=2)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def predict(
        self,
        images: np.ndarray,
        timesteps: int,
        encoder: Optional[Encoder] = None,
        batch_size: int = 64,
    ) -> np.ndarray:
        """Inference-mode class predictions over a (possibly large) set.

        Batches thread the global sample offset into the encoder
        (``for_samples``), so counter-stream encodings are independent
        of ``batch_size`` -- sample ``i`` draws the same spikes whether
        the set is predicted in one pass or in chunks.
        """
        was_training = self.training
        self.eval()
        encoder = encoder or DirectEncoder()
        predictions: List[np.ndarray] = []
        try:
            with no_grad():
                for start in range(0, len(images), batch_size):
                    batch = images[start : start + batch_size]
                    out = self.forward(
                        batch, timesteps, encoder.for_samples(start)
                    )
                    predictions.append(out.logits.data.argmax(axis=1))
        finally:
            self.train(was_training)
        return np.concatenate(predictions) if predictions else np.empty(0, dtype=int)

    def compute_stages(self) -> List[_Stage]:
        """Weight-bearing stages in execution order."""
        return [stage for stage in self.stages if stage.is_compute]

    def describe(self) -> str:
        lines = [f"SpikingNetwork(input={self.input_shape}, classes={self.num_classes})"]
        for stage in self.stages:
            shape = " -> ".join(str(s) for s in (stage.input_shape, stage.output_shape))
            lines.append(f"  {stage.name:<10s} {stage.spec.kind:<10s} {shape}")
        return "\n".join(lines)


def _extract(
    state: Dict[str, np.ndarray], prefix: str, exclude: str = "\0"
) -> Dict[str, np.ndarray]:
    return {
        key[len(prefix) :]: value
        for key, value in state.items()
        if key.startswith(prefix) and not key.startswith(exclude)
    }


def build_network(
    arch: str,
    input_shape: Tuple[int, int, int],
    num_classes: int,
    population: Optional[int] = None,
    channel_scale: float = 1.0,
    lif: Optional[LIFConfig] = None,
    surrogate: Optional[Surrogate] = None,
    use_batchnorm: bool = True,
    seed: SeedLike = None,
) -> SpikingNetwork:
    """Parse ``arch`` and construct the network in one call."""
    specs = parse_architecture(arch, population=population, channel_scale=channel_scale)
    return SpikingNetwork(
        specs,
        input_shape=input_shape,
        num_classes=num_classes,
        lif=lif,
        surrogate=surrogate,
        use_batchnorm=use_batchnorm,
        seed=seed,
    )


def build_vgg9(
    num_classes: int = 10,
    population: int = 1000,
    input_shape: Tuple[int, int, int] = (3, 32, 32),
    channel_scale: float = 1.0,
    lif: Optional[LIFConfig] = None,
    surrogate: Optional[Surrogate] = None,
    seed: SeedLike = None,
) -> SpikingNetwork:
    """The paper's VGG9 (Sec. V-A), optionally channel-scaled.

    Population defaults: 1000 for SVHN/CIFAR10, 5000 for CIFAR100.
    """
    return build_network(
        VGG9_ARCH,
        input_shape=input_shape,
        num_classes=num_classes,
        population=population,
        channel_scale=channel_scale,
        lif=lif,
        surrogate=surrogate,
        seed=seed,
    )
