"""Input encodings: direct coding and rate coding (Sec. I / Sec. V-D).

*Direct coding* feeds the raw analog image into the first convolution at
every timestep; the first LIF layer converts the resulting currents into
spikes. The input layer therefore sees dense, non-binary data -- the
reason the paper pairs it with a dedicated dense core.

*Rate coding* converts each pixel into a Bernoulli spike train whose rate
is the (normalised) intensity, so every layer -- including the first --
receives binary, sparse inputs and can run on sparse cores alone.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.tensor import Tensor
from repro.utils.rng import SeedLike, new_rng


class Encoder:
    """Produces the network input for timestep ``t`` from an image batch."""

    #: True when the first layer receives analog (non-binary) values.
    analog_input = False
    #: True when every timestep presents the identical input (lets the
    #: runtime memoise the first-layer current across timesteps).
    time_invariant = False
    #: True when the encoding is a pure function of (images, t) -- no
    #: internal random state. Deterministic encoders produce identical
    #: trains regardless of how a batch is split, which lets the sharded
    #: evaluation path (repro.parallel) split work freely. Deliberately
    #: False by default: a stochastic subclass that forgets to set it
    #: must degrade to the sequential path, never silently shard.
    deterministic = False
    name = "base"

    def encode(self, images: np.ndarray, t: int) -> Tensor:
        raise NotImplementedError

    def reset(self) -> None:
        """Called once per forward pass, before timestep 0."""


class DirectEncoder(Encoder):
    """Direct coding: the same analog frame is presented every timestep."""

    analog_input = True
    time_invariant = True
    deterministic = True
    name = "direct"

    def encode(self, images: np.ndarray, t: int) -> Tensor:
        return Tensor(images)


class RateEncoder(Encoder):
    """Rate coding: pixel intensity -> Bernoulli firing probability.

    Intensities are clipped to [0, 1] (our synthetic datasets already live
    there); ``gain`` rescales the probability, trading spike density
    against information per timestep.
    """

    analog_input = False
    name = "rate"

    def __init__(self, gain: float = 1.0, seed: SeedLike = None) -> None:
        if not 0.0 < gain <= 1.0:
            raise ConfigError(f"gain must be in (0, 1], got {gain}")
        self.gain = gain
        self._rng = new_rng(seed)

    def encode(self, images: np.ndarray, t: int) -> Tensor:
        probabilities = np.clip(images, 0.0, 1.0) * self.gain
        spikes = (
            self._rng.random(images.shape) < probabilities
        ).astype(np.float32)
        return Tensor(spikes)


class TtfsEncoder(Encoder):
    """Time-to-first-spike coding: brighter pixels fire *earlier*.

    An extension beyond the paper's direct/rate comparison (its Sec. VI
    calls for evaluating more encodings): each pixel emits exactly one
    spike across the ``timesteps`` horizon, at
    ``t = floor((1 - intensity) * timesteps)``. The resulting trains are
    even sparser than rate coding (one spike per pixel total), at the
    cost of needing enough timesteps to resolve intensity.
    """

    analog_input = False
    deterministic = True
    name = "ttfs"

    def __init__(self, timesteps: int) -> None:
        if timesteps < 1:
            raise ConfigError(f"timesteps must be >= 1, got {timesteps}")
        self.timesteps = timesteps

    def encode(self, images: np.ndarray, t: int) -> Tensor:
        intensity = np.clip(images, 0.0, 1.0)
        fire_step = np.minimum(
            (1.0 - intensity) * self.timesteps, self.timesteps - 1
        ).astype(np.int64)
        return Tensor((fire_step == t).astype(np.float32))


def make_encoder(
    name: str,
    seed: SeedLike = None,
    gain: float = 1.0,
    timesteps: int = 8,
) -> Encoder:
    """Instantiate an encoder by name ('direct', 'rate' or 'ttfs')."""
    if name == "direct":
        return DirectEncoder()
    if name == "rate":
        return RateEncoder(gain=gain, seed=seed)
    if name == "ttfs":
        return TtfsEncoder(timesteps=timesteps)
    raise ConfigError(
        f"unknown encoder {name!r}; expected 'direct', 'rate' or 'ttfs'"
    )
