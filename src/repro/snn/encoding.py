"""Input encodings: direct coding and rate coding (Sec. I / Sec. V-D).

*Direct coding* feeds the raw analog image into the first convolution at
every timestep; the first LIF layer converts the resulting currents into
spikes. The input layer therefore sees dense, non-binary data -- the
reason the paper pairs it with a dedicated dense core.

*Rate coding* converts each pixel into a Bernoulli spike train whose rate
is the (normalised) intensity, so every layer -- including the first --
receives binary, sparse inputs and can run on sparse cores alone.

Stream discipline: stochastic encoders draw from *counter-based*
streams (:func:`repro.utils.rng.counter_rng`) keyed on ``(seed, global
sample index, timestep)``. The encoded train is therefore a pure
function of those coordinates -- independent of batch split, shard
geometry, worker count, draw order and process boundaries -- which is
what lets the sharded evaluation path treat rate coding exactly like
the deterministic direct/TTFS encodings. :meth:`Encoder.for_samples`
positions an encoder inside the global sample index space; batch and
shard loops thread it so sample ``i`` of a sub-batch draws the same
stream it would draw in the full batch.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.tensor import Tensor
from repro.utils.rng import SeedLike, canonical_stream_seed, counter_uniforms


class Encoder:
    """Produces the network input for timestep ``t`` from an image batch."""

    #: True when the first layer receives analog (non-binary) values.
    analog_input = False
    #: True when every timestep presents the identical input (lets the
    #: runtime memoise the first-layer current across timesteps). A
    #: property of the encoding *stream* -- every encoder with the same
    #: stream signature shares it -- never of a particular instance.
    time_invariant = False
    #: True when the encoding is a pure function of (images, global
    #: sample index, t) -- no draw-order-dependent state. Deterministic
    #: encoders produce identical trains regardless of how a batch is
    #: split (given :meth:`for_samples` offset threading), which lets
    #: the sharded evaluation path (repro.parallel) split work freely.
    #: Deliberately False by default: a stateful subclass that forgets
    #: to set it must degrade to the sequential path, never silently
    #: shard.
    deterministic = False
    name = "base"

    def encode(self, images: np.ndarray, t: int) -> Tensor:
        raise NotImplementedError

    def reset(self) -> None:
        """Called once per forward pass, before timestep 0.

        Must restore the encoding stream to its initial state, so that
        replaying the same batch produces the same train. Counter-based
        encoders satisfy this by construction (they hold no draw
        state); sequential stochastic encoders must rewind here.
        """

    def for_samples(self, offset: int) -> "Encoder":
        """An encoder whose sample 0 is this encoder's sample ``offset``.

        Batch/shard loops call this so that sample ``i`` of a sub-batch
        starting at ``offset`` draws the stream of global sample
        ``offset + i``. Offsets compose: ``e.for_samples(a).for_samples(b)``
        equals ``e.for_samples(a + b)``. Encoders whose output does not
        depend on the sample index (direct, TTFS) return themselves.
        """
        return self

    def stream_signature(self) -> str:
        """Stable identity of the encoding stream.

        Two encoders with equal signatures produce byte-identical trains
        for the same (images, global sample index, timestep) -- the key
        caches and memoisations must use instead of object identity.
        """
        return self.name


class DirectEncoder(Encoder):
    """Direct coding: the same analog frame is presented every timestep."""

    analog_input = True
    time_invariant = True
    deterministic = True
    name = "direct"

    def encode(self, images: np.ndarray, t: int) -> Tensor:
        return Tensor(images)


class RateEncoder(Encoder):
    """Rate coding: pixel intensity -> Bernoulli firing probability.

    Intensities are clipped to [0, 1] (our synthetic datasets already live
    there); ``gain`` rescales the probability, trading spike density
    against information per timestep.

    Draws come from counter-based Philox streams keyed on ``(seed,
    sample_offset + i, t)`` -- one independent block per (sample,
    timestep). The encoded train is a pure function of those
    coordinates: re-encoding a (sample, timestep) pair always
    reproduces the same spikes, back-to-back passes match a fresh
    process, and any batch split or shard geometry yields byte-identical
    trains once offsets are threaded via :meth:`for_samples`.
    """

    analog_input = False
    deterministic = True
    name = "rate"

    def __init__(
        self,
        gain: float = 1.0,
        seed: SeedLike = None,
        sample_offset: int = 0,
    ) -> None:
        if not 0.0 < gain <= 1.0:
            raise ConfigError(f"gain must be in (0, 1], got {gain}")
        if sample_offset < 0:
            raise ConfigError(
                f"sample_offset must be >= 0, got {sample_offset}"
            )
        self.gain = gain
        self.seed = canonical_stream_seed(seed)
        self.sample_offset = int(sample_offset)

    def encode(self, images: np.ndarray, t: int) -> Tensor:
        images = np.asarray(images)
        probabilities = np.clip(images, 0.0, 1.0) * self.gain
        # One Philox stream per sample, all run in a single vectorised
        # batch (byte-identical to a counter_rng(...).random(...) call
        # per sample, without the per-sample generator setup cost).
        n_samples = images.shape[0]
        per_sample = int(np.prod(images.shape[1:], dtype=np.int64))
        draws = counter_uniforms(
            self.seed,
            [(self.sample_offset + i, t) for i in range(n_samples)],
            per_sample,
        ).reshape(images.shape)
        return Tensor((draws < probabilities).astype(np.float32))

    def reset(self) -> None:
        """A no-op by construction: every (sample, timestep) block is
        re-keyed from the counter stream on each :meth:`encode`, so the
        'initial state' is always in effect -- back-to-back passes in
        one process are identical to a fresh process."""

    def for_samples(self, offset: int) -> "RateEncoder":
        if offset == 0:
            return self
        return RateEncoder(
            gain=self.gain,
            seed=self.seed,
            sample_offset=self.sample_offset + int(offset),
        )

    def stream_signature(self) -> str:
        # sample_offset is deliberately excluded: it positions a view
        # inside the stream, it does not change which stream this is.
        return f"rate/counter-philox-v1/seed={self.seed}/gain={self.gain!r}"


class TtfsEncoder(Encoder):
    """Time-to-first-spike coding: brighter pixels fire *earlier*.

    An extension beyond the paper's direct/rate comparison (its Sec. VI
    calls for evaluating more encodings): each pixel emits exactly one
    spike across the ``timesteps`` horizon, at
    ``t = floor((1 - intensity) * timesteps)``. The resulting trains are
    even sparser than rate coding (one spike per pixel total), at the
    cost of needing enough timesteps to resolve intensity.
    """

    analog_input = False
    deterministic = True
    name = "ttfs"

    def __init__(self, timesteps: int) -> None:
        if timesteps < 1:
            raise ConfigError(f"timesteps must be >= 1, got {timesteps}")
        self.timesteps = timesteps

    def encode(self, images: np.ndarray, t: int) -> Tensor:
        intensity = np.clip(images, 0.0, 1.0)
        fire_step = np.minimum(
            (1.0 - intensity) * self.timesteps, self.timesteps - 1
        ).astype(np.int64)
        return Tensor((fire_step == t).astype(np.float32))

    def stream_signature(self) -> str:
        return f"ttfs/timesteps={self.timesteps}"


def make_encoder(
    name: str,
    seed: SeedLike = None,
    gain: float = 1.0,
    timesteps: int = 8,
) -> Encoder:
    """Instantiate an encoder by name ('direct', 'rate' or 'ttfs')."""
    if name == "direct":
        return DirectEncoder()
    if name == "rate":
        return RateEncoder(gain=gain, seed=seed)
    if name == "ttfs":
        return TtfsEncoder(timesteps=timesteps)
    raise ConfigError(
        f"unknown encoder {name!r}; expected 'direct', 'rate' or 'ttfs'"
    )
