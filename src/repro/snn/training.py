"""Surrogate-gradient BPTT trainer.

Mirrors the paper's training setup (Sec. V-A): snnTorch-style direct
training with surrogate gradients, Adam, cross-entropy on the
population-count logits, layer-wise batch norm. Works identically for
float and quantization-aware (fake-quant wrapped) networks, which is how
the fp32-vs-int4 comparison keeps everything else equal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.snn.encoding import Encoder, make_encoder
from repro.snn.network import SpikingNetwork
from repro.tensor import ops
from repro.tensor.optim import Adam
from repro.utils.rng import SeedLike, new_rng


@dataclass
class TrainingConfig:
    """Hyper-parameters for one training run.

    Attributes:
        epochs: passes over the training set.
        batch_size: SGD minibatch size.
        lr: Adam learning rate.
        timesteps: BPTT unroll length T (paper: 2 for direct coding).
        encoder: 'direct' or 'rate'.
        seed: shuffling / rate-sampling seed.
        grad_clip: optional L-inf gradient clip (0 disables).
        verbose: print one line per epoch.
    """

    epochs: int = 5
    batch_size: int = 32
    lr: float = 2e-3
    timesteps: int = 2
    encoder: str = "direct"
    seed: SeedLike = 0
    grad_clip: float = 0.0
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.timesteps < 1:
            raise ConfigError(f"timesteps must be >= 1, got {self.timesteps}")


@dataclass
class TrainingResult:
    """Loss/accuracy history of a completed run."""

    epoch_losses: List[float] = field(default_factory=list)
    epoch_train_accuracy: List[float] = field(default_factory=list)
    epoch_test_accuracy: List[float] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def final_test_accuracy(self) -> float:
        return self.epoch_test_accuracy[-1] if self.epoch_test_accuracy else 0.0

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


class Trainer:
    """Trains a :class:`SpikingNetwork` with BPTT + Adam.

    Args:
        network: the model (possibly QAT-wrapped; anything exposing the
            Module protocol with a ``forward(images, T, encoder)``).
        config: hyper-parameters.
        loss_fn: optional override; default cross-entropy on logits.
    """

    def __init__(
        self,
        network: SpikingNetwork,
        config: Optional[TrainingConfig] = None,
        loss_fn: Optional[Callable] = None,
    ) -> None:
        self.network = network
        self.config = config or TrainingConfig()
        self.loss_fn = loss_fn or ops.cross_entropy
        self.optimizer = Adam(network.parameters(), lr=self.config.lr)
        self._rng = new_rng(self.config.seed)

    def fit(
        self,
        train_images: np.ndarray,
        train_labels: np.ndarray,
        test_images: Optional[np.ndarray] = None,
        test_labels: Optional[np.ndarray] = None,
    ) -> TrainingResult:
        """Run the full training loop; returns the per-epoch history."""
        cfg = self.config
        result = TrainingResult()
        start = time.perf_counter()
        n = len(train_images)
        encoder = self._make_encoder()
        for epoch in range(cfg.epochs):
            self.network.train(True)
            order = self._rng.permutation(n)
            losses: List[float] = []
            correct = 0
            for begin in range(0, n, cfg.batch_size):
                batch_idx = order[begin : begin + cfg.batch_size]
                images = train_images[batch_idx]
                labels = train_labels[batch_idx]
                # Counter-stream encoders key draws on the global sample
                # index; advance it by (epoch, position-in-epoch) so
                # every training step sees fresh encoding noise instead
                # of replaying the indices of the first batch.
                loss, batch_correct = self._step(
                    images, labels, encoder.for_samples(epoch * n + begin)
                )
                losses.append(loss)
                correct += batch_correct
            result.epoch_losses.append(float(np.mean(losses)))
            result.epoch_train_accuracy.append(correct / n)
            if test_images is not None and test_labels is not None:
                predictions = self.network.predict(
                    test_images, cfg.timesteps, self._make_encoder()
                )
                test_acc = float((predictions == test_labels).mean())
                result.epoch_test_accuracy.append(test_acc)
            if cfg.verbose:
                test_part = (
                    f", test acc {result.epoch_test_accuracy[-1] * 100.0:.1f}%"
                    if result.epoch_test_accuracy
                    else ""
                )
                print(
                    f"epoch {epoch + 1}/{cfg.epochs}: "
                    f"loss {result.epoch_losses[-1]:.4f}, "
                    f"train acc {result.epoch_train_accuracy[-1] * 100.0:.1f}%"
                    f"{test_part}"
                )
        result.wall_seconds = time.perf_counter() - start
        return result

    def _step(self, images: np.ndarray, labels: np.ndarray, encoder: Encoder):
        """One optimisation step; returns (loss value, #correct)."""
        cfg = self.config
        self.optimizer.zero_grad()
        out = self.network.forward(images, cfg.timesteps, encoder)
        loss = self.loss_fn(out.logits, labels)
        loss.backward()
        if cfg.grad_clip > 0:
            for param in self.optimizer.params:
                if param.grad is not None:
                    np.clip(param.grad, -cfg.grad_clip, cfg.grad_clip, out=param.grad)
        self.optimizer.step()
        predictions = out.logits.data.argmax(axis=1)
        return float(loss.data), int((predictions == labels).sum())

    def _make_encoder(self) -> Encoder:
        return make_encoder(
            self.config.encoder, seed=self._rng.integers(0, 2**31 - 1)
        )

    def evaluate(
        self, images: np.ndarray, labels: np.ndarray, batch_size: int = 64
    ) -> float:
        """Test accuracy with the trainer's encoder/timesteps."""
        predictions = self.network.predict(
            images, self.config.timesteps, self._make_encoder(), batch_size
        )
        return float((predictions == labels).mean())
