"""Leaky integrate-and-fire neuron (Eq. 1 and 2 of the paper).

Membrane update with reset-by-subtraction::

    u[t+1] = beta * u[t] + I[t] - s[t] * theta        (Eq. 1)
    s[t]   = 1 if u[t] > theta else 0                 (Eq. 2)

where ``beta`` is the leak (decay) factor and ``theta`` the firing
threshold. The paper tunes ``beta = 0.15`` and ``theta = 0.5``; a *lower*
beta forgets faster (sparser temporal integration), a *lower* theta fires
more easily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.tensor import Tensor, ops
from repro.snn.surrogate import ATanSurrogate, Surrogate

#: Hyper-parameters used throughout the paper's evaluation (Sec. V-A).
PAPER_BETA = 0.15
PAPER_THETA = 0.5


@dataclass(frozen=True)
class LIFConfig:
    """LIF hyper-parameters.

    Attributes:
        beta: membrane leak factor in [0, 1]; 1 keeps the full previous
            potential, 0 integrates only the instantaneous input.
        threshold: firing threshold theta (> 0).
    """

    beta: float = PAPER_BETA
    threshold: float = PAPER_THETA

    def __post_init__(self) -> None:
        if not 0.0 <= self.beta <= 1.0:
            raise ConfigError(f"beta must be in [0, 1], got {self.beta}")
        if self.threshold <= 0.0:
            raise ConfigError(f"threshold must be positive, got {self.threshold}")


class LIFNeuron:
    """A layer of LIF neurons sharing one (beta, theta) configuration.

    The neuron is *stateless at the object level*: membrane potential is
    threaded through :meth:`step` explicitly so one instance can serve
    several batches/timesteps and BPTT can unroll cleanly.
    """

    def __init__(
        self,
        config: Optional[LIFConfig] = None,
        surrogate: Optional[Surrogate] = None,
    ) -> None:
        self.config = config or LIFConfig()
        # ATan keeps gradient magnitudes flat through the nine layers of
        # the paper's VGG9 (the fast sigmoid's tighter bump vanishes over
        # depth); it is the surrogate of the paper's reference [10].
        self.surrogate = surrogate or ATanSurrogate()

    def initial_state(self, current: Tensor) -> Tensor:
        """Zero membrane potential matching the input's shape."""
        import numpy as np

        return Tensor(np.zeros(current.shape, dtype=current.data.dtype))

    def step(self, current: Tensor, membrane: Optional[Tensor]) -> Tuple[Tensor, Tensor]:
        """One timestep of Eq. 1/2.

        Args:
            current: weighted input current I[t] (conv/linear output).
            membrane: u[t] from the previous step, or None for u[0] = 0.

        Returns:
            (spikes, new_membrane): the binary spike tensor s[t] and the
            post-reset membrane potential u[t+1].
        """
        cfg = self.config
        if membrane is None:
            integrated = current
        else:
            integrated = membrane * cfg.beta + current
        spikes = ops.heaviside_surrogate(
            integrated - cfg.threshold, self.surrogate
        )
        new_membrane = integrated - spikes * cfg.threshold
        return spikes, new_membrane

    def __repr__(self) -> str:
        return (
            f"LIFNeuron(beta={self.config.beta}, "
            f"threshold={self.config.threshold}, "
            f"surrogate={self.surrogate.name})"
        )


def lif_scan(
    current: np.ndarray,
    beta: float,
    threshold: float,
    spike_rule: str = "threshold",
) -> Tuple[np.ndarray, np.ndarray]:
    """Inference-only LIF scan over a time-fused current tensor.

    Runs Eq. 1/2 sequentially along the leading time axis of ``current``
    (shape ``(T, ...)``), vectorised over everything else. The two spike
    rules reproduce the two legacy code paths bit-for-bit:

    * ``'threshold'`` -- ``u > theta`` (DeployableNetwork);
    * ``'shifted'`` -- ``(u - theta) > 0`` (SpikingNetwork's surrogate
      Heaviside); the forms differ only when the subtraction rounds to
      zero, but exactness demands matching each consumer.

    Returns the full spike train ``(T, ...)`` and the final membrane.
    """
    if spike_rule not in ("threshold", "shifted"):
        raise ConfigError(
            f"spike_rule must be 'threshold' or 'shifted', got {spike_rule!r}"
        )
    spikes = np.empty(current.shape, dtype=np.float32)
    membrane: Optional[np.ndarray] = None
    for t in range(current.shape[0]):
        integrated = current[t] if membrane is None else membrane * beta + current[t]
        if spike_rule == "threshold":
            fired = (integrated > threshold).astype(np.float32)
        else:
            fired = ((integrated - threshold) > 0).astype(np.float32)
        membrane = integrated - fired * threshold
        spikes[t] = fired
    return spikes, membrane
