"""Trainable spiking layers: conv, linear, batch norm, spike max-pool.

Layers expose a tiny ``Module`` protocol (parameters / train-mode /
state-dict) sufficient for the trainer, the quantizer, and serialization
without dragging in a full framework.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.errors import ShapeError
from repro.tensor import Tensor, ops, parameter
from repro.utils.rng import SeedLike, new_rng


class Module:
    """Minimal module protocol shared by all trainable components."""

    training: bool = True

    def parameters(self) -> List[Tensor]:
        """All trainable tensors owned (directly) by this module."""
        return []

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every persistent array, keyed by attribute name."""
        return {}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = self.state_dict()
        missing = sorted(set(own) - set(state))
        if missing:
            raise KeyError(f"missing keys in state dict: {missing}")
        for key in own:
            self._assign_state(key, np.asarray(state[key]))

    def _assign_state(self, key: str, value: np.ndarray) -> None:
        raise NotImplementedError

    def named_parameters(self) -> Iterator:
        for index, tensor in enumerate(self.parameters()):
            yield f"{type(self).__name__.lower()}.{index}", tensor


def _kaiming_normal(
    rng: np.random.Generator, shape: tuple, fan_in: int
) -> np.ndarray:
    """He-normal initialisation, the standard choice for ReLU-like nets and
    the default snnTorch setup the paper trains with."""
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


class SpikingConv2d(Module):
    """3x3-style convolution producing input *current* for a LIF layer.

    The weight layout is (out_channels, in_channels, k, k); stride is fixed
    at 1 and 'same' padding = k // 2 follows the paper's VGG9 (all 3x3,
    spatial size preserved; downsampling happens only in max-pool).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        bias: bool = True,
        seed: SeedLike = None,
    ) -> None:
        if in_channels < 1 or out_channels < 1:
            raise ShapeError(
                f"channel counts must be >= 1, got ({in_channels}, {out_channels})"
            )
        rng = new_rng(seed)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.padding = kernel_size // 2
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = parameter(
            _kaiming_normal(rng, (out_channels, in_channels, kernel_size, kernel_size), fan_in),
            name="conv.weight",
        )
        self.bias: Optional[Tensor]
        if bias:
            self.bias = parameter(np.zeros(out_channels, dtype=np.float32), name="conv.bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return ops.conv2d(x, self.weight, self.bias, stride=1, padding=self.padding)

    __call__ = forward

    def parameters(self) -> List[Tensor]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {"weight": self.weight.data.copy()}
        if self.bias is not None:
            state["bias"] = self.bias.data.copy()
        return state

    def _assign_state(self, key: str, value: np.ndarray) -> None:
        target = {"weight": self.weight, "bias": self.bias}[key]
        if target is None:
            raise KeyError(f"layer has no {key!r}")
        if target.data.shape != value.shape:
            raise ShapeError(
                f"state {key!r} shape {value.shape} != expected {target.data.shape}"
            )
        target.data = value.astype(np.float32)

    def __repr__(self) -> str:
        return (
            f"SpikingConv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size})"
        )


class SpikingLinear(Module):
    """Fully connected layer producing LIF input current."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        seed: SeedLike = None,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ShapeError(
                f"feature counts must be >= 1, got ({in_features}, {out_features})"
            )
        rng = new_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = parameter(
            _kaiming_normal(rng, (out_features, in_features), in_features),
            name="linear.weight",
        )
        self.bias: Optional[Tensor]
        if bias:
            self.bias = parameter(np.zeros(out_features, dtype=np.float32), name="linear.bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            x = x.reshape(x.shape[0], -1)
        if x.shape[1] != self.in_features:
            raise ShapeError(
                f"linear layer expects {self.in_features} features, got {x.shape[1]}"
            )
        return ops.linear(x, self.weight, self.bias)

    __call__ = forward

    def parameters(self) -> List[Tensor]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {"weight": self.weight.data.copy()}
        if self.bias is not None:
            state["bias"] = self.bias.data.copy()
        return state

    def _assign_state(self, key: str, value: np.ndarray) -> None:
        target = {"weight": self.weight, "bias": self.bias}[key]
        if target is None:
            raise KeyError(f"layer has no {key!r}")
        if target.data.shape != value.shape:
            raise ShapeError(
                f"state {key!r} shape {value.shape} != expected {target.data.shape}"
            )
        target.data = value.astype(np.float32)

    def __repr__(self) -> str:
        return f"SpikingLinear({self.in_features}, {self.out_features})"


class BatchNorm2d(Module):
    """Per-channel batch normalisation over (N, H, W).

    The paper uses layer-wise batch norm to prevent overfitting (Sec. V-A).
    In an SNN the same BN layer is applied at every timestep; running
    statistics therefore accumulate across timesteps as well as batches.
    At deployment BN folds into the preceding convolution
    (:func:`repro.quant.fold.fold_batchnorm`), which is how the hardware
    (which has no BN unit) realises it.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = parameter(np.ones(num_features, dtype=np.float32), name="bn.gamma")
        self.beta = parameter(np.zeros(num_features, dtype=np.float32), name="bn.beta")
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm2d({self.num_features}) got input shape {x.shape}"
            )
        if self.training:
            mu = ops.mean(x, axis=(0, 2, 3), keepdims=True)
            var = ops.mean((x - mu) ** 2.0, axis=(0, 2, 3), keepdims=True)
            m = self.momentum
            self.running_mean = (1 - m) * self.running_mean + m * mu.data.reshape(-1)
            self.running_var = (1 - m) * self.running_var + m * var.data.reshape(-1)
        else:
            mu = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        inv_std = ops.sqrt(var + Tensor(np.float32(self.eps))) ** -1.0
        normalised = (x - mu) * inv_std
        shape = (1, self.num_features, 1, 1)
        return normalised * self.gamma.reshape(shape) + self.beta.reshape(shape)

    __call__ = forward

    def parameters(self) -> List[Tensor]:
        return [self.gamma, self.beta]

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {
            "gamma": self.gamma.data.copy(),
            "beta": self.beta.data.copy(),
            "running_mean": self.running_mean.copy(),
            "running_var": self.running_var.copy(),
        }

    def _assign_state(self, key: str, value: np.ndarray) -> None:
        if key == "gamma":
            self.gamma.data = value.astype(np.float32)
        elif key == "beta":
            self.beta.data = value.astype(np.float32)
        elif key == "running_mean":
            self.running_mean = value.astype(np.float32)
        elif key == "running_var":
            self.running_var = value.astype(np.float32)
        else:
            raise KeyError(key)

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class SpikeMaxPool2d(Module):
    """Max pooling on binary spike maps == sliding an OR gate (Sec. IV-B).

    The paper pools *spikes* rather than membrane potentials, which matches
    SNN temporal dynamics and is free in hardware (an OR reduction over the
    N x N window). On {0, 1} inputs max equals logical OR exactly.
    """

    def __init__(self, window: int = 2) -> None:
        if window < 1:
            raise ShapeError(f"pool window must be >= 1, got {window}")
        self.window = window

    def forward(self, x: Tensor) -> Tensor:
        if self.window == 1:
            return x
        return ops.maxpool2d(x, self.window)

    __call__ = forward

    def __repr__(self) -> str:
        return f"SpikeMaxPool2d({self.window})"
