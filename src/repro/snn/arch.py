"""Architecture-string parser.

The paper describes its network compactly (Sec. V-A)::

    64C3-112C3-MP2-192C3-216C3-MP2-480C3-504C3-560C3-MP2-1064-P

where ``XCY`` is a convolution with X filters of size YxY, ``MPZ`` is ZxZ
max-pooling, a bare integer is a fully connected layer with that many
neurons, and ``P`` is the population-coded output layer whose size is a
free parameter (1000 for SVHN/CIFAR10, 5000 for CIFAR100).

This module parses such strings into :class:`LayerSpec` lists and supports
uniform channel scaling, which the experiment harness uses to run reduced
networks with identical structure.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import List, Optional

from repro.errors import ArchitectureError

#: The exact network evaluated in the paper.
VGG9_ARCH = "64C3-112C3-MP2-192C3-216C3-MP2-480C3-504C3-560C3-MP2-1064-P"

_CONV_RE = re.compile(r"^(\d+)C(\d+)$")
_POOL_RE = re.compile(r"^MP(\d+)$")
_FC_RE = re.compile(r"^(\d+)$")


@dataclass(frozen=True)
class LayerSpec:
    """One token of an architecture string.

    Attributes:
        kind: 'conv' | 'pool' | 'fc' | 'population'.
        units: filters (conv) or neurons (fc/population); 0 for pool.
        kernel: filter size for conv, pool window for pool, else 0.
        name: human-readable layer name assigned by the parser
            ('conv1_1', 'conv1_2', ..., 'fc1', 'fc2'); pools are named
            after their position ('pool1', ...).
    """

    kind: str
    units: int = 0
    kernel: int = 0
    name: str = ""

    @property
    def is_compute(self) -> bool:
        """True for layers that own weights (conv / fc / population)."""
        return self.kind in ("conv", "fc", "population")


def parse_architecture(
    arch: str,
    population: Optional[int] = None,
    channel_scale: float = 1.0,
) -> List[LayerSpec]:
    """Parse an architecture string into layer specs.

    Args:
        arch: string such as :data:`VGG9_ARCH`.
        population: number of neurons substituted for the ``P`` token;
            required when the string contains one.
        channel_scale: multiply conv channel counts and fc widths by this
            factor (each rounded, floor of 4) to build reduced networks.

    Raises:
        ArchitectureError: on malformed tokens, a missing population size,
            or a network with no compute layers.
    """
    if channel_scale <= 0:
        raise ArchitectureError(f"channel_scale must be positive, got {channel_scale}")
    tokens = [token for token in arch.strip().split("-") if token]
    if not tokens:
        raise ArchitectureError("empty architecture string")

    specs: List[LayerSpec] = []
    for token in tokens:
        conv = _CONV_RE.match(token)
        pool = _POOL_RE.match(token)
        fc = _FC_RE.match(token)
        if conv:
            units = _scaled(int(conv.group(1)), channel_scale)
            specs.append(LayerSpec("conv", units=units, kernel=int(conv.group(2))))
        elif pool:
            specs.append(LayerSpec("pool", kernel=int(pool.group(1))))
        elif fc:
            units = _scaled(int(fc.group(1)), channel_scale)
            specs.append(LayerSpec("fc", units=units))
        elif token == "P":
            if population is None:
                raise ArchitectureError(
                    "architecture contains a population layer 'P' but no "
                    "population size was given"
                )
            specs.append(LayerSpec("population", units=int(population)))
        else:
            raise ArchitectureError(f"unrecognised architecture token {token!r}")

    if not any(spec.is_compute for spec in specs):
        raise ArchitectureError(f"architecture {arch!r} has no compute layers")
    return _assign_names(specs)


def _scaled(value: int, scale: float) -> int:
    return max(4, int(round(value * scale)))


def _assign_names(specs: List[LayerSpec]) -> List[LayerSpec]:
    """Name layers VGG-style: conv<block>_<index within block>, fc<n>.

    A new block starts after every pool, mirroring the paper's Table I
    naming (CONV1_1, CONV1_2, CONV2_1, ...).
    """
    named: List[LayerSpec] = []
    block = 1
    conv_in_block = 0
    fc_count = 0
    pool_count = 0
    for spec in specs:
        if spec.kind == "conv":
            conv_in_block += 1
            named.append(replace(spec, name=f"conv{block}_{conv_in_block}"))
        elif spec.kind == "pool":
            pool_count += 1
            named.append(replace(spec, name=f"pool{pool_count}"))
            block += 1
            conv_in_block = 0
        else:  # fc / population
            fc_count += 1
            named.append(replace(spec, name=f"fc{fc_count}"))
    return named


def compute_layer_names(specs: List[LayerSpec]) -> List[str]:
    """Names of weight-bearing layers, in execution order."""
    return [spec.name for spec in specs if spec.is_compute]


def describe(specs: List[LayerSpec]) -> str:
    """Re-render specs in the paper's compact notation (for logging)."""
    parts = []
    for spec in specs:
        if spec.kind == "conv":
            parts.append(f"{spec.units}C{spec.kernel}")
        elif spec.kind == "pool":
            parts.append(f"MP{spec.kernel}")
        elif spec.kind == "fc":
            parts.append(str(spec.units))
        else:
            parts.append(f"P{spec.units}")
    return "-".join(parts)
