"""Surrogate gradient functions for the non-differentiable spike.

The forward spike is a Heaviside step; its derivative is zero almost
everywhere, which would kill backpropagation. Surrogate-gradient training
(Neftci et al., 2019 -- reference [13] of the paper) replaces the backward
derivative with a smooth bump centred on the threshold. The paper trains
with snnTorch, whose default is the fast-sigmoid surrogate; we provide that
plus the arctangent variant for ablations.
"""

from __future__ import annotations

import numpy as np


class Surrogate:
    """Base class: a callable returning d(spike)/d(membrane - threshold)."""

    name = "base"

    def __call__(self, v: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FastSigmoidSurrogate(Surrogate):
    """Derivative of the fast sigmoid: ``1 / (1 + slope*|v|)^2``.

    snnTorch's default surrogate (``surrogate.fast_sigmoid``); ``slope``
    controls how sharply the gradient is concentrated at the threshold.
    """

    name = "fast_sigmoid"

    def __init__(self, slope: float = 25.0) -> None:
        if slope <= 0:
            raise ValueError(f"slope must be positive, got {slope}")
        self.slope = float(slope)

    def __call__(self, v: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + self.slope * np.abs(v)) ** 2


class ATanSurrogate(Surrogate):
    """Derivative of a scaled arctangent: ``a / (2 * (1 + (pi/2 * a * v)^2))``.

    The surrogate used by SpikingJelly and reference [10] of the paper.
    """

    name = "atan"

    def __init__(self, alpha: float = 2.0) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = float(alpha)

    def __call__(self, v: np.ndarray) -> np.ndarray:
        scaled = (np.pi / 2.0) * self.alpha * v
        return (self.alpha / 2.0) / (1.0 + scaled**2)


class BoxcarSurrogate(Surrogate):
    """Rectangular window: 1/(2*width) for |v| < width, else 0.

    The simplest straight-through-style estimator; useful as an ablation
    of surrogate shape sensitivity.
    """

    name = "boxcar"

    def __init__(self, width: float = 0.5) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.width = float(width)

    def __call__(self, v: np.ndarray) -> np.ndarray:
        return (np.abs(v) < self.width).astype(v.dtype) / (2.0 * self.width)


_REGISTRY = {
    FastSigmoidSurrogate.name: FastSigmoidSurrogate,
    ATanSurrogate.name: ATanSurrogate,
    BoxcarSurrogate.name: BoxcarSurrogate,
}


def make_surrogate(name: str, **kwargs: float) -> Surrogate:
    """Instantiate a surrogate by registry name (``fast_sigmoid`` etc.)."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown surrogate {name!r}; known: {known}") from None
    return cls(**kwargs)
