"""Spike statistics and classification metrics.

The paper's headline sparsity results (Fig. 1) are phrased in *total
spike counts*; :class:`SpikeStats` collects them per layer and per
timestep so both the figure harness and the hardware workload model
(Eq. 3 needs per-input-feature-map spike counts) can be fed from one
recording pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


@dataclass
class SpikeStats:
    """Accumulated spike counts for one network evaluation.

    Counts are totals over all processed samples; ``per_layer`` maps layer
    name -> spikes *emitted by that layer's LIF output*, and
    ``per_layer_timestep`` keeps the timestep split needed for latency
    modelling. ``samples`` lets callers derive per-image averages.
    """

    per_layer: Dict[str, float] = field(default_factory=dict)
    per_layer_timestep: Dict[str, List[float]] = field(default_factory=dict)
    neuron_counts: Dict[str, int] = field(default_factory=dict)
    samples: int = 0
    timesteps: int = 0

    def record(self, layer: str, t: int, spikes: np.ndarray) -> None:
        """Accumulate a (batch, ...) binary spike tensor for ``layer`` at ``t``."""
        count = float(spikes.sum())
        self.per_layer[layer] = self.per_layer.get(layer, 0.0) + count
        series = self.per_layer_timestep.setdefault(layer, [])
        while len(series) <= t:
            series.append(0.0)
        series[t] += count
        self.neuron_counts[layer] = int(np.prod(spikes.shape[1:]))

    def merge(self, other: "SpikeStats") -> None:
        for layer, count in other.per_layer.items():
            self.per_layer[layer] = self.per_layer.get(layer, 0.0) + count
        for layer, series in other.per_layer_timestep.items():
            mine = self.per_layer_timestep.setdefault(layer, [])
            while len(mine) < len(series):
                mine.append(0.0)
            for t, value in enumerate(series):
                mine[t] += value
        self.neuron_counts.update(other.neuron_counts)
        self.samples += other.samples
        self.timesteps = max(self.timesteps, other.timesteps)

    @property
    def total_spikes(self) -> float:
        return sum(self.per_layer.values())

    def spikes_per_image(self) -> float:
        if self.samples == 0:
            return 0.0
        return self.total_spikes / self.samples

    def layer_spikes_per_image(self, layer: str) -> float:
        if self.samples == 0:
            return 0.0
        return self.per_layer.get(layer, 0.0) / self.samples

    def sparsity(self, layer: str) -> float:
        """Fraction of *silent* neuron-timesteps for ``layer`` (1 = all silent)."""
        neurons = self.neuron_counts.get(layer)
        if not neurons or not self.samples or not self.timesteps:
            return 0.0
        opportunities = neurons * self.samples * self.timesteps
        return 1.0 - self.per_layer.get(layer, 0.0) / opportunities

    def summary(self) -> str:
        lines = [f"total spikes: {self.total_spikes:.0f} over {self.samples} image(s)"]
        for layer in sorted(self.per_layer):
            lines.append(
                f"  {layer}: {self.layer_spikes_per_image(layer):.1f} spikes/image, "
                f"sparsity {self.sparsity(layer) * 100.0:.1f}%"
            )
        return "\n".join(lines)


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of (N, C) scores against integer labels (N,)."""
    if len(logits) == 0:
        return 0.0
    predictions = np.asarray(logits).argmax(axis=1)
    return float((predictions == np.asarray(labels)).mean())
