"""The paper's layer-wise workload model (Eq. 3).

For an event-driven CONV layer the work is one membrane update per
(input event, filter tap, output channel):

    W_CONV = F x C_out x sum_i S_i

with F the filter-coefficient count (9 for 3x3), C_out output channels
and S_i the spike count of input feature map i -- so ``sum_i S_i`` is the
layer's total input events. For a fully connected layer each event
touches every output neuron:

    W_FC = N x S.

The dense input layer has activity-independent work: the systolic array
touches every output pixel of every output channel once per pass,

    W_dense = C_out x OH x OW x ceil(C_in*K*K / PE_columns).

Dividing a workload by the cores allocated to the layer gives its
execution latency in cycles (up to the compression/activation terms the
full :mod:`repro.hw.sparse_core` model adds).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.quant.convert import DeployableNetwork


@dataclass(frozen=True)
class LayerWorkload:
    """Workload of one compute layer for one inference."""

    name: str
    kind: str  # 'conv' | 'fc' | 'dense'
    work: float  # Eq. 3 value (membrane updates / PE operations)
    input_events: float  # events consumed (pixels for the dense layer)
    out_channels: int

    def latency_cycles(self, cores: int) -> float:
        """Execution latency when ``cores`` NCs (or rows) serve the layer."""
        if cores < 1:
            raise WorkloadError(f"cores must be >= 1, got {cores}")
        return self.work / cores


def dense_workload(
    out_channels: int,
    out_height: int,
    out_width: int,
    in_channels: int,
    kernel: int,
    pe_columns: int = 27,
    timesteps: int = 1,
) -> float:
    """W_dense: systolic-array slots per inference (see module doc)."""
    passes = max(1, ceil(in_channels * kernel * kernel / pe_columns))
    return float(out_channels * out_height * out_width * passes * timesteps)


def workloads_from_network(
    network: DeployableNetwork,
    input_events: Mapping[str, float],
    timesteps: int,
    use_dense_core: bool = True,
    pe_columns: int = 27,
) -> List[LayerWorkload]:
    """Eq. 3 workloads for every layer of a deployable network.

    Args:
        network: the deployed model (defines F, C_out, shapes).
        input_events: measured total input events per layer per image
            (all timesteps) -- 'acquired empirically by running the
            network once' as the paper does.
        timesteps: T, needed for the dense layer's per-timestep replay.
        use_dense_core: when False (rate coding) the input layer is
            treated as a sparse layer like the rest.
    """
    workloads: List[LayerWorkload] = []
    for index, layer in enumerate(network.layers):
        if index == 0 and use_dense_core:
            out_c, out_h, out_w = layer.output_shape
            work = dense_workload(
                out_c,
                out_h,
                out_w,
                layer.input_shape[0],
                layer.kernel,
                pe_columns,
                timesteps,
            )
            events = float(np.prod(layer.input_shape)) * timesteps
            workloads.append(
                LayerWorkload(layer.name, "dense", work, events, out_c)
            )
            continue
        events = float(input_events.get(layer.name, 0.0))
        if events < 0:
            raise WorkloadError(
                f"negative event count for layer {layer.name}: {events}"
            )
        if layer.kind == "conv":
            taps = layer.kernel * layer.kernel
            work = taps * layer.out_channels * events
        else:
            work = layer.out_channels * events
        workloads.append(
            LayerWorkload(layer.name, layer.kind, work, events, layer.out_channels)
        )
    return workloads


def estimate_input_events(
    network: DeployableNetwork,
    input_density: Mapping[str, float],
    timesteps: int,
) -> Dict[str, float]:
    """Turn per-layer input *densities* into event counts at this scale.

    Density is the fraction of active neuron-timesteps (1 - sparsity);
    multiplying by the layer's input size and T gives events. Used to
    extrapolate small-scale measured sparsity to paper-scale dimensions.
    """
    events: Dict[str, float] = {}
    for layer in network.layers:
        density = float(input_density.get(layer.name, 0.0))
        if not 0.0 <= density <= 1.0:
            raise WorkloadError(
                f"density for {layer.name} must be in [0, 1], got {density}"
            )
        size = float(np.prod(layer.input_shape))
        events[layer.name] = density * size * timesteps
    return events


def measured_input_density(
    input_events: Mapping[str, float],
    network: DeployableNetwork,
    timesteps: int,
) -> Dict[str, float]:
    """Inverse of :func:`estimate_input_events`: events -> density."""
    densities: Dict[str, float] = {}
    for layer in network.layers:
        size = float(np.prod(layer.input_shape)) * timesteps
        events = float(input_events.get(layer.name, 0.0))
        densities[layer.name] = min(1.0, events / size) if size else 0.0
    return densities
