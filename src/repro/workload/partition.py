"""Neural-core partitioning: the design-time DSE of Sec. V-A/V-B.

Given per-layer workloads, find core allocations that (a) balance
layer-wise latency -- the pipeline's throughput is set by its slowest
stage, so imbalance is wasted silicon -- and (b) respect a total core
budget. Three strategies are provided:

* :func:`proportional_allocation` -- the LW recipe: cores proportional to
  workload with a floor of one, normalised so the lightest sparse layer
  gets exactly the floor (minimal resources, balanced latency);
* :func:`balanced_allocation` -- optimal for a fixed budget: the smallest
  achievable bottleneck latency via binary search over latency targets
  (allocating ``ceil(W_l / L)`` cores per layer is the cheapest way to
  meet target L, so feasibility is monotone in L);
* :func:`uniform_allocation` -- the naive same-cores-everywhere baseline
  used by the partitioning ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.workload.model import LayerWorkload


@dataclass(frozen=True)
class AllocationResult:
    """An allocation plus its quality metrics."""

    allocation: Tuple[int, ...]
    latencies: Tuple[float, ...]
    total_cores: int
    bottleneck_cycles: float
    imbalance: float  # bottleneck / mean latency (1.0 = perfectly even)

    def overhead_percent(self) -> Tuple[float, ...]:
        total = sum(self.latencies)
        if total <= 0:
            raise WorkloadError("allocation has zero total latency")
        return tuple(100.0 * lat / total for lat in self.latencies)


def _result(
    workloads: Sequence[LayerWorkload], allocation: Sequence[int]
) -> AllocationResult:
    if len(allocation) != len(workloads):
        raise WorkloadError(
            f"allocation length {len(allocation)} != workloads {len(workloads)}"
        )
    latencies = tuple(
        wl.latency_cycles(cores) for wl, cores in zip(workloads, allocation)
    )
    positive = [lat for lat in latencies if lat > 0]
    bottleneck = max(latencies) if latencies else 0.0
    mean = sum(positive) / len(positive) if positive else 1.0
    return AllocationResult(
        allocation=tuple(int(c) for c in allocation),
        latencies=latencies,
        total_cores=int(sum(allocation)),
        bottleneck_cycles=bottleneck,
        imbalance=bottleneck / mean if mean > 0 else 1.0,
    )


def proportional_allocation(
    workloads: Sequence[LayerWorkload],
    floor: int = 1,
    dense_rows: int = 1,
) -> AllocationResult:
    """The LW recipe: cores proportional to workload, lightest layer = floor.

    The dense input layer keeps a fixed row count (``dense_rows``): its
    workload is activity-independent and small, which is why the paper's
    LW tuples all start with 1.
    """
    if floor < 1:
        raise WorkloadError(f"floor must be >= 1, got {floor}")
    sparse = [wl for wl in workloads if wl.kind != "dense"]
    if not sparse:
        raise WorkloadError("no sparse layers to allocate")
    reference = min(wl.work for wl in sparse if wl.work > 0)
    allocation: List[int] = []
    for wl in workloads:
        if wl.kind == "dense":
            allocation.append(dense_rows)
        elif wl.work <= 0:
            allocation.append(floor)
        else:
            allocation.append(max(floor, round(floor * wl.work / reference)))
    return _result(workloads, allocation)


def balanced_allocation(
    workloads: Sequence[LayerWorkload],
    budget: int,
    dense_rows: int = 1,
) -> AllocationResult:
    """Minimise the bottleneck latency under a total sparse-core budget.

    Binary-searches the smallest latency target L for which
    ``sum(ceil(W_l / L)) <= budget``; the dense layer keeps its fixed
    rows and does not consume budget.
    """
    sparse = [wl for wl in workloads if wl.kind != "dense"]
    if not sparse:
        raise WorkloadError("no sparse layers to allocate")
    if budget < len(sparse):
        raise WorkloadError(
            f"budget {budget} cannot give each of {len(sparse)} layers a core"
        )

    def cores_needed(target: float) -> int:
        return sum(max(1, ceil(wl.work / target)) for wl in sparse)

    low = max(wl.work / budget for wl in sparse if wl.work > 0)
    low = max(low, 1.0)
    high = max(wl.work for wl in sparse) + 1.0
    for _ in range(64):
        mid = (low + high) / 2.0
        if cores_needed(mid) <= budget:
            high = mid
        else:
            low = mid
    target = high
    allocation: List[int] = []
    for wl in workloads:
        if wl.kind == "dense":
            allocation.append(dense_rows)
        else:
            allocation.append(max(1, ceil(wl.work / target)))
    return _result(workloads, allocation)


def uniform_allocation(
    workloads: Sequence[LayerWorkload],
    budget: int,
    dense_rows: int = 1,
) -> AllocationResult:
    """Naive baseline: split the budget evenly across sparse layers."""
    sparse_count = sum(1 for wl in workloads if wl.kind != "dense")
    if sparse_count == 0:
        raise WorkloadError("no sparse layers to allocate")
    if budget < sparse_count:
        raise WorkloadError(
            f"budget {budget} below one core per layer ({sparse_count})"
        )
    share = budget // sparse_count
    remainder = budget - share * sparse_count
    allocation: List[int] = []
    sparse_seen = 0
    for wl in workloads:
        if wl.kind == "dense":
            allocation.append(dense_rows)
        else:
            extra = 1 if sparse_seen < remainder else 0
            allocation.append(share + extra)
            sparse_seen += 1
    return _result(workloads, allocation)


def layer_overheads(
    workloads: Sequence[LayerWorkload], allocation: Sequence[int]
) -> Dict[str, float]:
    """Percent of total execution time per layer (the Sec. V-B metric)."""
    result = _result(workloads, allocation)
    percents = result.overhead_percent()
    return {wl.name: pct for wl, pct in zip(workloads, percents)}


def imbalance(
    workloads: Sequence[LayerWorkload], allocation: Sequence[int]
) -> float:
    """Bottleneck-to-mean latency ratio of an allocation (1.0 = ideal)."""
    return _result(workloads, allocation).imbalance
