"""Layer-wise workload modelling and neural-core partitioning (Sec. V-A).

The paper sizes each layer's hardware from a fine-grained workload model
(Eq. 3) fed with empirically measured spike counts, then partitions the
neural-core budget to minimise the latency gap between the most and least
loaded layers. This package reproduces that design-time flow.
"""

from repro.workload.model import (
    LayerWorkload,
    dense_workload,
    estimate_input_events,
    workloads_from_network,
)
from repro.workload.partition import (
    AllocationResult,
    balanced_allocation,
    imbalance,
    layer_overheads,
    proportional_allocation,
    uniform_allocation,
)
from repro.workload.sweep import (
    BudgetSweepPoint,
    analytic_sweep_reports,
    sweep_budgets,
)

__all__ = [
    "AllocationResult",
    "BudgetSweepPoint",
    "LayerWorkload",
    "analytic_sweep_reports",
    "balanced_allocation",
    "dense_workload",
    "estimate_input_events",
    "imbalance",
    "layer_overheads",
    "proportional_allocation",
    "sweep_budgets",
    "uniform_allocation",
    "workloads_from_network",
]
