"""Budget sweeps: the resource/latency trade-off curve behind LW -> perf4.

Both sweep entry points route through :mod:`repro.parallel`: budget
points are independent design-space cells and are farmed over the
process pool when ``REPRO_WORKERS`` allows (results come back in
ascending-budget order either way), and analytic timing across many
sweep points goes through the simulator's batched
:meth:`~repro.hw.simulator.HybridSimulator.run_from_counts_batch`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.parallel import run_tasks
from repro.workload.model import LayerWorkload
from repro.workload.partition import AllocationResult, balanced_allocation


@dataclass(frozen=True)
class BudgetSweepPoint:
    """One point of the budget/latency Pareto curve."""

    budget: int
    result: AllocationResult

    @property
    def bottleneck_cycles(self) -> float:
        return self.result.bottleneck_cycles

    @property
    def total_cores(self) -> int:
        return self.result.total_cores


def _allocation_cell(
    payload: Tuple[Tuple[LayerWorkload, ...], int, int]
) -> BudgetSweepPoint:
    """One budget point -- module-level so the pool can pickle it."""
    workloads, budget, dense_rows = payload
    return BudgetSweepPoint(
        budget=budget,
        result=balanced_allocation(workloads, budget, dense_rows),
    )


def sweep_budgets(
    workloads: Sequence[LayerWorkload],
    budgets: Sequence[int],
    dense_rows: int = 1,
    workers: Optional[int] = None,
) -> List[BudgetSweepPoint]:
    """Balanced allocations across a list of sparse-core budgets.

    Each budget is an independent binary-search allocation; pass
    ``workers > 1`` to farm the points over the process pool. Unlike the
    evaluation entry points this one does *not* default to
    ``REPRO_WORKERS``: a single allocation costs microseconds, so
    pooling only pays off for explicitly requested large sweeps -- and
    when it is requested, the points ride the persistent
    :class:`~repro.parallel.service.WorkerService`, so consecutive
    sweeps reuse warm workers instead of re-paying pool startup.
    Ordering (ascending budget) and every result are identical to the
    serial path.
    """
    if not budgets:
        raise WorkloadError("no budgets supplied")
    frozen = tuple(workloads)
    payloads = [
        (frozen, int(budget), dense_rows) for budget in sorted(budgets)
    ]
    # Serial unless explicitly asked otherwise; invalid counts (0, -1)
    # still go through run_tasks' validation and raise ConfigError.
    return run_tasks(
        _allocation_cell, payloads, workers=1 if workers is None else workers
    )


def analytic_sweep_reports(
    simulator,
    events_batch: Sequence[Dict[str, float]],
    timesteps: int,
    output_spikes_batch: Optional[Sequence[Optional[Dict[str, float]]]] = None,
) -> List:
    """Analytic simulator reports for many sweep points, batched.

    Thin routing onto :meth:`HybridSimulator.run_from_counts_batch`,
    kept here so workload-level sweeps have a single entry point for
    "time all of these activity profiles on this accelerator".
    """
    return simulator.run_from_counts_batch(
        events_batch, timesteps, output_spikes_batch
    )


def pareto_front(points: Sequence[BudgetSweepPoint]) -> List[BudgetSweepPoint]:
    """Non-dominated (cores, bottleneck) points, ascending in cores."""
    best: List[BudgetSweepPoint] = []
    lowest = float("inf")
    for point in sorted(points, key=lambda p: p.total_cores):
        if point.bottleneck_cycles < lowest:
            best.append(point)
            lowest = point.bottleneck_cycles
    return best
