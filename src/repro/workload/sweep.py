"""Budget sweeps: the resource/latency trade-off curve behind LW -> perf4."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import WorkloadError
from repro.workload.model import LayerWorkload
from repro.workload.partition import AllocationResult, balanced_allocation


@dataclass(frozen=True)
class BudgetSweepPoint:
    """One point of the budget/latency Pareto curve."""

    budget: int
    result: AllocationResult

    @property
    def bottleneck_cycles(self) -> float:
        return self.result.bottleneck_cycles

    @property
    def total_cores(self) -> int:
        return self.result.total_cores


def sweep_budgets(
    workloads: Sequence[LayerWorkload],
    budgets: Sequence[int],
    dense_rows: int = 1,
) -> List[BudgetSweepPoint]:
    """Balanced allocations across a list of sparse-core budgets."""
    if not budgets:
        raise WorkloadError("no budgets supplied")
    points = [
        BudgetSweepPoint(
            budget=int(budget),
            result=balanced_allocation(workloads, int(budget), dense_rows),
        )
        for budget in sorted(budgets)
    ]
    return points


def pareto_front(points: Sequence[BudgetSweepPoint]) -> List[BudgetSweepPoint]:
    """Non-dominated (cores, bottleneck) points, ascending in cores."""
    best: List[BudgetSweepPoint] = []
    lowest = float("inf")
    for point in sorted(points, key=lambda p: p.total_cores):
        if point.bottleneck_cycles < lowest:
            best.append(point)
            lowest = point.bottleneck_cycles
    return best
