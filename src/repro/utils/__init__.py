"""Shared utilities: seeded RNG management, logging, serialization, timing."""

from repro.utils.rng import RngMixin, fork_rng, new_rng
from repro.utils.serialization import load_npz, save_npz
from repro.utils.timing import Stopwatch

__all__ = [
    "RngMixin",
    "Stopwatch",
    "fork_rng",
    "load_npz",
    "new_rng",
    "save_npz",
]
