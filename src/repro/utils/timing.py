"""Wall-clock timing helper used by the trainer and experiment harness."""

from __future__ import annotations

import time
from typing import Dict, List


class Stopwatch:
    """Accumulates named wall-clock intervals.

    Usage::

        watch = Stopwatch()
        with watch.section("train"):
            ...
        print(watch.total("train"))
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def section(self, name: str) -> "_Section":
        return _Section(self, name)

    def add(self, name: str, seconds: float) -> None:
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def names(self) -> List[str]:
        return sorted(self._totals)

    def summary(self) -> str:
        lines = [
            f"{name}: {self._totals[name]:.3f}s over {self._counts[name]} call(s)"
            for name in self.names()
        ]
        return "\n".join(lines)


class _Section:
    def __init__(self, watch: Stopwatch, name: str) -> None:
        self._watch = watch
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._watch.add(self._name, time.perf_counter() - self._start)
