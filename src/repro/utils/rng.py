"""Deterministic random-number management.

Every stochastic component in this package (dataset generators, weight
initialisation, rate-coding spike samplers) takes an explicit
``numpy.random.Generator``. These helpers make it easy to derive
independent, reproducible streams from one master seed.

Two stream disciplines coexist:

* *sequential* streams (:func:`new_rng` / :func:`fork_rng`): one
  generator whose draws depend on everything drawn before -- fine for
  weight init and dataset synthesis, which always run in one fixed
  order;
* *counter-based* streams (:func:`counter_rng`): a Philox generator
  keyed on ``(seed, *counters)`` whose block of draws is a pure
  function of its key -- no draw history, no process, no batch split
  can change it. This is what makes rate-coded spike trains identical
  at every shard/worker geometry (see
  :class:`repro.snn.encoding.RateEncoder`).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """SplitMix64 finalizer: spreads structured integers (0, 1, 2, ...)
    across the full 64-bit key space so adjacent seeds key decorrelated
    Philox streams."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (value ^ (value >> 31)) & _MASK64


def canonical_stream_seed(seed: SeedLike) -> int:
    """Collapse a :data:`SeedLike` to the integer that keys counter
    streams.

    ``None`` keeps its historical "unseeded = entropic" meaning: fresh
    OS entropy is drawn *once*, here, and everything derived afterwards
    is purely counter-based (two unseeded encoders stay uncorrelated,
    exactly like ``new_rng(None)`` callers expect). An existing
    ``Generator`` likewise contributes one draw at canonicalisation
    time. Pass an explicit integer for a reproducible stream.
    """
    if seed is None:
        return int(np.random.SeedSequence().entropy) & _MASK64
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    return int(seed)


def counter_rng(seed: int, *counters: int) -> np.random.Generator:
    """A Philox generator that is a pure function of ``(seed, *counters)``.

    The seed is mixed into the 128-bit Philox key; up to three counter
    coordinates (e.g. ``(global_sample_index, timestep)``) are placed in
    the upper words of the 256-bit Philox counter, whose low word is what
    draws increment -- so any two distinct coordinate tuples yield
    non-overlapping streams for fewer than 2**64 draws each, regardless
    of draw order, batch split, shard geometry or process boundaries.
    """
    if len(counters) > 3:
        raise ValueError(
            f"counter_rng supports at most 3 counters, got {len(counters)}"
        )
    seed = int(seed) & _MASK64
    key = np.array(
        [_mix64(seed), _mix64(seed ^ 0xA5A5A5A5A5A5A5A5)], dtype=np.uint64
    )
    words = [0, 0, 0, 0]
    for index, counter in enumerate(counters):
        counter = int(counter)
        if counter < 0:
            raise ValueError(f"counters must be >= 0, got {counter}")
        words[index + 1] = counter & _MASK64
    bit_generator = np.random.Philox(
        key=key, counter=np.array(words, dtype=np.uint64)
    )
    return np.random.Generator(bit_generator)


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, generator, or None.

    Passing an existing generator returns it unchanged, which lets APIs
    accept either a seed or a shared stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def fork_rng(rng: np.random.Generator, key: str) -> np.random.Generator:
    """Derive an independent child stream from ``rng`` tagged by ``key``.

    The child is seeded from the parent stream plus a stable hash of the
    key, so two forks with different keys are decorrelated while remaining
    reproducible for a fixed parent state.
    """
    base = int(rng.integers(0, 2**31 - 1))
    tag = _stable_hash(key)
    return np.random.default_rng((base, tag))


def _stable_hash(text: str) -> int:
    """A process-independent 32-bit FNV-1a hash (``hash()`` is salted)."""
    value = 2166136261
    for ch in text.encode("utf-8"):
        value ^= ch
        value = (value * 16777619) & 0xFFFFFFFF
    return value


class RngMixin:
    """Mixin giving a class a lazily created, seedable ``self.rng``."""

    _rng: Optional[np.random.Generator] = None
    _seed: SeedLike = None

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = new_rng(self._seed)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Reset the stream; subsequent draws restart from ``seed``."""
        self._seed = seed
        self._rng = new_rng(seed)
