"""Deterministic random-number management.

Every stochastic component in this package (dataset generators, weight
initialisation, rate-coding spike samplers) takes an explicit
``numpy.random.Generator``. These helpers make it easy to derive
independent, reproducible streams from one master seed.

Two stream disciplines coexist:

* *sequential* streams (:func:`new_rng` / :func:`fork_rng`): one
  generator whose draws depend on everything drawn before -- fine for
  weight init and dataset synthesis, which always run in one fixed
  order;
* *counter-based* streams (:func:`counter_rng`): a Philox generator
  keyed on ``(seed, *counters)`` whose block of draws is a pure
  function of its key -- no draw history, no process, no batch split
  can change it. This is what makes rate-coded spike trains identical
  at every shard/worker geometry (see
  :class:`repro.snn.encoding.RateEncoder`).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """SplitMix64 finalizer: spreads structured integers (0, 1, 2, ...)
    across the full 64-bit key space so adjacent seeds key decorrelated
    Philox streams."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (value ^ (value >> 31)) & _MASK64


def canonical_stream_seed(seed: SeedLike) -> int:
    """Collapse a :data:`SeedLike` to the integer that keys counter
    streams.

    ``None`` keeps its historical "unseeded = entropic" meaning: fresh
    OS entropy is drawn *once*, here, and everything derived afterwards
    is purely counter-based (two unseeded encoders stay uncorrelated,
    exactly like ``new_rng(None)`` callers expect). An existing
    ``Generator`` likewise contributes one draw at canonicalisation
    time. Pass an explicit integer for a reproducible stream.
    """
    if seed is None:
        return int(np.random.SeedSequence().entropy) & _MASK64
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    return int(seed)


def counter_rng(seed: int, *counters: int) -> np.random.Generator:
    """A Philox generator that is a pure function of ``(seed, *counters)``.

    The seed is mixed into the 128-bit Philox key; up to three counter
    coordinates (e.g. ``(global_sample_index, timestep)``) are placed in
    the upper words of the 256-bit Philox counter, whose low word is what
    draws increment -- so any two distinct coordinate tuples yield
    non-overlapping streams for fewer than 2**64 draws each, regardless
    of draw order, batch split, shard geometry or process boundaries.
    """
    if len(counters) > 3:
        raise ValueError(
            f"counter_rng supports at most 3 counters, got {len(counters)}"
        )
    seed = int(seed) & _MASK64
    key = np.array(
        [_mix64(seed), _mix64(seed ^ 0xA5A5A5A5A5A5A5A5)], dtype=np.uint64
    )
    words = [0, 0, 0, 0]
    for index, counter in enumerate(counters):
        counter = int(counter)
        if counter < 0:
            raise ValueError(f"counters must be >= 0, got {counter}")
        words[index + 1] = counter & _MASK64
    bit_generator = np.random.Philox(
        key=key, counter=np.array(words, dtype=np.uint64)
    )
    return np.random.Generator(bit_generator)


_PHILOX_M0 = np.uint64(0xD2E7470EE14C6C93)
_PHILOX_M1 = np.uint64(0xCA5A826395121157)
_PHILOX_W0 = np.uint64(0x9E3779B97F4A7C15)
_PHILOX_W1 = np.uint64(0xBB67AE8584CAA73B)
_U64_LO32 = np.uint64(0xFFFFFFFF)
_U64_SHIFT32 = np.uint64(32)
#: numpy's uint64 -> double conversion: keep the top 53 bits.
_DOUBLE_SHIFT = np.uint64(11)
_DOUBLE_NORM = 1.0 / 9007199254740992.0


def _mulhilo64(a: np.uint64, b: np.ndarray):
    """(high, low) 64-bit halves of a * b, elementwise, without int128.

    The high half is assembled from 32-bit partial products; everything
    stays in uint64 with wraparound semantics, matching the Philox
    reference implementation.
    """
    lo = a * b
    a_lo = a & _U64_LO32
    a_hi = a >> _U64_SHIFT32
    b_lo = b & _U64_LO32
    b_hi = b >> _U64_SHIFT32
    cross = ((a_lo * b_lo) >> _U64_SHIFT32) + (a_hi * b_lo & _U64_LO32) + a_lo * b_hi
    hi = a_hi * b_hi + ((a_hi * b_lo) >> _U64_SHIFT32) + (cross >> _U64_SHIFT32)
    return hi, lo


def counter_uniforms(seed: int, counters, n: int) -> np.ndarray:
    """Vectorised equivalent of ``counter_rng(seed, *counters).random(n)``.

    Runs Philox4x64-10 over all blocks of every requested stream in one
    batch of numpy uint64 arithmetic -- byte-identical to the
    generator-per-stream loop (pinned in
    ``tests/parallel/test_rate_stream_invariance.py``) but without the
    per-stream Python overhead that dominates rate encoding.

    Args:
        seed: the integer stream seed (already canonicalised).
        counters: an iterable of counter tuples (each up to 3 entries,
            same semantics as :func:`counter_rng`); one stream of ``n``
            doubles is produced per tuple.
        n: number of float64 uniforms in [0, 1) per stream.

    Returns:
        float64 array of shape ``(len(counters), n)``.
    """
    counters = [tuple(int(c) for c in cs) for cs in counters]
    for cs in counters:
        if len(cs) > 3:
            raise ValueError(
                f"counter_uniforms supports at most 3 counters, got {len(cs)}"
            )
        for c in cs:
            if c < 0:
                raise ValueError(f"counters must be >= 0, got {c}")
    n = int(n)
    n_streams = len(counters)
    if n_streams == 0 or n <= 0:
        return np.zeros((n_streams, max(n, 0)), dtype=np.float64)
    seed = int(seed) & _MASK64
    k0 = np.uint64(_mix64(seed))
    k1 = np.uint64(_mix64(seed ^ 0xA5A5A5A5A5A5A5A5))
    n_blocks = -(-n // 4)
    # numpy's Philox advances the 256-bit counter *before* each block, so
    # block j (0-based) of a stream runs with low word j + 1; the upper
    # words carry the stream coordinates exactly as in counter_rng.
    shape = (n_streams, n_blocks)
    with np.errstate(over="ignore"):
        x0 = np.broadcast_to(
            np.arange(1, n_blocks + 1, dtype=np.uint64), shape
        ).copy()
        coords = np.zeros((n_streams, 3), dtype=np.uint64)
        for row, cs in enumerate(counters):
            for index, c in enumerate(cs):
                coords[row, index] = np.uint64(c & _MASK64)
        x1 = np.broadcast_to(coords[:, 0:1], shape).copy()
        x2 = np.broadcast_to(coords[:, 1:2], shape).copy()
        x3 = np.broadcast_to(coords[:, 2:3], shape).copy()
        key0, key1 = k0, k1
        for _ in range(10):
            hi0, lo0 = _mulhilo64(_PHILOX_M0, x0)
            hi1, lo1 = _mulhilo64(_PHILOX_M1, x2)
            x0 = hi1 ^ x1 ^ key0
            x1 = lo1
            x2 = hi0 ^ x3 ^ key1
            x3 = lo0
            key0 = key0 + _PHILOX_W0
            key1 = key1 + _PHILOX_W1
    words = np.empty((n_streams, n_blocks, 4), dtype=np.uint64)
    words[:, :, 0] = x0
    words[:, :, 1] = x1
    words[:, :, 2] = x2
    words[:, :, 3] = x3
    doubles = (words >> _DOUBLE_SHIFT).astype(np.float64) * _DOUBLE_NORM
    return doubles.reshape(n_streams, n_blocks * 4)[:, :n]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, generator, or None.

    Passing an existing generator returns it unchanged, which lets APIs
    accept either a seed or a shared stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def fork_rng(rng: np.random.Generator, key: str) -> np.random.Generator:
    """Derive an independent child stream from ``rng`` tagged by ``key``.

    The child is seeded from the parent stream plus a stable hash of the
    key, so two forks with different keys are decorrelated while remaining
    reproducible for a fixed parent state.
    """
    base = int(rng.integers(0, 2**31 - 1))
    tag = _stable_hash(key)
    return np.random.default_rng((base, tag))


def _stable_hash(text: str) -> int:
    """A process-independent 32-bit FNV-1a hash (``hash()`` is salted)."""
    value = 2166136261
    for ch in text.encode("utf-8"):
        value ^= ch
        value = (value * 16777619) & 0xFFFFFFFF
    return value


class RngMixin:
    """Mixin giving a class a lazily created, seedable ``self.rng``."""

    _rng: Optional[np.random.Generator] = None
    _seed: SeedLike = None

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = new_rng(self._seed)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Reset the stream; subsequent draws restart from ``seed``."""
        self._seed = seed
        self._rng = new_rng(seed)
