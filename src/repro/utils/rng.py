"""Deterministic random-number management.

Every stochastic component in this package (dataset generators, weight
initialisation, rate-coding spike samplers) takes an explicit
``numpy.random.Generator``. These helpers make it easy to derive
independent, reproducible streams from one master seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, generator, or None.

    Passing an existing generator returns it unchanged, which lets APIs
    accept either a seed or a shared stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def fork_rng(rng: np.random.Generator, key: str) -> np.random.Generator:
    """Derive an independent child stream from ``rng`` tagged by ``key``.

    The child is seeded from the parent stream plus a stable hash of the
    key, so two forks with different keys are decorrelated while remaining
    reproducible for a fixed parent state.
    """
    base = int(rng.integers(0, 2**31 - 1))
    tag = _stable_hash(key)
    return np.random.default_rng((base, tag))


def _stable_hash(text: str) -> int:
    """A process-independent 32-bit FNV-1a hash (``hash()`` is salted)."""
    value = 2166136261
    for ch in text.encode("utf-8"):
        value ^= ch
        value = (value * 16777619) & 0xFFFFFFFF
    return value


class RngMixin:
    """Mixin giving a class a lazily created, seedable ``self.rng``."""

    _rng: Optional[np.random.Generator] = None
    _seed: SeedLike = None

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = new_rng(self._seed)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Reset the stream; subsequent draws restart from ``seed``."""
        self._seed = seed
        self._rng = new_rng(seed)
