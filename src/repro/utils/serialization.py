"""Tiny npz-based persistence for model parameters and experiment artifacts.

The format is deliberately simple: a flat mapping of string keys to numpy
arrays plus a JSON-encoded metadata blob under the reserved key
``__meta__``. It is enough to round-trip trained networks and cached
experiment results without pulling in pickle (fragile across refactors).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Mapping, Tuple

import numpy as np

_META_KEY = "__meta__"


def save_npz(
    path: str,
    arrays: Mapping[str, np.ndarray],
    meta: Mapping[str, Any] = None,
) -> None:
    """Atomically save ``arrays`` (+ optional JSON-able ``meta``) to ``path``.

    The write goes through a temporary file in the same directory followed
    by ``os.replace`` so a crash cannot leave a truncated artifact that a
    later cache lookup would trust.
    """
    if _META_KEY in arrays:
        raise ValueError(f"key {_META_KEY!r} is reserved for metadata")
    payload: Dict[str, np.ndarray] = dict(arrays)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(dict(meta or {}), sort_keys=True).encode("utf-8"),
        dtype=np.uint8,
    )
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)
        raise


def load_npz(path: str) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Load ``(arrays, meta)`` previously written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        arrays = {key: data[key] for key in data.files if key != _META_KEY}
        if _META_KEY in data.files:
            meta = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))
        else:
            meta = {}
    return arrays, meta
