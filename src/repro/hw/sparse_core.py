"""Sparse core model: ECU + neural cores (Sec. IV-B, Fig. 3).

Each sparse layer is served by one ECU (spike-train compression + address
generation) and ``nc_count`` neural cores (NCs). The output channels are
unrolled by the NC count: NC ``i`` strides through output feature maps
``i, i+N, i+2N, ...``. Per input spike event the address generator walks
the F = K*K filter taps and every NC updates the F membrane values of
each output channel it owns -- both routines are fully pipelined at one
neuron update per cycle (paper text), so

    accumulation cycles = events * F * ceil(Cout / N)         (CONV)
    accumulation cycles = events * ceil(Nout / N)             (FC)

which is exactly the paper's workload model (Eq. 3) divided by the
parallelism. Compression (Sec. IV-B) runs concurrently with
accumulation, so a layer-timestep costs ``max(compression, accumulation)``
plus the final activation sweep (one cycle per owned neuron).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import HardwareModelError
from repro.hw.compression import compress_exact, compression_cycles_estimate


@dataclass(frozen=True)
class SparseLayerTiming:
    """Cycle breakdown of one sparse layer over all timesteps."""

    compression_cycles: int
    accumulation_cycles: int
    activation_cycles: int
    total_cycles: int
    input_events: int
    #: cycles one phase waited on the other (overlap imbalance)
    stall_cycles: int

    @property
    def bottleneck(self) -> str:
        if self.compression_cycles >= self.accumulation_cycles:
            return "compression"
        return "accumulation"


class SparseCoreModel:
    """Timing model for one event-driven sparse layer.

    Args:
        nc_count: neural cores allocated to the layer (output-channel
            unroll factor N).
        chunk_bits: ECU priority-encoder width.
    """

    def __init__(self, nc_count: int, chunk_bits: int = 32) -> None:
        if nc_count < 1:
            raise HardwareModelError(f"nc_count must be >= 1, got {nc_count}")
        if chunk_bits < 1:
            raise HardwareModelError(f"chunk_bits must be >= 1, got {chunk_bits}")
        self.nc_count = nc_count
        self.chunk_bits = chunk_bits

    # ------------------------------------------------------------------
    # CONV layers
    # ------------------------------------------------------------------
    def conv_timestep_cycles(
        self,
        spike_maps: Optional[np.ndarray],
        in_shape: Sequence[int],
        out_channels: int,
        kernel: int,
        spike_count: Optional[float] = None,
    ) -> SparseLayerTiming:
        """Cycles for one timestep of a CONV layer.

        Args:
            spike_maps: (Cin, H, W) binary input for exact mode, or None
                for analytic mode (then ``spike_count`` is required).
            in_shape: (Cin, H, W) of the input.
            out_channels: Cout.
            kernel: K (filter is K x K, F = K*K taps).
            spike_count: total input events when no maps are given.
        """
        cin, height, width = (int(v) for v in in_shape)
        bits_per_map = height * width
        if spike_maps is not None:
            spike_maps = np.asarray(spike_maps)
            if spike_maps.shape != (cin, height, width):
                raise HardwareModelError(
                    f"spike maps shape {spike_maps.shape} != {(cin, height, width)}"
                )
            compression = 0
            events = 0
            for fm in range(cin):
                result = compress_exact(spike_maps[fm].reshape(-1), self.chunk_bits)
                compression += result.cycles
                events += result.spike_count
        else:
            if spike_count is None:
                raise HardwareModelError(
                    "analytic mode needs spike_count when spike_maps is None"
                )
            events = float(spike_count)
            per_map = events / cin
            compression = cin * compression_cycles_estimate(
                bits_per_map, min(per_map, bits_per_map), self.chunk_bits
            )
        owned = ceil(out_channels / self.nc_count)
        taps = kernel * kernel
        accumulation = int(round(events * taps * owned))
        activation = height * width * owned  # output spatial == input (same pad)
        compression = int(round(compression))
        busy = max(compression, accumulation)
        return SparseLayerTiming(
            compression_cycles=compression,
            accumulation_cycles=accumulation,
            activation_cycles=activation,
            total_cycles=busy + activation,
            input_events=int(round(events)),
            stall_cycles=abs(compression - accumulation),
        )

    # ------------------------------------------------------------------
    # FC layers
    # ------------------------------------------------------------------
    def fc_timestep_cycles(
        self,
        spike_vector: Optional[np.ndarray],
        in_features: int,
        out_features: int,
        spike_count: Optional[float] = None,
    ) -> SparseLayerTiming:
        """Cycles for one timestep of a fully connected layer.

        Every input event touches all ``out_features`` neurons; NCs split
        them, giving ``events * ceil(Nout / N)`` accumulation cycles --
        the W_FC = N * S workload of Eq. 3 divided by the unroll.
        """
        if spike_vector is not None:
            flat = np.asarray(spike_vector).reshape(-1)
            if flat.size != in_features:
                raise HardwareModelError(
                    f"spike vector size {flat.size} != in_features {in_features}"
                )
            result = compress_exact(flat, self.chunk_bits)
            compression = result.cycles
            events = result.spike_count
        else:
            if spike_count is None:
                raise HardwareModelError(
                    "analytic mode needs spike_count when spike_vector is None"
                )
            events = float(spike_count)
            compression = compression_cycles_estimate(
                in_features, min(events, in_features), self.chunk_bits
            )
        owned = ceil(out_features / self.nc_count)
        accumulation = int(round(events * owned))
        activation = owned
        compression = int(round(compression))
        busy = max(compression, accumulation)
        return SparseLayerTiming(
            compression_cycles=compression,
            accumulation_cycles=accumulation,
            activation_cycles=activation,
            total_cycles=busy + activation,
            input_events=int(round(events)),
            stall_cycles=abs(compression - accumulation),
        )

    @staticmethod
    def merge(timings: List[SparseLayerTiming]) -> SparseLayerTiming:
        """Sum per-timestep timings into a whole-inference figure."""
        if not timings:
            raise HardwareModelError("cannot merge an empty timing list")
        return SparseLayerTiming(
            compression_cycles=sum(t.compression_cycles for t in timings),
            accumulation_cycles=sum(t.accumulation_cycles for t in timings),
            activation_cycles=sum(t.activation_cycles for t in timings),
            total_cycles=sum(t.total_cycles for t in timings),
            input_events=sum(t.input_events for t in timings),
            stall_cycles=sum(t.stall_cycles for t in timings),
        )

    def __repr__(self) -> str:
        return (
            f"SparseCoreModel(nc_count={self.nc_count}, "
            f"chunk_bits={self.chunk_bits})"
        )
