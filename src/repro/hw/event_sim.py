"""Fine-grained event-driven golden simulator.

This module actually *executes* the sparse core's algorithm -- compress,
generate addresses, scatter-accumulate filter taps into membranes -- the
way the RTL does, instead of computing a closed-form cycle count. It
exists to validate, on small layers, that

1. event-driven scatter accumulation is functionally identical to the
   gather-style convolution the DeployableNetwork computes, and
2. the analytic :class:`~repro.hw.sparse_core.SparseCoreModel` cycle
   counts match an operational walk of the same pipeline.

Keeping an executable golden model next to the analytic one is standard
accelerator-design hygiene: when the two disagree, one of them is wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
import numpy as np

from repro.errors import HardwareModelError
from repro.hw.compression import compress_exact


@dataclass
class EventSimResult:
    """Outputs of one event-driven layer execution (single timestep)."""

    membrane: np.ndarray  # (Cout, OH, OW) accumulated potentials (no bias)
    compression_cycles: int
    accumulation_cycles: int
    performed_updates: int  # in-bounds membrane writes actually made
    scheduled_updates: int  # pipeline slots issued (incl. boundary no-ops)


class EventDrivenLayerSim:
    """Operational simulation of one sparse CONV layer.

    Args:
        nc_count: output-channel unroll (NC instances).
        chunk_bits: ECU priority-encoder width.
    """

    def __init__(self, nc_count: int = 1, chunk_bits: int = 32) -> None:
        if nc_count < 1:
            raise HardwareModelError(f"nc_count must be >= 1, got {nc_count}")
        self.nc_count = nc_count
        self.chunk_bits = chunk_bits

    def run_conv(
        self,
        spike_maps: np.ndarray,
        weight: np.ndarray,
        padding: int = 1,
    ) -> EventSimResult:
        """Execute one timestep of event-driven convolution.

        Args:
            spike_maps: (Cin, H, W) binary input spikes.
            weight: (Cout, Cin, K, K) filter bank.
            padding: 'same' padding (K // 2 for odd K).

        The address-generation rule follows Fig. 3: a spike at (r, c) of
        input map ``ci`` contributes ``weight[o, ci, i, j]`` to output
        neuron ``(r - i + padding, c - j + padding)`` of every output map
        ``o``; out-of-bounds targets are boundary no-ops that still
        occupy a pipeline slot.
        """
        spike_maps = np.asarray(spike_maps)
        if spike_maps.ndim != 3:
            raise HardwareModelError(
                f"spike maps must be (Cin, H, W), got {spike_maps.shape}"
            )
        cout, cin, kh, kw = weight.shape
        if spike_maps.shape[0] != cin:
            raise HardwareModelError(
                f"spike maps have {spike_maps.shape[0]} channels, weights "
                f"expect {cin}"
            )
        height, width = spike_maps.shape[1:]
        oh = height + 2 * padding - kh + 1
        ow = width + 2 * padding - kw + 1
        membrane = np.zeros((cout, oh, ow), dtype=np.float32)
        compression_cycles = 0
        performed = 0
        scheduled = 0
        owned = ceil(cout / self.nc_count)

        for ci in range(cin):
            result = compress_exact(spike_maps[ci].reshape(-1), self.chunk_bits)
            compression_cycles += result.cycles
            for address in result.events:
                r, c = int(address) // width, int(address) % width
                # One pipeline slot per (tap, owned channel) per NC; NCs
                # run in parallel so the slot count per event is
                # taps * owned (not taps * cout).
                scheduled += kh * kw * owned
                for i in range(kh):
                    y = r - i + padding
                    if y < 0 or y >= oh:
                        continue
                    for j in range(kw):
                        x = c - j + padding
                        if x < 0 or x >= ow:
                            continue
                        membrane[:, y, x] += weight[:, ci, i, j]
                        performed += owned
        return EventSimResult(
            membrane=membrane,
            compression_cycles=compression_cycles,
            accumulation_cycles=scheduled,
            performed_updates=performed,
            scheduled_updates=scheduled,
        )

    def run_fc(
        self, spike_vector: np.ndarray, weight: np.ndarray
    ) -> EventSimResult:
        """Execute one timestep of an event-driven FC layer.

        Every input event adds its weight column into all output
        membranes; NCs split the output neurons.
        """
        flat = np.asarray(spike_vector).reshape(-1)
        nout, nin = weight.shape
        if flat.size != nin:
            raise HardwareModelError(
                f"spike vector size {flat.size} != weight inputs {nin}"
            )
        membrane = np.zeros(nout, dtype=np.float32)
        result = compress_exact(flat, self.chunk_bits)
        owned = ceil(nout / self.nc_count)
        scheduled = 0
        for address in result.events:
            membrane += weight[:, int(address)]
            scheduled += owned
        return EventSimResult(
            membrane=membrane.reshape(nout, 1, 1),
            compression_cycles=result.cycles,
            accumulation_cycles=scheduled,
            performed_updates=scheduled,
            scheduled_updates=scheduled,
        )


def reference_conv(
    spike_maps: np.ndarray, weight: np.ndarray, padding: int = 1
) -> np.ndarray:
    """Gather-style 'same' convolution for cross-checking the event sim."""
    from repro.tensor.ops import im2col

    cout = weight.shape[0]
    kh = weight.shape[2]
    cols = im2col(
        np.asarray(spike_maps, dtype=np.float32)[None], (kh, kh), 1, padding
    )[0]
    out = weight.reshape(cout, -1).astype(np.float32) @ cols
    h, w = spike_maps.shape[1:]
    return out.reshape(cout, h + 2 * padding - kh + 1, w + 2 * padding - kh + 1)
