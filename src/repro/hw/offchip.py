"""Off-chip (DDR) weight-streaming model -- the paper's stated future work.

Sec. VI: *"additional studies are needed to analyze performance impacts
when incorporating off-chip memory access for broader model support"*.
This module provides that analysis for the same architecture: when a
layer's weights exceed the on-chip budget, they stream from DDR, and the
layer's effective cycle count becomes

    max(compute_cycles, streamed_bits / bytes_per_cycle / 8)

with a per-burst latency overhead. The model answers the design
questions the paper raises: which layers become bandwidth-bound, how much
throughput is lost, and how much on-chip memory buys it back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import HardwareModelError
from repro.hw.memory import BRAM_BITS, effective_weight_bits
from repro.quant.convert import DeployableNetwork
from repro.quant.schemes import QuantScheme


@dataclass(frozen=True)
class DdrConfig:
    """External memory interface parameters.

    Defaults approximate one DDR4-2400 x64 channel as seen from a
    100 MHz fabric: ~19.2 GB/s peak, ~70% achievable efficiency,
    ~200 ns per burst setup.
    """

    peak_bandwidth_gbps: float = 19.2  # gigabytes per second
    efficiency: float = 0.70
    burst_latency_cycles: int = 20
    burst_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.peak_bandwidth_gbps <= 0:
            raise HardwareModelError(
                f"bandwidth must be positive, got {self.peak_bandwidth_gbps}"
            )
        if not 0.0 < self.efficiency <= 1.0:
            raise HardwareModelError(
                f"efficiency must be in (0, 1], got {self.efficiency}"
            )

    def bytes_per_cycle(self, clock_hz: float) -> float:
        """Sustained bytes deliverable per fabric cycle."""
        per_second = self.peak_bandwidth_gbps * 1e9 * self.efficiency
        return per_second / clock_hz


@dataclass(frozen=True)
class LayerStreamingPlan:
    """Streaming decision and cost for one layer."""

    name: str
    weight_bits: int
    resident: bool  # True = fits on chip, no streaming
    stream_cycles_per_image: float
    bursts_per_image: int

    @property
    def streamed_bytes(self) -> float:
        return 0.0 if self.resident else self.weight_bits / 8.0


@dataclass
class StreamingReport:
    """Whole-network off-chip analysis."""

    plans: List[LayerStreamingPlan]
    onchip_budget_bits: float
    ddr: DdrConfig

    @property
    def resident_layers(self) -> List[str]:
        return [p.name for p in self.plans if p.resident]

    @property
    def streamed_layers(self) -> List[str]:
        return [p.name for p in self.plans if not p.resident]

    @property
    def total_streamed_mbytes(self) -> float:
        return sum(p.streamed_bytes for p in self.plans) / 1e6

    def by_name(self) -> Dict[str, LayerStreamingPlan]:
        return {p.name: p for p in self.plans}


def plan_streaming(
    network: DeployableNetwork,
    scheme: QuantScheme,
    clock_hz: float,
    onchip_budget_bits: Optional[float] = None,
    ddr: Optional[DdrConfig] = None,
    timesteps: int = 2,
) -> StreamingReport:
    """Decide which layers stream and what each transfer costs.

    Layers are kept on chip greedily in execution order (early layers are
    reused every timestep and benefit most) until the budget runs out;
    the rest stream their weights once per image (weights are reused
    across timesteps from a streaming buffer, so T does not multiply
    traffic -- the same assumption the paper's on-chip design makes).

    Args:
        network: the deployed model.
        scheme: weight precision (storage bits).
        clock_hz: fabric clock for cycle conversion.
        onchip_budget_bits: weight storage available on chip; default is
            80% of the XCVU13P's BRAM capacity.
        ddr: interface model; default DDR4-2400 x64.
        timesteps: kept for interface symmetry / future per-timestep
            streaming policies.
    """
    if onchip_budget_bits is None:
        onchip_budget_bits = 0.8 * 2688 * BRAM_BITS
    ddr = ddr or DdrConfig()
    bytes_per_cycle = ddr.bytes_per_cycle(clock_hz)

    plans: List[LayerStreamingPlan] = []
    remaining = float(onchip_budget_bits)
    for layer in network.layers:
        bits = effective_weight_bits(
            layer.weight_count + layer.bias_q.size, scheme
        )
        if bits <= remaining:
            remaining -= bits
            plans.append(
                LayerStreamingPlan(
                    name=layer.name,
                    weight_bits=bits,
                    resident=True,
                    stream_cycles_per_image=0.0,
                    bursts_per_image=0,
                )
            )
            continue
        stream_bytes = bits / 8.0
        bursts = max(1, int(round(stream_bytes / ddr.burst_bytes)))
        cycles = (
            stream_bytes / bytes_per_cycle
            + bursts * ddr.burst_latency_cycles
        )
        plans.append(
            LayerStreamingPlan(
                name=layer.name,
                weight_bits=bits,
                resident=False,
                stream_cycles_per_image=cycles,
                bursts_per_image=bursts,
            )
        )
    return StreamingReport(
        plans=plans, onchip_budget_bits=onchip_budget_bits, ddr=ddr
    )


def apply_streaming_to_cycles(
    layer_cycles: Dict[str, float], report: StreamingReport
) -> Dict[str, float]:
    """Merge streaming cost into per-layer compute cycles.

    Weight fetch overlaps compute (double buffering), so a layer's busy
    time is the max of the two, not the sum.
    """
    plans = report.by_name()
    merged: Dict[str, float] = {}
    for name, cycles in layer_cycles.items():
        plan = plans.get(name)
        if plan is None or plan.resident:
            merged[name] = cycles
        else:
            merged[name] = max(cycles, plan.stream_cycles_per_image)
    return merged


def bandwidth_bound_layers(
    layer_cycles: Dict[str, float], report: StreamingReport
) -> List[str]:
    """Layers whose streaming time exceeds their compute time."""
    plans = report.by_name()
    bound = []
    for name, cycles in layer_cycles.items():
        plan = plans.get(name)
        if plan is not None and not plan.resident:
            if plan.stream_cycles_per_image > cycles:
                bound.append(name)
    return bound
