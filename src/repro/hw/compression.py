"""ECU spike-train compression model (Sec. IV-B, Fig. 3).

The Event Control Unit fetches a binary spike train from the input spike
RAM, tiles it into ``n``-bit chunks and eliminates the zero bits: each
cycle a priority encoder emits the address of the first set bit of the
current chunk into the ``SpikeEvents`` register array, and the bit-reset
logic clears that bit for the next cycle. A chunk therefore occupies the
encoder for ``max(1, popcount(chunk))`` cycles -- empty chunks are skipped
in a single scan cycle, dense chunks pay one cycle per event.

Two views are provided:

* :func:`compress_exact` -- bit-accurate: walks a real spike train and
  returns both the emitted event addresses (in hardware order) and the
  exact cycle count; the event-driven golden simulator consumes these.
* :func:`compression_cycles_estimate` -- analytic: expected cycles given
  only (bits, spike count), used when replaying paper-scale workloads
  where no recorded train exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import HardwareModelError


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of compressing one spike train."""

    events: np.ndarray  # addresses of set bits, in emission order
    cycles: int  # ECU cycles consumed
    bits: int  # train length
    chunk_bits: int

    @property
    def spike_count(self) -> int:
        return int(len(self.events))

    @property
    def compression_ratio(self) -> float:
        """Input bits per emitted event (higher = sparser input)."""
        if not len(self.events):
            return float(self.bits)
        return self.bits / len(self.events)


def compress_exact(spike_train: np.ndarray, chunk_bits: int) -> CompressionResult:
    """Bit-accurate compression of a flat binary spike train.

    Args:
        spike_train: 1-D array of {0, 1} (any numeric/bool dtype).
        chunk_bits: priority-encoder width n.

    Returns:
        Events in hardware emission order (chunk-major, then bit position
        within the chunk -- which equals plain ascending address order)
        and the exact cycle count ``sum(max(1, popcount(chunk)))``.
    """
    if chunk_bits < 1:
        raise HardwareModelError(f"chunk_bits must be >= 1, got {chunk_bits}")
    flat = np.asarray(spike_train).reshape(-1)
    if flat.size == 0:
        raise HardwareModelError("empty spike train")
    binary = flat != 0
    addresses = np.flatnonzero(binary)
    num_chunks = int(np.ceil(binary.size / chunk_bits))
    # Cycle count: one per event, plus one per fully-empty chunk.
    occupied = np.unique(addresses // chunk_bits).size
    cycles = int(len(addresses) + (num_chunks - occupied))
    return CompressionResult(
        events=addresses.astype(np.int64),
        cycles=cycles,
        bits=int(binary.size),
        chunk_bits=chunk_bits,
    )


def compress_exact_2d(
    spike_map: np.ndarray, chunk_bits: int
) -> CompressionResult:
    """Compress a (H, W) spike map in row-major scan order."""
    spike_map = np.asarray(spike_map)
    if spike_map.ndim != 2:
        raise HardwareModelError(
            f"expected a 2-D spike map, got shape {spike_map.shape}"
        )
    return compress_exact(spike_map.reshape(-1), chunk_bits)


def compression_cycles_estimate(
    bits: int, spikes: float, chunk_bits: int
) -> float:
    """Expected ECU cycles for ``spikes`` uniform events in ``bits`` slots.

    cycles = spikes + E[#empty chunks]
           = spikes + ceil(bits/n) * (1 - s)^n,  s = spikes / bits.

    Exact in the two extremes (all-empty, fully dense) and within a few
    percent of :func:`compress_exact` for random trains; see the test
    suite's property checks.
    """
    if bits < 1:
        raise HardwareModelError(f"bits must be >= 1, got {bits}")
    if spikes < 0 or spikes > bits:
        raise HardwareModelError(
            f"spike count {spikes} outside [0, {bits}]"
        )
    if chunk_bits < 1:
        raise HardwareModelError(f"chunk_bits must be >= 1, got {chunk_bits}")
    num_chunks = float(np.ceil(bits / chunk_bits))
    density = spikes / bits
    empty_chunks = num_chunks * (1.0 - density) ** chunk_bits
    return float(spikes + empty_chunks)


def compression_cycles_batch(
    trains: np.ndarray, chunk_bits: int
) -> np.ndarray:
    """Exact compression cycles for a batch of spike trains, vectorised.

    Args:
        trains: (..., bits) array whose last axis is one spike train.
        chunk_bits: priority-encoder width n.

    Returns:
        float array of shape ``trains.shape[:-1]`` with the exact cycle
        count per train (identical to :func:`compress_exact` train by
        train, but one NumPy pass for the whole batch).
    """
    if chunk_bits < 1:
        raise HardwareModelError(f"chunk_bits must be >= 1, got {chunk_bits}")
    trains = np.asarray(trains)
    if trains.ndim < 1 or trains.shape[-1] == 0:
        raise HardwareModelError("trains must have a non-empty last axis")
    bits = trains.shape[-1]
    num_chunks = int(np.ceil(bits / chunk_bits))
    pad = num_chunks * chunk_bits - bits
    # One byte per bit instead of the old int64 materialisation: the
    # {0, 1} mask is viewed as uint8 and popcounted per chunk with a
    # widening sum. Stacked (T, N, ...) trains whose bit axis is already
    # a chunk multiple (the layout the simulator feeds) take the no-pad
    # fast path with zero extra copies beyond the mask itself.
    binary = (trains != 0)
    if pad:
        widths = [(0, 0)] * (trains.ndim - 1) + [(0, pad)]
        binary = np.pad(binary, widths)
    chunked = binary.view(np.uint8).reshape(
        trains.shape[:-1] + (num_chunks, chunk_bits)
    )
    per_chunk = chunked.sum(axis=-1, dtype=np.int64)
    spikes = per_chunk.sum(axis=-1)
    empty = (per_chunk == 0).sum(axis=-1)
    return (spikes + empty).astype(np.float64)


def event_addresses_to_coords(
    events: np.ndarray, width: int
) -> List[tuple]:
    """Convert flat row-major addresses back to (row, col) pairs."""
    if width < 1:
        raise HardwareModelError(f"width must be >= 1, got {width}")
    return [(int(addr) // width, int(addr) % width) for addr in np.asarray(events)]
