"""FPGA device envelopes.

The paper targets a Xilinx Virtex UltraScale+ XCVU13P; the baseline
SyncNN numbers it compares against come from a much smaller ZCU102
(Zynq UltraScale+ ZU9EG). Capacities below are the vendors' published
totals for the programmable fabric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError


@dataclass(frozen=True)
class FpgaDevice:
    """Programmable-fabric capacity of one device.

    Attributes:
        name: part number.
        luts: 6-input LUT count.
        ffs: flip-flop count.
        bram36: 36-Kb block RAM count.
        uram: 288-Kb UltraRAM count.
        dsp: DSP48 slice count (unused by the paper's shift-and-add
            design, tracked for completeness).
        bram_kbits / uram_kbits: capacity per block, in Kbit.
        lutram_fraction: share of LUTs usable as distributed RAM
            (SLICEM); UltraScale+ fabric is roughly half SLICEM.
        lutram_bits_per_lut: distributed-RAM bits one LUT6 provides.
    """

    name: str
    luts: int
    ffs: int
    bram36: int
    uram: int
    dsp: int
    bram_kbits: float = 36.0
    uram_kbits: float = 288.0
    lutram_fraction: float = 0.5
    lutram_bits_per_lut: int = 64

    def check_fit(self, luts: float, ffs: float, bram: float, uram: float) -> None:
        """Raise :class:`CapacityError` if a design exceeds the device."""
        over = []
        if luts > self.luts:
            over.append(f"LUT {luts:.0f} > {self.luts}")
        if ffs > self.ffs:
            over.append(f"FF {ffs:.0f} > {self.ffs}")
        if bram > self.bram36:
            over.append(f"BRAM {bram:.0f} > {self.bram36}")
        if uram > self.uram:
            over.append(f"URAM {uram:.0f} > {self.uram}")
        if over:
            raise CapacityError(
                f"design does not fit {self.name}: " + "; ".join(over)
            )

    def utilization(
        self, luts: float, ffs: float, bram: float, uram: float
    ) -> dict:
        """Fractional utilization per resource class."""
        return {
            "lut": luts / self.luts,
            "ff": ffs / self.ffs,
            "bram": bram / self.bram36,
            "uram": uram / self.uram if self.uram else 0.0,
        }


#: The paper's implementation platform (Virtex UltraScale+ VU13P).
XCVU13P = FpgaDevice(
    name="XCVU13P",
    luts=1_728_000,
    ffs=3_456_000,
    bram36=2_688,
    uram=1_280,
    dsp=12_288,
)

#: SyncNN's platform (reference [15]) -- used by the Table III baseline.
ZCU102 = FpgaDevice(
    name="ZCU102",
    luts=274_080,
    ffs=548_160,
    bram36=912,
    uram=0,
    dsp=2_520,
)
