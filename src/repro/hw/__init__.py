"""Hardware model of the paper's hybrid SNN accelerator (Sec. IV).

Subsystems:

* :mod:`repro.hw.device` -- the Xilinx Virtex UltraScale+ XCVU13P
  resource envelope the design must fit in,
* :mod:`repro.hw.config` -- accelerator configurations (LW / perf2 /
  perf4, per-layer neural-core allocations, clock),
* :mod:`repro.hw.compression` -- the ECU's priority-encoder spike-train
  compression (cycle-exact and analytic),
* :mod:`repro.hw.dense_core` -- the 27-PE weight-stationary systolic
  dense core that handles the direct-coded input layer,
* :mod:`repro.hw.sparse_core` -- event-driven sparse cores (ECU + neural
  cores) for all spiking layers,
* :mod:`repro.hw.event_sim` -- a fine-grained event-driven golden
  simulator used to validate the analytic cycle models,
* :mod:`repro.hw.memory` -- on-chip storage allocation (BRAM / URAM /
  LUTRAM, spike RAM layout, clock gating),
* :mod:`repro.hw.resources` -- per-layer LUT/FF/BRAM/URAM estimates,
* :mod:`repro.hw.power` / :mod:`repro.hw.energy` -- power and
  energy-per-image models,
* :mod:`repro.hw.simulator` -- the whole-network hybrid simulator that
  ties everything together.
"""

from repro.hw.device import XCVU13P, FpgaDevice
from repro.hw.config import (
    AcceleratorConfig,
    PAPER_LW_ALLOCATIONS,
    PAPER_TABLE1_ALLOCATION,
    lw_config,
    perf_config,
)
from repro.hw.compression import (
    CompressionResult,
    compress_exact,
    compression_cycles_estimate,
)
from repro.hw.dense_core import DenseCoreModel
from repro.hw.sparse_core import SparseCoreModel
from repro.hw.event_sim import EventDrivenLayerSim
from repro.hw.memory import MemoryPlan, plan_layer_memory
from repro.hw.offchip import DdrConfig, StreamingReport, plan_streaming
from repro.hw.resources import LayerResources, ResourceEstimator
from repro.hw.power import PowerModel
from repro.hw.energy import EnergyReport
from repro.hw.simulator import HybridSimulator, SimulationReport

__all__ = [
    "AcceleratorConfig",
    "CompressionResult",
    "DdrConfig",
    "DenseCoreModel",
    "EnergyReport",
    "EventDrivenLayerSim",
    "FpgaDevice",
    "HybridSimulator",
    "LayerResources",
    "MemoryPlan",
    "PAPER_LW_ALLOCATIONS",
    "PAPER_TABLE1_ALLOCATION",
    "PowerModel",
    "ResourceEstimator",
    "SimulationReport",
    "SparseCoreModel",
    "StreamingReport",
    "XCVU13P",
    "compress_exact",
    "compression_cycles_estimate",
    "lw_config",
    "perf_config",
    "plan_layer_memory",
    "plan_streaming",
]
