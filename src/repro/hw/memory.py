"""On-chip memory planning (Sec. IV-C).

The design keeps *everything* on chip -- model parameters, membrane
potentials and inter-layer spike trains -- in a mix of:

* **LUTRAM** (distributed RAM) for small early-layer weights; flexible
  but scarce, and the reason the fp32 build's CONV1_2 explodes to
  hundreds of thousands of LUTs (every neural core needs parallel read
  ports, so the weight store is replicated per NC),
* **BRAM** (36-Kb blocks) for most weights, membranes and spike trains;
  int4 weights pay a width/padding overhead because BRAM primitives
  bottom out at 8-bit data widths,
* **URAM** (288-Kb blocks) for the large fp32 fully-connected weights.

Spike trains live in a timestep-major layout: a layer with N output maps
over T timesteps occupies N*T contiguous train slots (Fig. 2), charged
to the producing layer. Clock gating partitions each memory by the
address MSB so only the active half burns clock power; that effect lives
in :mod:`repro.hw.power`.

Calibration note: constants below were chosen so the paper-scale CIFAR100
VGG9 reproduces Table I's structure (which layers use which storage
class, int4 ~3x fewer BRAM-equivalents, fp32 CONV1_2 LUTRAM blow-up).
The paper's FC storage rows are not self-consistent with storing the full
fp32 FC weights on chip (475 Mb vs the ~106 Mb its URAM count provides);
we charge full storage and document the difference in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from repro.errors import HardwareModelError
from repro.quant.schemes import QuantScheme

#: Bits of distributed RAM per LUT6 in UltraScale+.
LUTRAM_BITS_PER_LUT = 64
#: 36-Kb block RAM capacity in bits.
BRAM_BITS = 36 * 1024
#: 288-Kb UltraRAM capacity in bits.
URAM_BITS = 288 * 1024
#: Weights at or below this effective size go to LUTRAM.
LUTRAM_WEIGHT_THRESHOLD_BITS = 512 * 1024
#: BRAM packing overhead (8-bit minimum width, partition padding).
BRAM_PACKING_OVERHEAD = 1.3
#: Parallel-port replication efficiency for LUTRAM weight stores
#: (calibrated to the paper's fp32 CONV1_2: ~670K LUTs at 28 NCs).
LUTRAM_REPLICATION_EFFICIENCY = 0.75
#: Membrane word width: potentials stay floating point (Sec. II-B).
MEMBRANE_BITS = 32


@dataclass(frozen=True)
class MemoryPlan:
    """Storage assignment for one layer.

    Attributes:
        weight_store: 'lutram' | 'bram' | 'uram' | 'ff' (dense core
            weight registers).
        lutram_luts: LUTs consumed as distributed RAM.
        weight_bram / weight_uram: blocks holding weights.
        membrane_bram: blocks holding the NCs' membrane working set.
        spike_bram: blocks holding this layer's *output* spike trains
            (timestep-major, N*T trains).
        total_bram / total_uram: convenience sums.
    """

    weight_store: str
    lutram_luts: int
    weight_bram: int
    weight_uram: int
    membrane_bram: int
    spike_bram: int

    @property
    def total_bram(self) -> int:
        return self.weight_bram + self.membrane_bram + self.spike_bram

    @property
    def total_uram(self) -> int:
        return self.weight_uram


def effective_weight_bits(weight_count: int, scheme: QuantScheme) -> int:
    """Raw storage bits for ``weight_count`` parameters under ``scheme``."""
    bits = 32 if scheme.is_float else scheme.bits
    return weight_count * bits


def plan_layer_memory(
    kind: str,
    weight_count: int,
    scheme: QuantScheme,
    nc_count: int,
    out_spatial: int,
    out_channels: int,
    timesteps: int,
    is_input_layer: bool = False,
    block_index: int = 1,
) -> MemoryPlan:
    """Assign storage for one layer.

    Args:
        kind: 'conv' or 'fc'.
        weight_count: parameters (weights + biases).
        scheme: deployed precision.
        nc_count: neural cores (dense rows for the input layer).
        out_spatial: OH*OW for conv (1 for fc).
        out_channels: output maps / neurons.
        timesteps: spike-train depth T (layout is N*T trains).
        is_input_layer: dense-core layer; weights live in PE registers
            (FFs), image buffers in flip-flops -- no block RAM at all,
            matching Table I's CONV1_1 row (0 BRAM).
        block_index: VGG block (1 = before the first pool); the paper
            keeps block-1 weights in LUTRAM.
    """
    if kind not in ("conv", "fc"):
        raise HardwareModelError(f"unknown layer kind {kind!r}")
    if nc_count < 1:
        raise HardwareModelError(f"nc_count must be >= 1, got {nc_count}")
    bits = effective_weight_bits(weight_count, scheme)

    if is_input_layer:
        # Weight-stationary PE registers + FF image buffers; spikes of the
        # input layer still go to BRAM for the next layer to consume.
        spike_bram = _spike_blocks(out_channels, out_spatial, timesteps)
        return MemoryPlan(
            weight_store="ff",
            lutram_luts=0,
            weight_bram=0,
            weight_uram=0,
            membrane_bram=0,
            spike_bram=spike_bram,
        )

    membrane_bram = nc_count * max(
        1, ceil(out_spatial * MEMBRANE_BITS / BRAM_BITS)
    )
    spike_bram = _spike_blocks(out_channels, out_spatial, timesteps)

    # LUTRAM stores are replicated per NC for parallel read ports, so the
    # size test applies to the replicated footprint; fp32 block-1 convs
    # stay in LUTRAM regardless (the paper's design choice, and the cause
    # of its CONV1_2 LUT blow-up).
    replication = max(1.0, nc_count * LUTRAM_REPLICATION_EFFICIENCY)
    use_lutram = bits * replication <= LUTRAM_WEIGHT_THRESHOLD_BITS or (
        scheme.is_float and kind == "conv" and block_index == 1
    )
    if use_lutram:
        luts = ceil(bits / LUTRAM_BITS_PER_LUT * replication)
        return MemoryPlan(
            weight_store="lutram",
            lutram_luts=luts,
            weight_bram=0,
            weight_uram=0,
            membrane_bram=membrane_bram,
            spike_bram=spike_bram,
        )

    if kind == "fc" and scheme.is_float:
        # Large fp32 FC weights use UltraRAM for density (Sec. IV-B).
        uram = ceil(bits / URAM_BITS)
        return MemoryPlan(
            weight_store="uram",
            lutram_luts=0,
            weight_bram=0,
            weight_uram=uram,
            membrane_bram=membrane_bram,
            spike_bram=spike_bram,
        )

    padded = bits * BRAM_PACKING_OVERHEAD
    weight_bram = max(ceil(padded / BRAM_BITS), ceil(nc_count / 2))
    weight_uram = 0
    if scheme.is_float and kind == "conv":
        # fp32 conv layers beyond ~8 Mb spill into URAM (Table I's
        # CONV2_2..CONV3_3 pattern).
        spill_threshold = 8 * 1024 * 1024
        if padded > spill_threshold:
            weight_bram = max(
                ceil(spill_threshold / BRAM_BITS), ceil(nc_count / 2)
            )
            weight_uram = ceil((padded - spill_threshold) / URAM_BITS)
    return MemoryPlan(
        weight_store="bram" if not weight_uram else "bram+uram",
        lutram_luts=0,
        weight_bram=weight_bram,
        weight_uram=weight_uram,
        membrane_bram=membrane_bram,
        spike_bram=spike_bram,
    )


def _spike_blocks(out_channels: int, out_spatial: int, timesteps: int) -> int:
    """Blocks for the timestep-major output spike store (N*T trains)."""
    bits = out_channels * timesteps * max(1, out_spatial)
    return max(1, ceil(bits / BRAM_BITS))


def spike_ram_words(out_channels: int, timesteps: int) -> int:
    """Address space of the spike RAM: N*T train slots (Fig. 2)."""
    return out_channels * timesteps
