"""Whole-network hybrid simulator.

:class:`HybridSimulator` binds a deployed network to an accelerator
configuration and produces, for a batch of images:

* functional outputs (logits / accuracy) via the
  :class:`~repro.quant.convert.DeployableNetwork` golden model,
* exact per-layer cycle counts -- the dense core serves the direct-coded
  input layer, sparse cores replay every recorded spike train through the
  compression + accumulation pipeline models,
* resource, power, energy, latency and throughput reports.

Two timing modes:

* **exact** (:meth:`run`): replays recorded spike trains; used whenever
  the network is small enough to execute functionally. Accepts a shard
  geometry (``shards`` / ``shard_size`` / ``workers``): each shard then
  executes its forward pass *and* reduces its trains to per-(layer,
  timestep) cycle **sums** locally -- only ``(T,)`` float64 vectors (plus
  the slim functional output) travel back, never the trains themselves.
  The sums are integer-valued and therefore merge exactly; the single
  mean-per-timestep division happens once, on the merged totals, in the
  same order the unsharded path uses -- so sharded cycle statistics are
  bit-identical to the unsharded run for deterministic encoders, at any
  shard geometry and worker count.
* **analytic** (:meth:`run_from_counts`): needs only per-layer event
  counts (e.g. the paper-scale workload profile); used by the Table I /
  Table III harnesses where only cycle/power structure matters.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from math import ceil
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, HardwareModelError
from repro.hw.compression import (
    compression_cycles_batch,
    compression_cycles_estimate,
)
from repro.hw.config import AcceleratorConfig
from repro.hw.dense_core import DenseCoreModel
from repro.hw.energy import EnergyReport, build_energy_report
from repro.hw.power import PowerModel, PowerReport
from repro.hw.resources import ResourceEstimate, ResourceEstimator
from repro.quant.convert import DeployableNetwork
from repro.snn.encoding import DirectEncoder, Encoder


@dataclass(frozen=True)
class LayerSimStats:
    """Per-image averages for one layer."""

    name: str
    cores: int
    engine: str  # 'dense' | 'sparse'
    cycles: float
    compression_cycles: float
    accumulation_cycles: float
    activation_cycles: float
    input_events: float
    output_spikes: float


@dataclass
class SimulationReport:
    """Everything one simulation run produces."""

    config_name: str
    scheme_name: str
    timesteps: int
    samples: int
    layers: List[LayerSimStats]
    resources: ResourceEstimate
    utilization: Dict[str, float]
    power: PowerReport
    energy: EnergyReport
    accuracy: Optional[float] = None
    logits: Optional[np.ndarray] = None
    total_spikes_per_image: float = 0.0
    notes: List[str] = field(default_factory=list)

    @property
    def latency_ms(self) -> float:
        return self.energy.latency_ms

    @property
    def throughput_fps(self) -> float:
        return self.energy.throughput_fps

    @property
    def energy_mj(self) -> float:
        return self.energy.total_energy_mj

    @property
    def dynamic_power_w(self) -> float:
        return self.power.dynamic_w

    def summary(self) -> str:
        lines = [
            f"config {self.config_name} ({self.scheme_name}), T={self.timesteps}, "
            f"{self.samples} image(s)",
            f"  latency {self.latency_ms:.3f} ms | throughput "
            f"{self.throughput_fps:.1f} FPS | energy {self.energy_mj:.3f} mJ/img",
            f"  dynamic power {self.dynamic_power_w:.3f} W | static "
            f"{self.power.static_w:.2f} W | spikes/img "
            f"{self.total_spikes_per_image:.0f}",
        ]
        if self.accuracy is not None:
            lines.append(f"  accuracy {self.accuracy * 100.0:.2f}%")
        overheads = self.energy.layer_overheads()
        lines.append("  layer overheads: " + ", ".join(
            f"{name} {overheads[name]:.1f}%" for name in overheads
        ))
        return "\n".join(lines)


def sparse_layer_cycle_sums(
    layer, cores: int, trains: np.ndarray, chunk_bits: int
) -> Dict[str, np.ndarray]:
    """Per-timestep cycle *sums* over samples for one sparse layer.

    The whole stacked ``(T, N, ...)`` train goes through
    :func:`compression_cycles_batch` in one vectorised pass; the
    per-sample compression / accumulation / busy (their overlapped max,
    Sec. IV-B) and event values are then summed over the sample axis per
    timestep, in float64. Every summand is an exact integer, so the
    ``(T,)`` sums are exact and shard-order independent -- adding the
    sums of two shards equals the sum over their union bit-for-bit,
    which is what lets :meth:`HybridSimulator.run` merge sharded cycle
    statistics without ever shipping trains.
    """
    owned = ceil(layer.out_channels / cores)
    timesteps, n = trains.shape[0], trains.shape[1]
    if layer.kind == "conv":
        taps = layer.kernel * layer.kernel
        maps = trains.reshape(timesteps, n, layer.input_shape[0], -1)
        compr_all = compression_cycles_batch(maps, chunk_bits).sum(axis=2)
        events_all = maps.sum(axis=(2, 3), dtype=np.float64)
        accum_all = events_all * (taps * owned)
    else:
        binary = trains.reshape(timesteps, n, -1)
        compr_all = compression_cycles_batch(binary, chunk_bits)
        events_all = binary.sum(axis=2, dtype=np.float64)
        accum_all = events_all * owned
    # Compression and accumulation overlap (Sec. IV-B): per sample and
    # timestep the layer is busy for the slower of the two.
    busy_all = np.maximum(compr_all, accum_all)
    return {
        "compr": compr_all.sum(axis=1),
        "accum": accum_all.sum(axis=1),
        "events": events_all.sum(axis=1),
        "busy": busy_all.sum(axis=1),
        "samples": np.float64(n),
    }


def merge_cycle_sums(
    parts: Sequence[Dict[str, Dict[str, np.ndarray]]]
) -> Dict[str, Dict[str, np.ndarray]]:
    """Fold per-shard ``{layer: sums}`` dicts (exact: integer sums)."""
    merged: Dict[str, Dict[str, np.ndarray]] = {}
    for part in parts:
        for name, sums in part.items():
            target = merged.get(name)
            if target is None:
                merged[name] = {key: np.copy(value) for key, value in sums.items()}
            else:
                for key, value in sums.items():
                    target[key] = target[key] + value
    return merged


# ---------------------------------------------------------------------------
# Sharded exact mode: worker-side cells (module level for pickling)
# ---------------------------------------------------------------------------

_SIM_WORKER_STATE: Optional[Dict] = None  # repro: lint-ok[P102] per-worker broadcast state; repopulated by the initializer in each process


def _sim_shard_result(model, config: AcceleratorConfig, out) -> Tuple:
    """Reduce one shard's forward output to what travels back: the slim
    functional output (no trains) plus per-layer cycle sums."""
    from repro.quant.convert import DeployableOutput

    stacked_trains = getattr(out, "spike_trains_stacked", None) or {}
    sums: Dict[str, Dict[str, np.ndarray]] = {}
    for index, layer in enumerate(model.layers):
        if index == 0 and config.use_dense_core:
            continue  # dense-core layer: activity-independent timing
        stacked = stacked_trains.get(layer.name)
        if stacked is None:
            stacked = np.stack(out.spike_trains[layer.name])
        sums[layer.name] = sparse_layer_cycle_sums(
            layer, config.allocation[index], stacked,
            config.compression_chunk_bits,
        )
    slim = DeployableOutput(
        logits=out.logits,
        stats=out.stats,
        input_spike_totals=out.input_spike_totals,
        runtime_counters=out.runtime_counters,
    )
    return slim, sums


def _init_sim_worker(model_payload, config, images, encoder_blob) -> None:
    from repro.parallel.shard import _materialize_model

    global _SIM_WORKER_STATE
    _SIM_WORKER_STATE = {
        "model": _materialize_model(model_payload),
        "config": config,
        "images": images,
        "encoder_blob": encoder_blob,
    }


def _run_sim_shard(task: Tuple[object, int, int]):
    from repro.parallel.shard import resolve_task_images

    payload, start, timesteps = task
    state = _SIM_WORKER_STATE
    shard_images = resolve_task_images(payload, state["images"])
    # Position the encoder on the shard's global sample offset so
    # counter-stream encoders replay the unsharded stream exactly;
    # stateful encoders ignore it (snapshot per shard, as before).
    encoder = pickle.loads(state["encoder_blob"]).for_samples(start)
    out = state["model"].forward(
        shard_images, timesteps, encoder, record=True
    )
    return _sim_shard_result(state["model"], state["config"], out)


class HybridSimulator:
    """Simulates a deployable network on the hybrid accelerator."""

    def __init__(
        self, network: DeployableNetwork, config: AcceleratorConfig
    ) -> None:
        if len(network.layers) != len(config.allocation):
            raise ConfigError(
                f"config {config.name!r} allocates {len(config.allocation)} "
                f"layers; network has {len(network.layers)}"
            )
        self.network = network
        self.config = config
        self._resource_estimator = ResourceEstimator(config)
        self._power_model = PowerModel(config)

    # ------------------------------------------------------------------
    # Exact mode
    # ------------------------------------------------------------------
    def run(
        self,
        images: np.ndarray,
        timesteps: int,
        encoder: Optional[Encoder] = None,
        labels: Optional[np.ndarray] = None,
        shards: Optional[int] = None,
        shard_size: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> SimulationReport:
        """Functionally execute a batch and time every recorded train.

        With a shard geometry (``shards`` / ``shard_size`` /
        ``workers``) the batch is split exactly like
        :func:`~repro.parallel.shard.sharded_forward` splits it, each
        shard reduces its own trains to per-(layer, timestep) cycle sums
        in place (in a worker process, or inline under the serial
        fallback), and the merged statistics are bit-identical to the
        unsharded run for deterministic encoders -- see the module
        docstring. Counter-stream rate coding is deterministic in this
        sense: every task carries its shard's global sample offset and
        the encoder replays the unsharded stream exactly; only leftover
        stateful encoders fall back to snapshot-per-shard semantics.
        """
        encoder = encoder or DirectEncoder()
        self._check_encoder(encoder)
        if shards is not None or shard_size is not None or workers is not None:
            return self._run_sharded(
                images, timesteps, encoder, labels,
                shards=shards, shard_size=shard_size, workers=workers,
            )
        out = self.network.forward(images, timesteps, encoder, record=True)
        slim, sums = _sim_shard_result(self.network, self.config, out)
        return self._report_from_sums(
            slim, sums, timesteps, len(images), encoder, labels
        )

    def _run_sharded(
        self,
        images: np.ndarray,
        timesteps: int,
        encoder: Encoder,
        labels: Optional[np.ndarray],
        shards: Optional[int],
        shard_size: Optional[int],
        workers: Optional[int],
    ) -> SimulationReport:
        """Exact mode over shards: ship (slim output, cycle sums) only."""
        from repro.parallel.config import resolve_workers
        from repro.parallel.pool import run_tasks
        from repro.parallel.shard import (
            merge_outputs,
            plan_task_images,
            shard_slices,
        )

        images = np.asarray(images, dtype=np.float32)
        slices = shard_slices(len(images), shards=shards, shard_size=shard_size)
        encoder_blob = pickle.dumps(encoder)
        count = min(resolve_workers(workers), len(slices))
        if count <= 1 or len(slices) <= 1:
            parts = []
            for piece in slices:
                shard_encoder = pickle.loads(encoder_blob).for_samples(
                    piece.start
                )
                out = self.network.forward(
                    images[piece], timesteps, shard_encoder, record=True
                )
                parts.append(
                    _sim_shard_result(self.network, self.config, out)
                )
        else:
            init_images, image_payloads, cleanup = plan_task_images(
                images, slices
            )
            tasks = [
                (payload, piece.start, timesteps)
                for payload, piece in zip(image_payloads, slices)
            ]
            try:
                parts = run_tasks(
                    _run_sim_shard,
                    tasks,
                    workers=count,
                    initializer=_init_sim_worker,
                    initargs=(
                        ("object", self.network, None),
                        self.config,
                        init_images,
                        encoder_blob,
                    ),
                )
            finally:
                cleanup()
        merged_out = merge_outputs([slim for slim, _ in parts])
        merged_sums = merge_cycle_sums([sums for _, sums in parts])
        return self._report_from_sums(
            merged_out, merged_sums, timesteps, len(images), encoder, labels
        )

    def _report_from_sums(
        self,
        out,
        sums: Dict[str, Dict[str, np.ndarray]],
        timesteps: int,
        samples: int,
        encoder: Encoder,
        labels: Optional[np.ndarray],
    ) -> SimulationReport:
        """Assemble the report from a (merged) slim output + cycle sums."""
        layer_stats: List[LayerSimStats] = []
        for index, layer in enumerate(self.network.layers):
            cores = self.config.allocation[index]
            if self._runs_on_dense(index, encoder):
                stats = self._dense_layer_stats(layer, cores, timesteps, samples)
            else:
                stats = self._sparse_layer_stats_from_sums(
                    layer, cores, sums[layer.name], timesteps
                )
            layer_stats.append(stats)
        report = self._finalize(layer_stats, timesteps, samples, out.stats)
        report.logits = out.logits
        if labels is not None:
            report.accuracy = float(
                (out.logits.argmax(axis=1) == np.asarray(labels)).mean()
            )
        counters = getattr(out, "runtime_counters", None)
        if counters:
            dense = sum(c.dense_steps for c in counters.values())
            event = sum(c.event_steps for c in counters.values())
            report.notes.append(
                f"runtime dispatch: {dense} dense / {event} event "
                "layer-timesteps ("
                + ", ".join(
                    f"{name} d{c.dense_steps}/e{c.event_steps}"
                    for name, c in counters.items()
                )
                + ")"
            )
            int_steps = sum(
                c.int_dense_steps + c.int_event_steps
                for c in counters.values()
            )
            if int_steps:
                # The integer datapath is the software twin of the
                # quantized MAC arrays this simulator models: these
                # layer-timesteps accumulated in int32 and requantized
                # at the layer boundary instead of running float GEMMs.
                report.notes.append(
                    f"integer datapath: {int_steps} of {dense + event} "
                    "layer-timesteps ran int32 accumulation ("
                    + ", ".join(
                        f"{name} d{c.int_dense_steps}/e{c.int_event_steps}"
                        for name, c in counters.items()
                        if c.int_dense_steps or c.int_event_steps
                    )
                    + ")"
                )
        return report

    # ------------------------------------------------------------------
    # Analytic mode
    # ------------------------------------------------------------------
    def run_from_counts(
        self,
        input_events_per_layer: Dict[str, float],
        timesteps: int,
        output_spikes_per_layer: Optional[Dict[str, float]] = None,
    ) -> SimulationReport:
        """Time the network from per-layer event counts alone.

        Args:
            input_events_per_layer: per layer name, total input events per
                image across all timesteps (sparse layers). The dense
                input layer ignores its entry (its work is activity-
                independent).
            timesteps: T.
            output_spikes_per_layer: optional, only feeds the report's
                spike totals.
        """
        return self.run_from_counts_batch(
            [input_events_per_layer], timesteps, [output_spikes_per_layer]
        )[0]

    def run_from_counts_batch(
        self,
        events_batch: Sequence[Dict[str, float]],
        timesteps: int,
        output_spikes_batch: Optional[Sequence[Optional[Dict[str, float]]]] = None,
    ) -> List["SimulationReport"]:
        """Analytic timing for many sweep points in one batched pass.

        Bit-identical to calling :meth:`run_from_counts` once per entry
        of ``events_batch`` (same per-point arithmetic, verified by the
        parallel equivalence suite), but the layer walk runs once, the
        activity-independent dense-layer stats are computed once and
        shared, and -- the dominant per-point cost -- the resource and
        power estimates are computed once for the whole sweep instead of
        once per point. Fig. 1 / design-space sweeps evaluating hundreds
        of (scheme, density) cells therefore pay the network-model walk
        a single time.
        """
        if output_spikes_batch is not None and len(output_spikes_batch) != len(
            events_batch
        ):
            raise HardwareModelError(
                f"{len(output_spikes_batch)} spike dicts for "
                f"{len(events_batch)} sweep points"
            )
        points = len(events_batch)
        if points == 0:
            return []
        per_point: List[List[LayerSimStats]] = [[] for _ in range(points)]
        for index, layer in enumerate(self.network.layers):
            cores = self.config.allocation[index]
            if index == 0 and self.config.use_dense_core:
                # Dense-core work is activity-independent: one frozen
                # stats record serves every sweep point.
                shared = self._dense_layer_stats(layer, cores, timesteps, 1)
                for stats_list in per_point:
                    stats_list.append(shared)
                continue
            for j, counts in enumerate(events_batch):
                events = counts.get(layer.name)
                if events is None:
                    raise HardwareModelError(
                        f"no event count supplied for layer {layer.name!r}"
                    )
                per_point[j].append(
                    self._sparse_layer_stats_analytic(
                        layer, cores, float(events), timesteps
                    )
                )
        resources = self._resource_estimator.estimate(self.network, timesteps)
        power = self._power_model.estimate(resources)
        reports: List[SimulationReport] = []
        for j in range(points):
            report = self._finalize_with(
                per_point[j], timesteps, 1, None, resources, power
            )
            spikes = (
                output_spikes_batch[j] if output_spikes_batch is not None else None
            )
            if spikes:
                report.total_spikes_per_image = float(sum(spikes.values()))
            reports.append(report)
        return reports

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_encoder(self, encoder: Encoder) -> None:
        if encoder.analog_input and not self.config.use_dense_core:
            raise HardwareModelError(
                "direct (analog) coding requires the dense core; "
                "rate-coded inputs are needed when use_dense_core=False "
                "(Table II methodology)"
            )

    def _runs_on_dense(self, index: int, encoder: Encoder) -> bool:
        return index == 0 and self.config.use_dense_core

    def _dense_layer_stats(
        self, layer, rows: int, timesteps: int, samples: int
    ) -> LayerSimStats:
        model = DenseCoreModel(rows, self.config.dense_pe_columns)
        out_c, out_h, out_w = layer.output_shape
        in_c = layer.input_shape[0]
        timing = model.layer_cycles(out_c, out_h, out_w, in_c, layer.kernel)
        cycles = float(timing.total_cycles * timesteps)
        return LayerSimStats(
            name=layer.name,
            cores=rows,
            engine="dense",
            cycles=cycles,
            compression_cycles=0.0,
            accumulation_cycles=cycles,
            activation_cycles=0.0,
            input_events=float(np.prod(layer.input_shape)) * timesteps,
            output_spikes=0.0,
        )

    def _sparse_layer_stats(
        self,
        layer,
        cores: int,
        trains: np.ndarray,
        samples: int,
    ) -> LayerSimStats:
        """Exact timing from the stacked (T, N, ...) recorded input train."""
        sums = sparse_layer_cycle_sums(
            layer, cores, trains, self.config.compression_chunk_bits
        )
        return self._sparse_layer_stats_from_sums(
            layer, cores, sums, trains.shape[0]
        )

    def _sparse_layer_stats_from_sums(
        self,
        layer,
        cores: int,
        sums: Dict[str, np.ndarray],
        timesteps: int,
    ) -> LayerSimStats:
        """Exact per-image averages from (possibly merged) cycle sums.

        One float64 division per timestep and quantity, accumulated in
        timestep order -- the same reduction order whether the sums came
        from one pass over the whole batch or were merged from shards,
        which (with the sums being exact integers) is what makes sharded
        cycle statistics bit-identical to unsharded ones.
        """
        owned = ceil(layer.out_channels / cores)
        if layer.kind == "conv":
            activation = (
                layer.output_shape[1] * layer.output_shape[2] * owned
            ) * timesteps
        else:
            activation = owned * timesteps
        n = float(sums["samples"])
        total_compr = 0.0
        total_accum = 0.0
        total_events = 0.0
        busy = 0.0
        for t in range(timesteps):
            total_compr += float(sums["compr"][t] / n)
            total_accum += float(sums["accum"][t] / n)
            total_events += float(sums["events"][t] / n)
            busy += float(sums["busy"][t] / n)
        cycles = busy + activation
        return LayerSimStats(
            name=layer.name,
            cores=cores,
            engine="sparse",
            cycles=cycles,
            compression_cycles=total_compr,
            accumulation_cycles=total_accum,
            activation_cycles=float(activation),
            input_events=total_events,
            output_spikes=0.0,
        )

    def _sparse_layer_stats_analytic(
        self, layer, cores: int, events: float, timesteps: int
    ) -> LayerSimStats:
        chunk = self.config.compression_chunk_bits
        owned = ceil(layer.out_channels / cores)
        events_per_t = events / timesteps
        if layer.kind == "conv":
            cin, height, width = layer.input_shape
            bits = height * width
            per_map = min(events_per_t / cin, bits)
            compr_t = cin * compression_cycles_estimate(bits, per_map, chunk)
            taps = layer.kernel * layer.kernel
            accum_t = events_per_t * taps * owned
            activation = layer.output_shape[1] * layer.output_shape[2] * owned
        else:
            nin = int(np.prod(layer.input_shape))
            per = min(events_per_t, nin)
            compr_t = compression_cycles_estimate(nin, per, chunk)
            accum_t = events_per_t * owned
            activation = owned
        busy = max(compr_t, accum_t) * timesteps
        cycles = busy + activation * timesteps
        return LayerSimStats(
            name=layer.name,
            cores=cores,
            engine="sparse",
            cycles=cycles,
            compression_cycles=compr_t * timesteps,
            accumulation_cycles=accum_t * timesteps,
            activation_cycles=float(activation * timesteps),
            input_events=events,
            output_spikes=0.0,
        )

    def _finalize(
        self,
        layer_stats: List[LayerSimStats],
        timesteps: int,
        samples: int,
        stats,
    ) -> SimulationReport:
        resources = self._resource_estimator.estimate(self.network, timesteps)
        power = self._power_model.estimate(resources)
        return self._finalize_with(
            layer_stats, timesteps, samples, stats, resources, power
        )

    def _finalize_with(
        self,
        layer_stats: List[LayerSimStats],
        timesteps: int,
        samples: int,
        stats,
        resources: ResourceEstimate,
        power: PowerReport,
    ) -> SimulationReport:
        power_by_name = power.by_name()
        energy = build_energy_report(
            names=[s.name for s in layer_stats],
            cycles=[s.cycles for s in layer_stats],
            dynamic_power_w=[power_by_name[s.name].total_w for s in layer_stats],
            clock_hz=self.config.clock_hz,
            static_power_w=power.static_w,
        )
        if stats is not None:
            spikes_per_image = stats.spikes_per_image()
            layer_stats = [
                LayerSimStats(
                    name=s.name,
                    cores=s.cores,
                    engine=s.engine,
                    cycles=s.cycles,
                    compression_cycles=s.compression_cycles,
                    accumulation_cycles=s.accumulation_cycles,
                    activation_cycles=s.activation_cycles,
                    input_events=s.input_events,
                    output_spikes=stats.layer_spikes_per_image(s.name),
                )
                for s in layer_stats
            ]
        else:
            spikes_per_image = 0.0
        return SimulationReport(
            config_name=self.config.name,
            scheme_name=self.config.scheme.name,
            timesteps=timesteps,
            samples=samples,
            layers=layer_stats,
            resources=resources,
            utilization=self._resource_estimator.utilization(resources),
            power=power,
            energy=energy,
            total_spikes_per_image=spikes_per_image,
        )
