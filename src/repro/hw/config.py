"""Accelerator configurations.

The paper evaluates three hardware points per dataset (Sec. V-A):

* ``LW`` -- the lightweight baseline: the smallest per-layer neural-core
  allocation that balances layer-wise execution latency,
* ``perf2`` / ``perf4`` -- the same allocation scaled by 2x and 4x.

An allocation is a tuple with one entry per weight-bearing layer; entry 0
is the dense core's systolic *row* count (the input layer), the remaining
entries are sparse-core neural-core (NC) counts. The published LW tuples
and the Table I allocation are reproduced below as calibration anchors;
:mod:`repro.workload` can derive fresh allocations for any network.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Sequence, Tuple

from repro.errors import ConfigError
from repro.hw.device import FpgaDevice, XCVU13P
from repro.quant.schemes import FP32, QuantScheme

#: Published lightweight allocations (Fig. 4 caption), one entry per layer:
#: (conv1_1 dense rows, conv1_2, conv2_1, conv2_2, conv3_1, conv3_2,
#:  conv3_3, fc1, fc2).
PAPER_LW_ALLOCATIONS: Dict[str, Tuple[int, ...]] = {
    "svhn": (1, 7, 1, 8, 2, 4, 14, 1, 2),
    "cifar10": (1, 8, 4, 18, 6, 6, 20, 2, 1),
    "cifar100": (1, 7, 3, 12, 4, 18, 16, 4, 1),
}

#: The CIFAR100 allocation used for Table I (Sec. V-B), described there as
#: the most balanced execution profile (a perf2-class configuration).
PAPER_TABLE1_ALLOCATION: Tuple[int, ...] = (1, 28, 12, 54, 16, 72, 70, 19, 4)

#: Layer overheads the paper reports for that allocation (percent of
#: total execution time, same layer order).
PAPER_TABLE1_OVERHEADS: Tuple[float, ...] = (
    0.9, 13.4, 13.6, 13.8, 12.8, 12.3, 12.9, 15.6, 4.8,
)


@dataclass(frozen=True)
class AcceleratorConfig:
    """A complete hardware operating point.

    Attributes:
        name: label ('lw', 'perf2', 'perf4', or custom).
        allocation: per-layer core counts; entry 0 = dense-core rows,
            the rest = sparse-core NC counts (execution order).
        clock_hz: fabric clock (paper: 100 MHz).
        scheme: weight precision the datapaths are built for.
        compression_chunk_bits: ECU priority-encoder width n (bits
            scanned per cycle during spike-train compression).
        dense_pe_columns: PEs per dense-core row; 27 = 3 input channels x
            3x3 filter, the paper's weight-stationary choice.
        clock_gating: MSB-partition memory clock gating (Sec. IV-C).
        device: target FPGA.
        use_dense_core: False models the rate-coding mode where the dense
            core is switched off and the input layer runs on sparse cores
            (Table II methodology).
    """

    name: str
    allocation: Tuple[int, ...]
    clock_hz: float = 100e6
    scheme: QuantScheme = FP32
    compression_chunk_bits: int = 32
    dense_pe_columns: int = 27
    clock_gating: bool = True
    device: FpgaDevice = field(default=XCVU13P)
    use_dense_core: bool = True

    def __post_init__(self) -> None:
        if len(self.allocation) < 2:
            raise ConfigError(
                f"allocation needs >= 2 layers, got {self.allocation}"
            )
        if any(int(v) < 1 for v in self.allocation):
            raise ConfigError(
                f"allocation entries must be >= 1, got {self.allocation}"
            )
        if self.clock_hz <= 0:
            raise ConfigError(f"clock must be positive, got {self.clock_hz}")
        if self.compression_chunk_bits < 1:
            raise ConfigError(
                f"compression chunk width must be >= 1, got "
                f"{self.compression_chunk_bits}"
            )
        object.__setattr__(self, "allocation", tuple(int(v) for v in self.allocation))

    @property
    def dense_rows(self) -> int:
        return self.allocation[0]

    @property
    def sparse_ncs(self) -> Tuple[int, ...]:
        return self.allocation[1:]

    @property
    def total_ncs(self) -> int:
        return sum(self.allocation[1:])

    def scaled(self, factor: int, name: str = "") -> "AcceleratorConfig":
        """Scale every core count by an integer factor (perf2 = x2 ...)."""
        if factor < 1:
            raise ConfigError(f"scale factor must be >= 1, got {factor}")
        allocation = tuple(v * factor for v in self.allocation)
        return replace(self, name=name or f"{self.name}x{factor}", allocation=allocation)

    def with_scheme(self, scheme: QuantScheme) -> "AcceleratorConfig":
        return replace(self, scheme=scheme)

    def layer_cores(self, index: int) -> int:
        """Core count for compute-layer ``index`` (0 = input layer)."""
        try:
            return self.allocation[index]
        except IndexError:
            raise ConfigError(
                f"config {self.name!r} has {len(self.allocation)} layers, "
                f"asked for index {index}"
            ) from None


def lw_config(
    dataset: str,
    scheme: QuantScheme = FP32,
    allocation: Sequence[int] = None,
    **overrides,
) -> AcceleratorConfig:
    """The paper's LW configuration for a dataset (or a custom allocation)."""
    if allocation is None:
        try:
            allocation = PAPER_LW_ALLOCATIONS[dataset]
        except KeyError:
            known = ", ".join(sorted(PAPER_LW_ALLOCATIONS))
            raise ConfigError(
                f"no published LW allocation for {dataset!r} (known: {known}); "
                "pass allocation= explicitly or derive one with repro.workload"
            ) from None
    return AcceleratorConfig(
        name="lw", allocation=tuple(allocation), scheme=scheme, **overrides
    )


def perf_config(
    dataset: str,
    factor: int,
    scheme: QuantScheme = FP32,
    allocation: Sequence[int] = None,
    **overrides,
) -> AcceleratorConfig:
    """perf2 / perf4: the LW allocation scaled by ``factor``."""
    base = lw_config(dataset, scheme=scheme, allocation=allocation, **overrides)
    return base.scaled(factor, name=f"perf{factor}")
