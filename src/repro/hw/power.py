"""Power model: structural dynamic power + static power.

Per-layer dynamic power is a linear resource-activity model,

    P = p_lut * LUT_logic + p_lutram * LUT_mem + p_ff * FF
        + p_bram * BRAM + p_uram * URAM,

scaled linearly with clock frequency (reference 100 MHz). Memory
coefficients assume the MSB-partition clock gating of Sec. IV-C is ON --
only the active region receives clocks; disabling gating multiplies
memory power by :data:`GATING_OFF_PENALTY`.

Coefficients were calibrated against Table I (per-layer dynamic power for
both precisions): the model reproduces the int4 total within ~10% and the
fp32 total within ~15%, and -- the property the paper's Fig. 4 depends on
-- an fp32/int4 power ratio close to the reported 2.82x.

Static power in the paper is essentially device-dominated (3.13 W int4 vs
3.22 W fp32); we model it as a base plus a small utilization term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hw.config import AcceleratorConfig
from repro.hw.resources import ResourceEstimate

#: Dynamic power coefficients at 100 MHz (Watt per unit resource).
P_LUT_LOGIC = 7.5e-6
P_LUTRAM = 0.35e-6  # clock-gated distributed-RAM storage
P_FF = 5.0e-6
P_BRAM = 0.65e-3
P_URAM = 0.65e-3
#: Memory power multiplier when MSB-partition clock gating is disabled.
GATING_OFF_PENALTY = 1.8
#: Static power: base + coefficient * LUT utilization fraction.
STATIC_BASE_W = 3.10
STATIC_LUT_COEF_W = 0.25
#: Reference clock the coefficients were calibrated at.
REFERENCE_CLOCK_HZ = 100e6


@dataclass(frozen=True)
class LayerPower:
    """Dynamic power of one layer (Watt, at the configured clock)."""

    name: str
    logic_w: float
    memory_w: float

    @property
    def total_w(self) -> float:
        return self.logic_w + self.memory_w


@dataclass(frozen=True)
class PowerReport:
    """Design-level power figures."""

    layers: List[LayerPower]
    static_w: float

    @property
    def dynamic_w(self) -> float:
        return sum(layer.total_w for layer in self.layers)

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.static_w

    def by_name(self) -> Dict[str, LayerPower]:
        return {layer.name: layer for layer in self.layers}


class PowerModel:
    """Turns a resource estimate into per-layer power figures."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config

    def estimate(self, resources: ResourceEstimate) -> PowerReport:
        clock_scale = self.config.clock_hz / REFERENCE_CLOCK_HZ
        gate = 1.0 if self.config.clock_gating else GATING_OFF_PENALTY
        layers: List[LayerPower] = []
        for layer in resources.layers:
            lut_mem = layer.memory.lutram_luts
            lut_logic = max(0.0, layer.luts - lut_mem)
            logic = (lut_logic * P_LUT_LOGIC + layer.ffs * P_FF) * clock_scale
            memory = (
                lut_mem * P_LUTRAM
                + layer.bram * P_BRAM
                + layer.uram * P_URAM
            ) * clock_scale * gate
            layers.append(
                LayerPower(name=layer.name, logic_w=logic, memory_w=memory)
            )
        lut_util = resources.total_luts / self.config.device.luts
        static = STATIC_BASE_W + STATIC_LUT_COEF_W * lut_util
        return PowerReport(layers=layers, static_w=static)
