"""Per-layer FPGA resource estimation (LUT / FF / BRAM / URAM).

Logic cost is linear in the core count with per-precision coefficients
calibrated against Table I of the paper (least-squares over its eight
layer rows, per precision):

* sparse layer logic: ``base + per_nc * ncs`` for both LUTs and FFs --
  the base covers the ECU (compression + address generation state
  machines), the slope one neural core's accumulate/activate datapath
  (float units for fp32, shift-and-add de-quantizers for int4);
* dense core logic: per-PE MAC cost times the 27-PE column times rows,
  plus flip-flop image buffers.

Memory cost comes from :mod:`repro.hw.memory`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ConfigError, HardwareModelError
from repro.hw.config import AcceleratorConfig
from repro.hw.memory import MemoryPlan, plan_layer_memory
from repro.quant.convert import DeployableNetwork
from repro.quant.schemes import QuantScheme

# Calibrated logic coefficients (Table I least-squares, see module doc).
_SPARSE_LUT_BASE = {"int": 900.0, "fp32": 4800.0}
_SPARSE_LUT_PER_NC = {"int": 67.0, "fp32": 548.0}
_SPARSE_FF_BASE = {"int": 1200.0, "fp32": 3900.0}
_SPARSE_FF_PER_NC = {"int": 71.0, "fp32": 114.0}
_DENSE_LUT_PER_PE = {"int": 70.0, "fp32": 430.0}
_DENSE_FF_PER_PE = {"int": 70.0, "fp32": 70.0}
#: Image-buffer flip-flops per input pixel column (staggering registers).
_DENSE_BUFFER_FF_PER_PIXEL = 1.0


def _precision_key(scheme: QuantScheme) -> str:
    return "fp32" if scheme.is_float else "int"


@dataclass(frozen=True)
class LayerResources:
    """Resource bundle for one layer."""

    name: str
    luts: float
    ffs: float
    bram: float
    uram: float
    memory: MemoryPlan
    cores: int

    def scaled_sum(self, other: "LayerResources") -> "LayerResources":
        raise NotImplementedError  # totals are built in ResourceEstimate


@dataclass(frozen=True)
class ResourceEstimate:
    """Whole-design estimate with per-layer breakdown."""

    layers: List[LayerResources]
    extra_luts: float  # top-level interconnect / control share
    extra_ffs: float

    @property
    def total_luts(self) -> float:
        return sum(layer.luts for layer in self.layers) + self.extra_luts

    @property
    def total_ffs(self) -> float:
        return sum(layer.ffs for layer in self.layers) + self.extra_ffs

    @property
    def total_bram(self) -> float:
        return sum(layer.bram for layer in self.layers)

    @property
    def total_uram(self) -> float:
        return sum(layer.uram for layer in self.layers)

    def by_name(self) -> Dict[str, LayerResources]:
        return {layer.name: layer for layer in self.layers}


class ResourceEstimator:
    """Estimates a deployable network's footprint under a configuration."""

    #: top-level infrastructure as a fraction of per-layer logic
    #: (Table I's per-layer LUTs sum to ~40K of the 110K int4 total).
    INFRASTRUCTURE_FACTOR = 0.35

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config

    def estimate(
        self, network: DeployableNetwork, timesteps: int
    ) -> ResourceEstimate:
        """Per-layer + total resources for ``network`` on this config."""
        layers = network.layers
        if len(layers) != len(self.config.allocation):
            raise ConfigError(
                f"config {self.config.name!r} allocates "
                f"{len(self.config.allocation)} layers but the network has "
                f"{len(layers)}"
            )
        scheme = self.config.scheme
        key = _precision_key(scheme)
        results: List[LayerResources] = []
        block = 1
        for index, layer in enumerate(layers):
            cores = self.config.allocation[index]
            dense = (
                index == 0
                and self.config.use_dense_core
                and layer.is_input_layer
            )
            out_spatial = (
                int(layer.output_shape[1] * layer.output_shape[2])
                if layer.kind == "conv"
                else 1
            )
            plan = plan_layer_memory(
                kind=layer.kind,
                weight_count=layer.weight_count + layer.bias_q.size,
                scheme=scheme,
                nc_count=cores,
                out_spatial=out_spatial,
                out_channels=layer.out_channels,
                timesteps=timesteps,
                is_input_layer=dense,
                block_index=block,
            )
            if dense:
                pes = self.config.dense_pe_columns * cores
                luts = pes * _DENSE_LUT_PER_PE[key]
                in_c, in_h, in_w = layer.input_shape
                ffs = (
                    pes * _DENSE_FF_PER_PE[key]
                    + in_c * in_w * _DENSE_BUFFER_FF_PER_PIXEL * in_h
                )
            else:
                luts = _SPARSE_LUT_BASE[key] + cores * _SPARSE_LUT_PER_NC[key]
                ffs = _SPARSE_FF_BASE[key] + cores * _SPARSE_FF_PER_NC[key]
            luts += plan.lutram_luts
            results.append(
                LayerResources(
                    name=layer.name,
                    luts=luts,
                    ffs=ffs,
                    bram=plan.total_bram,
                    uram=plan.total_uram,
                    memory=plan,
                    cores=cores,
                )
            )
            if layer.pool_after > 1:
                block += 1
        logic_luts = sum(r.luts - r.memory.lutram_luts for r in results)
        logic_ffs = sum(r.ffs for r in results)
        return ResourceEstimate(
            layers=results,
            extra_luts=logic_luts * self.INFRASTRUCTURE_FACTOR,
            extra_ffs=logic_ffs * self.INFRASTRUCTURE_FACTOR,
        )

    def utilization(
        self, estimate: ResourceEstimate
    ) -> Dict[str, float]:
        """Fractional device utilization of an estimate."""
        return self.config.device.utilization(
            estimate.total_luts,
            estimate.total_ffs,
            estimate.total_bram,
            estimate.total_uram,
        )

    def check_fit(self, estimate: ResourceEstimate) -> None:
        """Raise if the estimate exceeds the target device."""
        self.config.device.check_fit(
            estimate.total_luts,
            estimate.total_ffs,
            estimate.total_bram,
            estimate.total_uram,
        )
