"""Dense core model: 27-PE weight-stationary systolic array (Sec. IV-A).

The dense core exists because direct coding feeds the *input layer* raw
analog frames: there is no sparsity to exploit, so an event-driven core
would waste its compression machinery. Instead a systolic array with a
fixed column of 27 PEs (3 input channels x 3x3 filter taps, weight
stationary) streams image pixels; each of the ``rows`` rows accumulates
one output feature map at a time and tiles across output channels.

The model has two faces:

* :meth:`DenseCoreModel.run_layer` -- an operational simulation that
  produces membrane potentials in the exact order the array emits them
  (one per cycle per row after pipeline fill) plus the cycle count;
* :meth:`DenseCoreModel.layer_cycles` -- the closed-form count used at
  paper scale, ``tiles * (OH*OW + fill) * passes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Tuple

import numpy as np

from repro.errors import HardwareModelError
from repro.tensor.ops import im2col


@dataclass(frozen=True)
class DenseLayerTiming:
    """Cycle breakdown of one dense-core layer execution (one timestep)."""

    tiles: int  # output-channel tiles processed sequentially
    cycles_per_tile: int
    fill_cycles: int  # pipeline fill paid once per tile
    total_cycles: int
    passes: int  # extra passes when Cin*K*K exceeds the PE column


class DenseCoreModel:
    """Timing + functional model of the weight-stationary dense core.

    Args:
        rows: parameterised row count (the allocation's entry 0); each
            row owns one output channel per tile.
        pe_columns: PEs per row; the paper fixes 27 = 3 channels x 9 taps.
    """

    def __init__(self, rows: int, pe_columns: int = 27) -> None:
        if rows < 1:
            raise HardwareModelError(f"dense core needs >= 1 row, got {rows}")
        if pe_columns < 1:
            raise HardwareModelError(
                f"dense core needs >= 1 PE column, got {pe_columns}"
            )
        self.rows = rows
        self.pe_columns = pe_columns

    # ------------------------------------------------------------------
    # Analytic timing
    # ------------------------------------------------------------------
    def fill_cycles(self) -> int:
        """Pipeline fill: the staggering shift registers delay the deepest
        input by ``pe_columns`` cycles and partial sums ripple across the
        column, so first valid output appears after ~2 x column depth."""
        return 2 * self.pe_columns

    def layer_cycles(
        self,
        out_channels: int,
        out_height: int,
        out_width: int,
        in_channels: int,
        kernel: int,
    ) -> DenseLayerTiming:
        """Closed-form cycles for one frame (one timestep)."""
        taps = in_channels * kernel * kernel
        passes = max(1, ceil(taps / self.pe_columns))
        tiles = ceil(out_channels / self.rows)
        pixels = out_height * out_width
        fill = self.fill_cycles()
        per_tile = pixels * passes + fill
        return DenseLayerTiming(
            tiles=tiles,
            cycles_per_tile=per_tile,
            fill_cycles=fill,
            total_cycles=tiles * per_tile,
            passes=passes,
        )

    # ------------------------------------------------------------------
    # Operational simulation
    # ------------------------------------------------------------------
    def run_layer(
        self,
        frame: np.ndarray,
        weight: np.ndarray,
        bias: np.ndarray,
        padding: int = 1,
    ) -> Tuple[np.ndarray, DenseLayerTiming]:
        """Stream one frame through the array.

        Emulates the dataflow: for every output-channel tile, the
        ``rows`` rows hold their filters stationary while pixels stream
        top-down and partial sums move left-to-right; each row emits one
        membrane potential per cycle. Functionally this is the 'same'
        convolution, produced in (tile, pixel) raster order.

        Args:
            frame: (Cin, H, W) analog frame.
            weight: (Cout, Cin, K, K) filters.
            bias: (Cout,) filter biases (added by the Activ unit).

        Returns:
            (membrane, timing): membrane is (Cout, OH, OW) float32.
        """
        if frame.ndim != 3:
            raise HardwareModelError(f"frame must be (C, H, W), got {frame.shape}")
        cout, cin, kh, kw = weight.shape
        if frame.shape[0] != cin:
            raise HardwareModelError(
                f"frame channels {frame.shape[0]} != weight channels {cin}"
            )
        if kh != kw:
            raise HardwareModelError(f"kernel must be square, got {kh}x{kw}")
        h, w = frame.shape[1:]
        oh = h + 2 * padding - kh + 1
        ow = w + 2 * padding - kw + 1
        cols = im2col(frame[None], (kh, kw), 1, padding)[0]  # (Cin*K*K, OH*OW)
        membrane = np.empty((cout, oh * ow), dtype=np.float32)
        tiles = ceil(cout / self.rows)
        for tile in range(tiles):
            start = tile * self.rows
            stop = min(start + self.rows, cout)
            # Rows within the tile run in lockstep: each holds one output
            # channel's 27 weights and MACs the same streamed pixels.
            wmat = weight[start:stop].reshape(stop - start, -1)
            membrane[start:stop] = wmat @ cols + bias[start:stop, None]
        timing = self.layer_cycles(cout, oh, ow, cin, kh)
        return membrane.reshape(cout, oh, ow), timing

    def __repr__(self) -> str:
        return f"DenseCoreModel(rows={self.rows}, pe_columns={self.pe_columns})"
