"""Energy accounting (Sec. V-C).

The paper computes energy per image by summing per-layer energy: each
layer burns its dynamic power for the time it is busy on that image,

    E_image = sum_l P_dyn(l) * t_busy(l),   t_busy(l) = cycles(l) / f.

Static energy is reported separately (it depends on deployment duty
cycle, not per-image work) -- consistent with the paper, whose Fig. 4 /
Table II numbers are explained by dynamic power alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import HardwareModelError


@dataclass(frozen=True)
class LayerEnergy:
    """Per-image energy of one layer."""

    name: str
    cycles: float
    busy_seconds: float
    dynamic_power_w: float

    @property
    def energy_mj(self) -> float:
        return self.dynamic_power_w * self.busy_seconds * 1e3


@dataclass(frozen=True)
class EnergyReport:
    """Per-image energy breakdown."""

    layers: List[LayerEnergy]
    clock_hz: float
    static_power_w: float

    @property
    def total_energy_mj(self) -> float:
        return sum(layer.energy_mj for layer in self.layers)

    @property
    def latency_ms(self) -> float:
        """Single-image latency: layers execute back to back."""
        return sum(layer.busy_seconds for layer in self.layers) * 1e3

    @property
    def bottleneck_cycles(self) -> float:
        return max(layer.cycles for layer in self.layers)

    @property
    def throughput_fps(self) -> float:
        """Pipelined throughput: the slowest layer-stage sets the rate."""
        return self.clock_hz / self.bottleneck_cycles

    @property
    def static_energy_mj(self) -> float:
        """Static energy across one image's latency (for reference)."""
        return self.static_power_w * (self.latency_ms / 1e3) * 1e3

    def by_name(self) -> Dict[str, LayerEnergy]:
        return {layer.name: layer for layer in self.layers}

    def layer_overheads(self) -> Dict[str, float]:
        """Each layer's share of total execution time, in percent -- the
        balance metric the partitioner optimises (Sec. V-B)."""
        total = sum(layer.busy_seconds for layer in self.layers)
        if total <= 0:
            raise HardwareModelError("energy report has zero total time")
        return {
            layer.name: 100.0 * layer.busy_seconds / total
            for layer in self.layers
        }


def build_energy_report(
    names: List[str],
    cycles: List[float],
    dynamic_power_w: List[float],
    clock_hz: float,
    static_power_w: float,
) -> EnergyReport:
    """Assemble an :class:`EnergyReport` from parallel per-layer lists."""
    if not (len(names) == len(cycles) == len(dynamic_power_w)):
        raise HardwareModelError(
            "names, cycles and power lists must have equal length"
        )
    if clock_hz <= 0:
        raise HardwareModelError(f"clock must be positive, got {clock_hz}")
    layers = [
        LayerEnergy(
            name=name,
            cycles=cyc,
            busy_seconds=cyc / clock_hz,
            dynamic_power_w=power,
        )
        for name, cyc, power in zip(names, cycles, dynamic_power_w)
    ]
    return EnergyReport(
        layers=layers, clock_hz=clock_hz, static_power_w=static_power_w
    )
