"""Deterministic fault injection for pooled execution (chaos harness).

See :mod:`repro.faults.plan` for the plan grammar and injection seam.
"""

from repro.faults.plan import (  # noqa: F401
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    active_fault_spec,
    in_worker_process,
    mark_worker_process,
    parse_fault_plan,
)

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultSpec",
    "active_fault_spec",
    "in_worker_process",
    "mark_worker_process",
    "parse_fault_plan",
]
