"""Deterministic fault plans, injected at the pool seam.

PR 7's fault tests monkeypatched executors and SIGKILL'd live workers by
hand -- effective, but ad-hoc: every failure mode needed bespoke test
plumbing, and none of it could be replayed outside a test process. This
module turns those faults into *data*: a fault plan is a small spec
string (usually shipped through ``REPRO_FAULT_PLAN``) describing which
``(task index, attempt)`` coordinates misbehave and how. The retry layer
(:mod:`repro.parallel.retry`) tags every pooled task with its index and
attempt, and the worker-side cell wrapper consults the plan *inside the
worker process* before and after running the real cell. Because the plan
keys on coordinates rather than wall-clock or pids, a CI run replays the
exact same faults every time -- chaos testing without the chaos.

Plan grammar
------------

A spec is a comma-separated list of entries::

    seed=N                     # seed of the probabilistic entries (default 0)
    KIND@TASK                  # fault task TASK on attempt 0
    KIND@TASK:ATTEMPT          # fault task TASK on attempt ATTEMPT
    KIND@TASK:ATTEMPT~SECONDS  # with a duration (wedge / slow)
    KIND%PROB                  # fault any (task, attempt) with probability PROB
    KIND%PROB~SECONDS          # probabilistic, with a duration

with ``KIND`` one of:

* ``crash`` -- the worker SIGKILLs itself before running the cell
  (an OOM-kill / segfault stand-in; surfaces as
  :class:`~repro.errors.WorkerCrashError` in the parent);
* ``wedge`` -- the worker sleeps ``SECONDS`` (default 3600) *instead of*
  finishing promptly; recovery relies on the caller's timeout budget
  (surfaces as :class:`~repro.errors.WorkerTimeoutError`);
* ``slow`` -- the worker sleeps ``SECONDS`` (default 0.2) and then runs
  the cell normally (a slow-start / cold-cache stand-in);
* ``corrupt`` -- the cell runs normally but its result is deterministically
  mutated before returning (a silent-corruption stand-in; exists so
  byte-compare gates can prove they would catch it).

Probabilistic entries draw from the counter stream
``counter_rng(seed, task, attempt, kind)`` (:mod:`repro.utils.rng`), so
whether a given coordinate faults is a pure function of the plan -- the
same plan fires the same faults at any worker count, shard geometry or
execution order.

Faults are only ever applied inside real worker processes
(:func:`mark_worker_process` is called by the pool bootstraps); the
serial fallback and the circuit breaker's inline degraded mode execute
cells in the parent, where a ``crash`` fault would kill the caller
itself, so injection is skipped there by design.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import FaultPlanError

# Historical home of these names; the env read moved to the layer's
# config module (rule P101) and both stay importable from here.
from repro.faults.config import (  # noqa: F401
    FAULT_PLAN_ENV,
    active_fault_spec,
)

#: Fault kinds, in the order that keys their probabilistic counter
#: streams (appending is fine; reordering would change which coordinates
#: existing probabilistic plans fire on).
KINDS = ("crash", "wedge", "slow", "corrupt")

_DEFAULT_SECONDS = {"wedge": 3600.0, "slow": 0.2}

_IN_WORKER = False  # repro: lint-ok[P102] per-process bootstrap flag; set once by the pool initializer


def mark_worker_process() -> None:
    """Record that this process is a pool worker (called by bootstraps).

    Only marked processes apply fault plans: a ``crash`` fault executed
    in the parent (serial fallback, breaker degraded mode) would kill
    the caller rather than simulate a worker death.
    """
    global _IN_WORKER
    _IN_WORKER = True


def in_worker_process() -> bool:
    """Whether this process was bootstrapped as a pool worker."""
    return _IN_WORKER


@dataclass(frozen=True)
class FaultSpec:
    """One plan entry: a fault kind bound to coordinates or a probability."""

    kind: str
    task: Optional[int] = None  # None => probabilistic over all tasks
    attempt: int = 0
    seconds: Optional[float] = None
    probability: Optional[float] = None

    def matches(self, seed: int, task: int, attempt: int) -> bool:
        if self.task is not None:
            return self.task == task and self.attempt == attempt
        from repro.utils.rng import counter_rng

        kind_index = KINDS.index(self.kind)
        draw = float(counter_rng(seed, task, attempt, kind_index).random())
        return draw < float(self.probability or 0.0)

    def duration(self) -> float:
        if self.seconds is not None:
            return self.seconds
        return _DEFAULT_SECONDS.get(self.kind, 0.0)


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, validated fault plan (see the module docstring grammar)."""

    seed: int
    entries: Tuple[FaultSpec, ...]

    def faults_for(self, task: int, attempt: int) -> List[FaultSpec]:
        """The entries that fire at ``(task, attempt)``, in plan order."""
        return [
            entry
            for entry in self.entries
            if entry.matches(self.seed, task, attempt)
        ]

    def apply_before(self, task: int, attempt: int) -> None:
        """Apply pre-cell faults (crash / wedge / slow) at a coordinate.

        Runs in the worker process, immediately before the real cell.
        ``crash`` never returns; ``wedge`` sleeps out the caller's
        budget; ``slow`` delays and falls through to the cell.
        """
        for entry in self.faults_for(task, attempt):
            if entry.kind == "crash":  # pragma: no cover - kills the worker
                os.kill(os.getpid(), signal.SIGKILL)
            elif entry.kind in ("wedge", "slow"):
                time.sleep(entry.duration())

    def apply_after(self, task: int, attempt: int, result):
        """Apply post-cell faults (corrupt) to the cell's result."""
        for entry in self.faults_for(task, attempt):
            if entry.kind == "corrupt":
                result = _corrupt_result(result)
        return result


def _corrupt_result(result):
    """Deterministically mutate a cell result (silent-corruption model).

    Handles the result shapes pooled cells actually return -- objects
    carrying a ``logits`` array (shard forwards), bare numpy arrays, and
    plain numbers -- by perturbing one value; anything else is replaced
    wholesale with a marker string (still a changed byte stream, which
    is all a corruption fault needs to be).
    """
    import numpy as np

    logits = getattr(result, "logits", None)
    if logits is not None and hasattr(logits, "flat"):
        corrupted = np.array(logits, copy=True)
        corrupted.flat[0] += 1.0
        result.logits = corrupted
        return result
    if isinstance(result, np.ndarray):
        corrupted = np.array(result, copy=True)
        if corrupted.size:
            corrupted.flat[0] += 1
        return corrupted
    if isinstance(result, (int, float)):
        return result + 1
    return "<corrupted-by-fault-plan>"


def _parse_entry(entry: str) -> FaultSpec:
    seconds = None
    if "~" in entry:
        entry, _, raw_seconds = entry.partition("~")
        try:
            seconds = float(raw_seconds)
        except ValueError:
            raise FaultPlanError(
                f"fault-plan duration must be a number, got {raw_seconds!r}"
            )
        if seconds < 0:
            raise FaultPlanError(
                f"fault-plan duration must be >= 0, got {seconds}"
            )
    if "@" in entry:
        kind, _, coords = entry.partition("@")
        attempt = 0
        task_part, _, attempt_part = coords.partition(":")
        try:
            task = int(task_part)
            if attempt_part:
                attempt = int(attempt_part)
        except ValueError:
            raise FaultPlanError(
                f"fault-plan coordinates must be integers, got {coords!r}"
            )
        if task < 0 or attempt < 0:
            raise FaultPlanError(
                f"fault-plan coordinates must be >= 0, got {coords!r}"
            )
        spec = FaultSpec(
            kind=kind.strip(), task=task, attempt=attempt, seconds=seconds
        )
    elif "%" in entry:
        kind, _, raw_prob = entry.partition("%")
        try:
            probability = float(raw_prob)
        except ValueError:
            raise FaultPlanError(
                f"fault-plan probability must be a number, got {raw_prob!r}"
            )
        if not 0.0 <= probability <= 1.0:
            raise FaultPlanError(
                f"fault-plan probability must be in [0, 1], got {probability}"
            )
        spec = FaultSpec(
            kind=kind.strip(), probability=probability, seconds=seconds
        )
    else:
        raise FaultPlanError(
            f"unrecognised fault-plan entry {entry!r} "
            "(expected KIND@TASK[:ATTEMPT][~SECONDS], KIND%PROB[~SECONDS] "
            "or seed=N)"
        )
    if spec.kind not in KINDS:
        raise FaultPlanError(
            f"unknown fault kind {spec.kind!r} (expected one of {KINDS})"
        )
    return spec


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse and validate a plan spec; :class:`FaultPlanError` on nonsense."""
    seed = 0
    entries: List[FaultSpec] = []
    for raw in spec.split(","):
        raw = raw.strip()
        if not raw:
            continue
        if raw.startswith("seed="):
            try:
                seed = int(raw[len("seed="):])
            except ValueError:
                raise FaultPlanError(
                    f"fault-plan seed must be an integer, got {raw!r}"
                )
            continue
        entries.append(_parse_entry(raw))
    if not entries:
        raise FaultPlanError(
            f"fault plan {spec!r} contains no fault entries"
        )
    return FaultPlan(seed=seed, entries=tuple(entries))


_PLAN_CACHE: Dict[str, FaultPlan] = {}  # repro: lint-ok[P102] per-process parse cache keyed by spec text; identical in every process


def cached_plan(spec: str) -> FaultPlan:
    """Parse-once cache for the worker-side hot path (specs are tiny)."""
    plan = _PLAN_CACHE.get(spec)
    if plan is None:
        plan = parse_fault_plan(spec)
        _PLAN_CACHE[spec] = plan
    return plan
