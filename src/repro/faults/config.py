"""Environment resolution for the fault-injection layer.

The single module in this package allowed to read ``os.environ`` (rule
P101, see ``docs/LINTING.md``). The plan *grammar* lives in
:mod:`repro.faults.plan`; this module only answers "is a plan active,
and what is its spec string" -- the one ambient input the chaos harness
takes.
"""

from __future__ import annotations

import os
from typing import Optional

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


def active_fault_spec() -> Optional[str]:
    """The ``REPRO_FAULT_PLAN`` spec string, or ``None`` when unset/empty."""
    spec = os.environ.get(FAULT_PLAN_ENV, "").strip()
    return spec or None
