"""Sharded, process-parallel evaluation and sweep execution.

The paper's design-space study is embarrassingly parallel -- many
independent (quantization scheme, sparsity) cells, and within each cell
a batch of independent images -- yet the seed reproduction ran every
experiment as one fused loop on one core. This package is the subsystem
that spreads that work across worker processes without ever changing a
result:

* :mod:`repro.parallel.config` -- worker-count resolution
  (``REPRO_WORKERS`` env var, ``workers_override`` scoping, explicit
  arguments) with ``REPRO_WORKERS=1`` as the universal serial fallback.
* :mod:`repro.parallel.pool` -- :func:`run_tasks`, the deterministic
  process-pool executor: module-level cell functions mapped over payload
  lists, results always in payload order, workers bootstrapped with the
  parent's runtime configuration and ``REPRO_WORKERS=1`` (no nested
  pools). Worker processes persist across the cells they execute, so
  process-wide caches -- conv geometry, BLAS-fold calibration verdicts,
  loaded model artifacts -- are paid once per worker, not once per cell.
* :mod:`repro.parallel.shard` -- :func:`sharded_forward`, the batch
  sharder: contiguous deterministic shard geometry, per-shard forward
  passes, and an order-fixed merge of logits, ``SpikeStats``,
  ``LayerCounters``, input totals and recorded trains.

Worker lifecycle
----------------

``run_tasks`` starts a pool per call (workers bootstrapped once:
environment pinned, runtime config copied from the parent, caller
initializer run), hands cells out one at a time, and tears the pool down
when the map completes. Long-lived state that should out-live one call
belongs on disk -- which is exactly what the ``.plan.npz`` sidecar
(:mod:`repro.runtime.plan_io`) provides: cold-started workers load the
deployable ``.npz`` plus its serialized plan and skip both lowering and
calibration probes.

Merge semantics and determinism
-------------------------------

Merges always fold in submission/shard order (ascending sample index,
ascending payload index). Integer-valued quantities (spike counts,
dispatch counters, accuracy numerators) merge exactly; analog input
totals and dispatch counters are pure functions of the shard geometry;
and for a fixed geometry every worker count -- including the serial
fallback -- produces bit-identical merged results. ``tests/parallel/``
locks each of these guarantees down against the serial reference.
"""

from repro.parallel.config import (
    WORKERS_ENV,
    resolve_workers,
    workers_override,
)
from repro.parallel.pool import effective_workers, run_tasks
from repro.parallel.shard import (
    DEFAULT_SHARD_SIZE,
    load_deployable_with_plan,
    merge_outputs,
    shard_slices,
    sharded_forward,
)

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "WORKERS_ENV",
    "effective_workers",
    "load_deployable_with_plan",
    "merge_outputs",
    "resolve_workers",
    "run_tasks",
    "shard_slices",
    "sharded_forward",
    "workers_override",
]
