"""Sharded, process-parallel evaluation and sweep execution.

The paper's design-space study is embarrassingly parallel -- many
independent (quantization scheme, sparsity) cells, and within each cell
a batch of independent images -- yet the seed reproduction ran every
experiment as one fused loop on one core. This package is the subsystem
that spreads that work across worker processes without ever changing a
result:

* :mod:`repro.parallel.config` -- worker-count resolution
  (``REPRO_WORKERS`` env var, ``workers_override`` scoping, explicit
  arguments) with ``REPRO_WORKERS=1`` as the universal serial fallback.
* :mod:`repro.parallel.pool` -- :func:`run_tasks`, the deterministic
  process-pool executor: module-level cell functions mapped over payload
  lists, results always in payload order, workers bootstrapped with the
  parent's runtime configuration and ``REPRO_WORKERS=1`` (no nested
  pools). Worker processes persist across the cells they execute, so
  process-wide caches -- conv geometry, BLAS-fold calibration verdicts,
  loaded model artifacts -- are paid once per worker, not once per cell.
* :mod:`repro.parallel.shard` -- :func:`sharded_forward`, the batch
  sharder: contiguous deterministic shard geometry, per-shard forward
  passes, and an order-fixed merge of logits, ``SpikeStats``,
  ``LayerCounters``, input totals and recorded trains.
* :mod:`repro.parallel.service` -- :class:`WorkerService`, the
  persistent pool behind ``run_tasks``: lazily started, reused across
  calls, per-call state shipped as versioned *generations*, shut down
  via context manager / ``shutdown_worker_service`` / ``atexit``.

Worker lifecycle
----------------

Pooled ``run_tasks`` calls are served by the process-wide persistent
:class:`~repro.parallel.service.WorkerService` (disable with
``REPRO_PERSISTENT_POOL=0`` to get a pool per call): the pool starts
lazily on the first pooled call and is reused afterwards, amortizing
the ~20 ms pool startup that used to be paid per call. Workers are
bootstrapped once (environment pinned to ``REPRO_WORKERS=1``); per-call
state -- the parent's runtime config plus the caller's initializer --
travels with the tasks as a *generation* and is applied once per worker
per call. Long-lived state that should out-live one call still belongs
on disk -- which is exactly what the ``.plan.npz`` sidecar
(:mod:`repro.runtime.plan_io`) and the ``.eval.json`` evaluation cache
(:mod:`repro.experiments.evalcache`) provide: cold-started workers load
the deployable ``.npz`` plus its serialized plan and skip lowering,
calibration probes and -- with a warm evaluation cache -- whole
test-set evaluations.

Merge semantics and determinism
-------------------------------

Merges always fold in submission/shard order (ascending sample index,
ascending payload index). Integer-valued quantities (spike counts,
dispatch counters, accuracy numerators) merge exactly; analog input
totals and dispatch counters are pure functions of the shard geometry;
and for a fixed geometry every worker count -- including the serial
fallback -- produces bit-identical merged results. ``tests/parallel/``
locks each of these guarantees down against the serial reference.
"""

from repro.parallel.config import (
    WORKERS_ENV,
    resolve_workers,
    workers_override,
)
from repro.parallel.pool import effective_workers, run_tasks
from repro.parallel.retry import (
    RetryPolicy,
    resolve_retry_policy,
    retry_stats,
)
from repro.parallel.service import (
    PERSISTENT_POOL_ENV,
    START_METHOD_ENV,
    CircuitBreaker,
    WorkerService,
    persistent_pool_enabled,
    service_stats,
    shared_service,
    shutdown_worker_service,
)
from repro.parallel.shard import (
    DEFAULT_SHARD_SIZE,
    load_deployable_with_plan,
    merge_outputs,
    shard_slices,
    sharded_forward,
)

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "PERSISTENT_POOL_ENV",
    "START_METHOD_ENV",
    "WORKERS_ENV",
    "CircuitBreaker",
    "RetryPolicy",
    "WorkerService",
    "effective_workers",
    "load_deployable_with_plan",
    "merge_outputs",
    "persistent_pool_enabled",
    "resolve_retry_policy",
    "resolve_workers",
    "retry_stats",
    "run_tasks",
    "service_stats",
    "shard_slices",
    "sharded_forward",
    "shared_service",
    "shutdown_worker_service",
    "workers_override",
]
