"""Deterministic process-pool execution of independent cells.

:func:`run_tasks` is the one primitive every parallel entry point builds
on: it maps a *module-level* function over a payload list and returns
the results **in payload order**, regardless of which worker finished
first. With a resolved worker count of 1 (or a single payload) it runs
the same function inline in the calling process -- the serial fallback
that every equivalence test compares against.

Worker lifecycle
----------------

By default pooled calls are served by the process-wide persistent
:class:`~repro.parallel.service.WorkerService`: the pool starts once,
lazily, and is reused across calls, with per-call state shipped as a
versioned *generation* (see :mod:`repro.parallel.service`). With
``REPRO_PERSISTENT_POOL=0`` the pre-service behaviour returns: workers
are started once per :func:`run_tasks` call and reused for every payload
they are handed (``chunksize=1`` keeps assignment balanced). Either way
each worker observes the same bootstrap state:

* ``REPRO_WORKERS=1`` in its environment, so cells that themselves call
  parallel entry points degrade to the serial fallback instead of
  nesting pools;
* the parent's exact :class:`~repro.runtime.config.RuntimeConfig`, so a
  scoped ``runtime_overrides(...)`` in the parent governs the children
  even under a ``spawn`` start method (under ``fork`` it would be
  inherited anyway; shipping it explicitly makes both start methods
  behave identically);
* an optional caller initializer (e.g. the shard worker's model/image
  state), which runs once per worker -- per-process caches (plan
  geometry, BLAS-fold calibration verdicts) therefore warm up once and
  are reused across every cell the worker executes.

Exceptions raised by a cell propagate to the caller from ``Pool.map``
exactly as they would from the inline loop.

Fault containment
-----------------

``multiprocessing.Pool`` has a well-known failure mode: a worker that
dies abruptly (OOM kill, segfault, ``SIGKILL``) takes its in-flight
tasks with it, the pool silently respawns a replacement, and
``Pool.map`` waits forever for results that will never arrive. Every
pooled wait in this package therefore goes through
:func:`guarded_map_wait`, which polls worker liveness alongside the
result: an abnormal worker exit raises a typed
:class:`~repro.errors.WorkerCrashError` instead of hanging, and an
optional wall-clock ``timeout`` raises
:class:`~repro.errors.WorkerTimeoutError` -- the guarantees the online
serving layer (and any other long-lived caller) builds on.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
import time
from dataclasses import asdict
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import WorkerCrashError, WorkerTimeoutError
from repro.parallel.config import (
    WORKERS_ENV,
    _reset_override_for_worker,
    resolve_workers,
)
from repro.runtime.config import RuntimeConfig, runtime_config, set_runtime_config

#: How often the guarded wait re-checks worker liveness. Coarse enough
#: to cost nothing against multi-millisecond cells, fine enough that a
#: crashed worker surfaces as a typed error within ~a poll interval.
_LIVENESS_POLL_S = 0.05


def pool_start_method() -> str:
    """The start method every pool in this package uses.

    ``fork`` only on Linux (cheap: workers inherit the parent's memory,
    so initializer state costs nothing to ship); ``spawn`` everywhere
    else -- notably macOS, where forking after the Objective-C runtime /
    Accelerate BLAS initialises is unsafe and CPython itself switched
    the default to spawn.
    """
    if sys.platform.startswith("linux") and "fork" in mp.get_all_start_methods():
        return "fork"
    return "spawn"


def _bootstrap_worker(
    config_kwargs: dict,
    initializer: Optional[Callable],
    initargs: Tuple,
) -> None:  # pragma: no cover - runs inside worker processes
    os.environ[WORKERS_ENV] = "1"
    _reset_override_for_worker()
    from repro.faults import mark_worker_process

    mark_worker_process()
    set_runtime_config(RuntimeConfig(**config_kwargs))
    if initializer is not None:
        initializer(*initargs)


def _pool_members(pool) -> List:
    """The pool's current worker processes (CPython keeps them in
    ``_pool``; an empty list degrades the liveness check to a plain
    wait, never to a false crash report)."""
    return list(getattr(pool, "_pool", None) or [])


def guarded_map_wait(
    pool,
    async_result,
    timeout: Optional[float] = None,
) -> List:
    """Wait on a ``map_async`` result without trusting worker liveness.

    Polls the result at :data:`_LIVENESS_POLL_S` granularity and checks
    the pool's worker processes in between:

    * a worker with a nonzero exit code, or a worker *replaced* by the
      pool's maintenance thread (the pid set changed -- the dead
      process may already have been reaped), means in-flight tasks may
      be lost and ``Pool.map`` would wait forever; raise
      :class:`WorkerCrashError` instead.
    * a caller-supplied ``timeout`` (seconds, wall clock for the whole
      mapped call) raises :class:`WorkerTimeoutError` when exceeded.

    A cell that merely *raises* still propagates its own exception from
    ``async_result.get()``, exactly like ``Pool.map``. Callers own the
    pool teardown after a crash/timeout (terminate, not close/join --
    joining a pool with lost tasks can itself hang).
    """
    initial_pids = {p.pid for p in _pool_members(pool)}
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        async_result.wait(_LIVENESS_POLL_S)
        if async_result.ready():
            return async_result.get()
        members = _pool_members(pool)
        crashed = any(
            p.exitcode is not None and p.exitcode != 0 for p in members
        )
        replaced = (
            initial_pids and {p.pid for p in members} != initial_pids
        )
        if crashed or replaced:
            raise WorkerCrashError(
                "a pool worker process died with tasks in flight "
                "(abnormal exit; its tasks are lost). The pool is torn "
                "down; retry the call to run on a fresh pool."
            )
        if deadline is not None and time.monotonic() > deadline:
            raise WorkerTimeoutError(
                f"pooled call exceeded its {timeout:.3f}s budget; "
                "the pool is torn down"
            )


def gather_indexed(
    pool,
    submit: Callable,
    indices: Sequence[int],
    window: int,
    timeout: Optional[float] = None,
) -> Tuple[dict, set, Optional[BaseException]]:
    """Guarded per-task gather: the partial-harvest twin of
    :func:`guarded_map_wait`.

    Submits ``submit(index)`` (which must return an ``AsyncResult``) for
    each index, at most ``window`` in flight at once -- the same
    concurrency cap chunked ``map_async`` submission provides -- and
    polls completions at :data:`_LIVENESS_POLL_S` granularity with the
    same worker-liveness and deadline checks as the mapped wait.

    Unlike the mapped wait, a crash or timeout does **not** discard what
    already finished: the return value is ``(done, dispatched, error)``
    where ``done`` maps index -> result for every task that completed,
    ``dispatched`` is the set of indices that were actually handed to
    the pool (tasks still queued behind the window were provably *not*
    involved in the failure), and ``error`` is ``None`` on full success
    or the typed :class:`~repro.errors.WorkerCrashError` /
    :class:`~repro.errors.WorkerTimeoutError` otherwise. This is the
    primitive the retry layer's "re-execute only the lost shards"
    guarantee is built on. A cell that merely *raises* still propagates
    its own exception, exactly like ``Pool.map``; callers own pool
    teardown after a crash/timeout.
    """
    done: dict = {}
    dispatched: set = set()
    queue = list(indices)
    inflight: dict = {}
    initial_pids = {p.pid for p in _pool_members(pool)}
    deadline = None if timeout is None else time.monotonic() + timeout
    while queue or inflight:
        while queue and len(inflight) < window:
            index = queue.pop(0)
            inflight[index] = submit(index)
            dispatched.add(index)
        next(iter(inflight.values())).wait(_LIVENESS_POLL_S)
        for index in list(inflight):
            if inflight[index].ready():
                done[index] = inflight[index].get()
                del inflight[index]
        if not inflight and not queue:
            break
        members = _pool_members(pool)
        crashed = any(
            p.exitcode is not None and p.exitcode != 0 for p in members
        )
        replaced = (
            initial_pids and {p.pid for p in members} != initial_pids
        )
        if crashed or replaced:
            return done, dispatched, WorkerCrashError(
                "a pool worker process died with tasks in flight "
                "(abnormal exit; its tasks are lost). The pool is torn "
                "down; completed tasks kept their results and only the "
                "lost ones need re-execution."
            )
        if deadline is not None and time.monotonic() > deadline:
            return done, dispatched, WorkerTimeoutError(
                f"pooled call exceeded its {timeout:.3f}s budget; "
                "the pool is torn down. Completed tasks kept their "
                "results."
            )
    return done, dispatched, None


def run_tasks(
    fn: Callable,
    payloads: Iterable,
    workers: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: Tuple = (),
    timeout: Optional[float] = None,
    retry=None,
) -> List:
    """``[fn(p) for p in payloads]``, fanned out over worker processes.

    ``fn`` (and ``initializer``) must be module-level callables so the
    pool can pickle them by reference; payloads and results must be
    picklable. Results are returned in payload order -- submission order
    is the only ordering the subsystem ever exposes, which is what makes
    pooled runs byte-comparable with serial ones.

    Under the serial fallback the initializer runs *in the calling
    process* (that is what makes the fallback exact), so initializers
    that stash state in module globals leave it there afterwards --
    callers who cannot tolerate that (or who need the worker-only
    ``REPRO_WORKERS=1`` pinning) should special-case the single-worker
    path themselves, as :func:`repro.parallel.shard.sharded_forward`
    does.

    ``timeout`` bounds the pooled call in wall-clock seconds
    (:class:`~repro.errors.WorkerTimeoutError` on expiry); a worker that
    dies mid-call raises :class:`~repro.errors.WorkerCrashError` instead
    of hanging (see :func:`guarded_map_wait`). The serial fallback runs
    inline and therefore ignores ``timeout`` -- there is no separate
    process to abandon.

    ``retry`` (a :class:`~repro.parallel.retry.RetryPolicy`, or ``None``
    for the historical fail-the-call behaviour) routes the pooled call
    through the self-healing executor instead: a crashed or timed-out
    shard is re-executed on a recovered pool (with deterministic
    backoff) rather than failing the whole call, a task that kills its
    worker on every allowed attempt is quarantined behind a typed
    :class:`~repro.errors.PoisonTaskError` carrying the surviving
    results, and ``REPRO_FAULT_PLAN`` faults are injected at the task
    seam (see :mod:`repro.parallel.retry` and :mod:`repro.faults`).
    ``timeout`` then bounds the *whole* call, retries and backoff
    included. The serial fallback is unchanged: inline, no retries, no
    injection.
    """
    payloads = list(payloads)
    count = min(resolve_workers(workers), max(1, len(payloads)))
    if count <= 1 or len(payloads) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(payload) for payload in payloads]
    if retry is not None:
        from repro.parallel.retry import run_tasks_resilient

        return run_tasks_resilient(
            fn,
            payloads,
            count,
            initializer=initializer,
            initargs=initargs,
            timeout=timeout,
            policy=retry,
        )
    from repro.parallel.service import persistent_pool_enabled, shared_service

    if persistent_pool_enabled():
        return shared_service().run(
            fn,
            payloads,
            workers=count,
            initializer=initializer,
            initargs=initargs,
            timeout=timeout,
        )
    context = mp.get_context(pool_start_method())
    bootstrap_args = (asdict(runtime_config()), initializer, initargs)
    # The with-block tears the pool down via terminate(), which is safe
    # even after a crash left tasks unaccounted for (close+join is not).
    with context.Pool(
        processes=count,
        initializer=_bootstrap_worker,
        initargs=bootstrap_args,
    ) as pool:
        result = pool.map_async(fn, payloads, chunksize=1)
        return guarded_map_wait(pool, result, timeout=timeout)


def effective_workers(
    workers: Optional[int] = None, payload_count: Optional[int] = None
) -> int:
    """The worker count :func:`run_tasks` would actually use."""
    count = resolve_workers(workers)
    if payload_count is not None:
        count = min(count, max(1, payload_count))
    return count
