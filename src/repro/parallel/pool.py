"""Deterministic process-pool execution of independent cells.

:func:`run_tasks` is the one primitive every parallel entry point builds
on: it maps a *module-level* function over a payload list and returns
the results **in payload order**, regardless of which worker finished
first. With a resolved worker count of 1 (or a single payload) it runs
the same function inline in the calling process -- the serial fallback
that every equivalence test compares against.

Worker lifecycle
----------------

By default pooled calls are served by the process-wide persistent
:class:`~repro.parallel.service.WorkerService`: the pool starts once,
lazily, and is reused across calls, with per-call state shipped as a
versioned *generation* (see :mod:`repro.parallel.service`). With
``REPRO_PERSISTENT_POOL=0`` the pre-service behaviour returns: workers
are started once per :func:`run_tasks` call and reused for every payload
they are handed (``chunksize=1`` keeps assignment balanced). Either way
each worker observes the same bootstrap state:

* ``REPRO_WORKERS=1`` in its environment, so cells that themselves call
  parallel entry points degrade to the serial fallback instead of
  nesting pools;
* the parent's exact :class:`~repro.runtime.config.RuntimeConfig`, so a
  scoped ``runtime_overrides(...)`` in the parent governs the children
  even under a ``spawn`` start method (under ``fork`` it would be
  inherited anyway; shipping it explicitly makes both start methods
  behave identically);
* an optional caller initializer (e.g. the shard worker's model/image
  state), which runs once per worker -- per-process caches (plan
  geometry, BLAS-fold calibration verdicts) therefore warm up once and
  are reused across every cell the worker executes.

Exceptions raised by a cell propagate to the caller from ``Pool.map``
exactly as they would from the inline loop.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
from dataclasses import asdict
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.parallel.config import (
    WORKERS_ENV,
    _reset_override_for_worker,
    resolve_workers,
)
from repro.runtime.config import RuntimeConfig, runtime_config, set_runtime_config


def pool_start_method() -> str:
    """The start method every pool in this package uses.

    ``fork`` only on Linux (cheap: workers inherit the parent's memory,
    so initializer state costs nothing to ship); ``spawn`` everywhere
    else -- notably macOS, where forking after the Objective-C runtime /
    Accelerate BLAS initialises is unsafe and CPython itself switched
    the default to spawn.
    """
    if sys.platform.startswith("linux") and "fork" in mp.get_all_start_methods():
        return "fork"
    return "spawn"


def _bootstrap_worker(
    config_kwargs: dict,
    initializer: Optional[Callable],
    initargs: Tuple,
) -> None:  # pragma: no cover - runs inside worker processes
    os.environ[WORKERS_ENV] = "1"
    _reset_override_for_worker()
    set_runtime_config(RuntimeConfig(**config_kwargs))
    if initializer is not None:
        initializer(*initargs)


def run_tasks(
    fn: Callable,
    payloads: Iterable,
    workers: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: Tuple = (),
) -> List:
    """``[fn(p) for p in payloads]``, fanned out over worker processes.

    ``fn`` (and ``initializer``) must be module-level callables so the
    pool can pickle them by reference; payloads and results must be
    picklable. Results are returned in payload order -- submission order
    is the only ordering the subsystem ever exposes, which is what makes
    pooled runs byte-comparable with serial ones.

    Under the serial fallback the initializer runs *in the calling
    process* (that is what makes the fallback exact), so initializers
    that stash state in module globals leave it there afterwards --
    callers who cannot tolerate that (or who need the worker-only
    ``REPRO_WORKERS=1`` pinning) should special-case the single-worker
    path themselves, as :func:`repro.parallel.shard.sharded_forward`
    does.
    """
    payloads = list(payloads)
    count = min(resolve_workers(workers), max(1, len(payloads)))
    if count <= 1 or len(payloads) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(payload) for payload in payloads]
    from repro.parallel.service import persistent_pool_enabled, shared_service

    if persistent_pool_enabled():
        return shared_service().run(
            fn,
            payloads,
            workers=count,
            initializer=initializer,
            initargs=initargs,
        )
    context = mp.get_context(pool_start_method())
    bootstrap_args = (asdict(runtime_config()), initializer, initargs)
    with context.Pool(
        processes=count,
        initializer=_bootstrap_worker,
        initargs=bootstrap_args,
    ) as pool:
        return pool.map(fn, payloads, chunksize=1)


def effective_workers(
    workers: Optional[int] = None, payload_count: Optional[int] = None
) -> int:
    """The worker count :func:`run_tasks` would actually use."""
    count = resolve_workers(workers)
    if payload_count is not None:
        count = min(count, max(1, payload_count))
    return count
