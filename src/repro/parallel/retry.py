"""Self-healing pooled execution: retry, backoff, poison quarantine.

PR 7 gave pooled calls honest failure *detection*: a SIGKILL'd worker or
a wedged cell surfaces as a typed :class:`~repro.errors.WorkerCrashError`
/ :class:`~repro.errors.WorkerTimeoutError` instead of a hang. This
module adds *recovery*. Every shard cell in this package is a pure
function of its coordinates (the counter-stream invariant from PR 5), so
re-executing a lost shard on a fresh pool is guaranteed byte-identical
-- the only thing standing between one transient worker death and a
completed call is bookkeeping. :func:`run_tasks_resilient` is that
bookkeeping:

* tasks are submitted individually (through
  :func:`repro.parallel.pool.gather_indexed`), so a crash mid-call keeps
  every completed result and re-executes **only** the lost tasks;
* failed tasks are retried up to :attr:`RetryPolicy.max_attempts` times
  with exponential backoff whose jitter is drawn from the deterministic
  counter streams in :mod:`repro.utils.rng` -- two runs of the same
  failing workload back off identically;
* after the first failure, suspect tasks (those that were in flight
  when the pool died) are re-executed in *isolation* -- one task per
  round -- so crash attribution is exact: an innocent task that shared
  a pool with a poison one completes on its solo attempt instead of
  being blamed alongside it;
* a task that takes down its worker on ``max_attempts`` consecutive
  attempts is quarantined: the call raises a typed
  :class:`~repro.errors.PoisonTaskError` carrying the surviving partial
  results and the poison payload's fingerprint, instead of retrying
  forever;
* every task is tagged with its ``(index, attempt)`` coordinate, which
  is also the injection seam for the deterministic fault plans of
  :mod:`repro.faults` (``REPRO_FAULT_PLAN``).

The policy resolves from the environment (``REPRO_RETRY_*``), so long
sweeps get recovery without threading a policy through every caller;
``run_tasks(retry=None)`` keeps the historical fail-the-call semantics.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import pickle
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import (
    ConfigError,
    PoisonTaskError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.faults.plan import active_fault_spec, cached_plan, in_worker_process

# The env constants and reader were defined here historically; they
# moved to the layer's config module (rule P101) and stay importable.
from repro.parallel.config import (  # noqa: F401
    RETRY_BACKOFF_MAX_MS_ENV,
    RETRY_BACKOFF_MS_ENV,
    RETRY_MAX_ATTEMPTS_ENV,
    RETRY_TASK_TIMEOUT_MS_ENV,
    env_number as _env_number,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How a pooled call recovers from worker crashes and timeouts.

    ``max_attempts`` is the per-task budget: attempt 1 is the original
    execution, and a task whose worker dies on ``max_attempts``
    consecutive attempts is quarantined (``max_attempts=1`` disables
    retries while keeping per-task result harvesting and fault
    injection). ``backoff_ms * backoff_factor**(attempt-1)``, capped at
    ``backoff_max_ms``, is slept before each re-execution, scaled by a
    deterministic jitter in ``[1-jitter, 1+jitter]`` drawn from
    ``counter_rng(seed, task, attempt)`` -- reproducible, but still
    decorrelated across tasks. ``task_timeout_s`` bounds each *recovery
    round* (per-task budget), so one wedged task cannot consume the
    whole per-call ``timeout``.
    """

    max_attempts: int = 3
    backoff_ms: float = 50.0
    backoff_factor: float = 2.0
    backoff_max_ms: float = 2000.0
    jitter: float = 0.5
    seed: int = 0
    task_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"retry max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_ms < 0 or self.backoff_max_ms < 0:
            raise ConfigError("retry backoff must be >= 0 ms")
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"retry backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(
                f"retry jitter must be in [0, 1], got {self.jitter}"
            )
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ConfigError(
                f"retry task_timeout_s must be > 0, got {self.task_timeout_s}"
            )

    def backoff_delay_s(self, task: int, attempt: int) -> float:
        """Deterministic backoff before re-executing ``task`` at ``attempt``."""
        from repro.utils.rng import counter_rng

        base_ms = min(
            self.backoff_ms * self.backoff_factor ** max(0, attempt - 1),
            self.backoff_max_ms,
        )
        if base_ms <= 0:
            return 0.0
        draw = float(counter_rng(self.seed, task, attempt).random())
        scale = 1.0 + self.jitter * (2.0 * draw - 1.0)
        return base_ms * scale / 1000.0


def resolve_retry_policy(
    max_attempts: Optional[int] = None,
    task_timeout_s: Optional[float] = None,
) -> RetryPolicy:
    """The retry policy recoverable entry points use by default.

    Explicit arguments win; otherwise ``REPRO_RETRY_MAX_ATTEMPTS``
    (default 3), ``REPRO_RETRY_BACKOFF_MS`` (default 50),
    ``REPRO_RETRY_BACKOFF_MAX_MS`` (default 2000) and
    ``REPRO_RETRY_TASK_TIMEOUT_MS`` (default unset = unbounded rounds)
    fill the gaps. ``REPRO_RETRY_MAX_ATTEMPTS=1`` disables retries.
    """
    if max_attempts is None:
        max_attempts = int(_env_number(RETRY_MAX_ATTEMPTS_ENV, 3, int))
    if task_timeout_s is None:
        timeout_ms = _env_number(RETRY_TASK_TIMEOUT_MS_ENV, 0.0)
        task_timeout_s = timeout_ms / 1000.0 if timeout_ms > 0 else None
    return RetryPolicy(
        max_attempts=max_attempts,
        backoff_ms=_env_number(RETRY_BACKOFF_MS_ENV, 50.0),
        backoff_max_ms=_env_number(RETRY_BACKOFF_MAX_MS_ENV, 2000.0),
        task_timeout_s=task_timeout_s,
    )


@dataclass
class RetryStats:
    """Per-process counters of the self-healing executor."""

    calls: int = 0  # resilient pooled calls served
    retries: int = 0  # task re-executions after a crash/timeout
    recovered_calls: int = 0  # calls that saw a failure yet completed
    quarantined: int = 0  # tasks given up on (PoisonTaskError raised)

    def as_dict(self) -> Dict[str, int]:
        return {
            "calls": self.calls,
            "retries": self.retries,
            "recovered_calls": self.recovered_calls,
            "quarantined": self.quarantined,
        }


_STATS = RetryStats()  # repro: lint-ok[P102] per-process observability counters; never read by result-producing code


def retry_stats() -> RetryStats:
    """This process's self-healing counters (bench/observability surface)."""
    return _STATS


def reset_retry_stats() -> None:
    global _STATS
    _STATS = RetryStats()


def _resilient_cell(task: Tuple[Optional[str], int, int, Callable, object]):
    """Worker-side cell wrapper: fault injection at the (task, attempt) seam.

    Faults only apply inside real worker processes -- inline execution
    (serial fallback, breaker degraded mode) runs the cell untouched,
    because a ``crash`` fault in the parent would kill the caller
    instead of simulating a worker death.
    """
    spec, index, attempt, fn, payload = task
    plan = None
    if spec is not None and in_worker_process():
        plan = cached_plan(spec)
        plan.apply_before(index, attempt)
    result = fn(payload)
    if plan is not None:
        result = plan.apply_after(index, attempt, result)
    return result


def _execute_round(
    tasks: List[Tuple[int, object]],
    count: int,
    initializer: Optional[Callable],
    initargs: Tuple,
    timeout: Optional[float],
) -> Tuple[dict, set, Optional[BaseException]]:
    """One recovery round: run indexed tasks, harvesting partial results.

    Dispatches to the persistent service (which owns the circuit breaker
    and restart backoff) or, under ``REPRO_PERSISTENT_POOL=0``, to a
    dedicated per-round pool. Returns ``(done, dispatched, error)`` --
    see :func:`repro.parallel.pool.gather_indexed`.
    """
    from repro.parallel.service import persistent_pool_enabled, shared_service

    if persistent_pool_enabled():
        return shared_service().run_indexed(
            _resilient_cell,
            tasks,
            workers=count,
            initializer=initializer,
            initargs=initargs,
            timeout=timeout,
        )
    from repro.parallel.pool import (
        _bootstrap_worker,
        gather_indexed,
        pool_start_method,
    )
    from repro.runtime.config import runtime_config

    context = mp.get_context(pool_start_method())
    payload_by = dict(tasks)
    bootstrap_args = (asdict(runtime_config()), initializer, initargs)
    with context.Pool(
        processes=count,
        initializer=_bootstrap_worker,
        initargs=bootstrap_args,
    ) as pool:
        return gather_indexed(
            pool,
            lambda index: pool.apply_async(
                _resilient_cell, (payload_by[index],)
            ),
            [index for index, _ in tasks],
            window=count,
            timeout=timeout,
        )


def _payload_fingerprint(payload) -> str:
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(blob).hexdigest()


def run_tasks_resilient(
    fn: Callable,
    payloads: List,
    count: int,
    initializer: Optional[Callable] = None,
    initargs: Tuple = (),
    timeout: Optional[float] = None,
    policy: Optional[RetryPolicy] = None,
) -> List:
    """``run_tasks`` semantics with shard-level recovery (see module doc).

    ``count`` is the already-resolved worker cap (> 1 -- the serial
    fallback never routes here). ``timeout`` bounds the whole call,
    retries and backoff included; on expiry the typed error of the last
    failed round propagates.
    """
    policy = policy if policy is not None else resolve_retry_policy()
    n = len(payloads)
    spec = active_fault_spec()
    if spec is not None:
        cached_plan(spec)  # fail fast on an unparsable plan, in the parent
    deadline = None if timeout is None else time.monotonic() + timeout
    results: Dict[int, object] = {}
    attempts = [0] * n
    pending = list(range(n))
    quarantined: List[int] = []
    had_failure = False
    _STATS.calls += 1

    while True:
        runnable = []
        for index in pending:
            if attempts[index] >= policy.max_attempts:
                if index not in quarantined:
                    quarantined.append(index)
                    _STATS.quarantined += 1
            else:
                runnable.append(index)
        pending = runnable
        if not pending:
            break
        suspects = [index for index in pending if attempts[index] > 0]
        if suspects:
            # Isolation: re-execute one suspect per round so a crash is
            # attributed to exactly the task that caused it.
            batch = [suspects[0]]
        else:
            batch = pending
        _STATS.retries += sum(1 for index in batch if attempts[index] > 0)
        remaining = None if deadline is None else deadline - time.monotonic()
        if remaining is not None and remaining <= 0:
            raise WorkerTimeoutError(
                f"pooled call exhausted its {timeout:.3f}s budget with "
                f"{len(pending)} task(s) still unrecovered"
            )
        bounds = [
            value
            for value in (remaining, policy.task_timeout_s)
            if value is not None
        ]
        round_timeout = min(bounds) if bounds else None
        tasks = [
            (index, (spec, index, attempts[index], fn, payloads[index]))
            for index in batch
        ]
        done, dispatched, error = _execute_round(
            tasks,
            count=min(count, len(batch)),
            initializer=initializer,
            initargs=initargs,
            timeout=round_timeout,
        )
        results.update(done)
        pending = [index for index in pending if index not in results]
        if error is None:
            continue
        had_failure = True
        # Only tasks that actually reached a worker are suspects; tasks
        # still queued behind the submission window keep attempt 0.
        for index in batch:
            if index in dispatched and index not in results:
                attempts[index] += 1
        remaining = None if deadline is None else deadline - time.monotonic()
        if remaining is not None and remaining <= 0:
            raise error
        failed = [
            index
            for index in batch
            if index in dispatched and index not in results
        ]
        anchor = failed[0] if failed else (batch[0] if batch else 0)
        delay = policy.backoff_delay_s(anchor, attempts[anchor])
        if remaining is not None:
            delay = min(delay, max(0.0, remaining))
        if delay > 0:
            time.sleep(delay)

    if quarantined:
        ordered = [results.get(index) for index in range(n)]
        fingerprints = {
            index: _payload_fingerprint(payloads[index])
            for index in quarantined
        }
        raise PoisonTaskError(
            f"{len(quarantined)} of {n} task(s) killed their worker on "
            f"{policy.max_attempts} consecutive attempt(s) and were "
            f"quarantined (indices {sorted(quarantined)}); "
            f"{n - len(quarantined)} surviving result(s) attached",
            results=ordered,
            quarantined=quarantined,
            fingerprints=fingerprints,
            attempts={index: attempts[index] for index in quarantined},
        )
    if had_failure:
        _STATS.recovered_calls += 1
    return [results[index] for index in range(n)]
