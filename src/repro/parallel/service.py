"""Persistent worker pools: one long-lived pool, many ``run_tasks`` calls.

PR 2's executor started a fresh process pool for every :func:`run_tasks`
call, which priced pooling out of small batches: ~20 ms of pool startup
plus model/state shipping were paid per call, per worker.
:class:`WorkerService` keeps one pool alive across calls instead --
lazily started on first use, reused while the resolved worker count
stays put, resized (restarted) when it changes, and shut down cleanly
through a context manager, an explicit :meth:`WorkerService.shutdown`,
or the ``atexit`` hook guarding the process-wide shared instance.

Generations
-----------

A classic pool binds its initializer at creation, but a persistent pool
serves calls whose per-call state (model, images, encoder snapshot,
parent runtime config) differs. The service therefore versions that
state: every :meth:`WorkerService.run` call mints a new *generation* --
the parent's :class:`~repro.runtime.config.RuntimeConfig` plus the
caller's ``(initializer, initargs)``, pickled once -- and every task
carries the generation id. A worker whose last-seen generation differs
re-applies the runtime config and re-runs the initializer before
executing the cell; a worker already on the right generation runs the
cell directly. The effect is exactly the per-call pool's semantics
(state applied once per worker per call) without the per-call startup.
As a further warm-path shortcut, a call whose state pickles
byte-identically to the previous call's *reuses* the previous
generation: already-initialized workers then skip re-initialization and
keep what the initializer built (a loaded model, a warmed plan) -- the
model-shipping amortization repeated evaluations want. Initializers
must therefore establish state idempotently; cells must not mutate it
in ways a repeated identical call may not observe (every cell in this
package treats worker state as read-only).

Because generation state travels with the tasks rather than through
fork-time memory inheritance, small blobs ride inline in every task
(cheap, and workers already on the right generation ignore them), while
a blob past :data:`_INLINE_BLOB_LIMIT` -- e.g. a whole pickled model --
is spilled to a temporary file once per call and tasks carry only its
path: each worker reads the file at most once, so a large model crosses
the parent's pipe zero times and the disk once, instead of once per
task. Callers should still prefer artifact paths for long-lived state
(``sharded_forward(model_path=...)`` ships the ``.npz`` + ``.plan.npz``
location, and :func:`repro.parallel.shard.sharded_forward` switches to
slice-carrying task payloads whenever the service is active).

Pool sizing is grow-only: a call needing fewer workers than the running
pool reuses it (submissions are chunked so at most the requested count
run concurrently -- an explicit ``workers=2`` stays a concurrency cap
even on a wider pool), and only a call needing *more* workers restarts
it. Alternating small and large fan-outs therefore never thrashes pool
startup or the workers' warm per-process caches.

Start methods
-------------

The service defaults to :func:`repro.parallel.pool.pool_start_method`
(``fork`` on Linux, ``spawn`` elsewhere) but honours
``REPRO_START_METHOD`` (``fork`` | ``forkserver`` | ``spawn``).
``forkserver`` is the recommended override for long-lived services
embedded in threaded parents: workers fork from a clean server process
instead of from whatever state the parent has accumulated, at the cost
of one extra process. None of this affects results -- the service never
relies on inherited memory, so every start method computes the same
bytes (locked down by ``tests/parallel/``).

``REPRO_PERSISTENT_POOL=0`` disables the service globally;
:func:`run_tasks` then reverts to PR 2's pool-per-call executor.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing as mp
import os
import pickle
import tempfile
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError, WorkerCrashError, WorkerTimeoutError
from repro.parallel.config import (
    WORKERS_ENV,
    _reset_override_for_worker,
    resolve_workers,
)
from repro.runtime.config import RuntimeConfig, runtime_config, set_runtime_config

PERSISTENT_POOL_ENV = "REPRO_PERSISTENT_POOL"

START_METHOD_ENV = "REPRO_START_METHOD"


def persistent_pool_enabled() -> bool:
    """Whether ``run_tasks`` routes through the shared persistent pool.

    On by default; ``REPRO_PERSISTENT_POOL=0`` reverts every pooled
    entry point to the pool-per-call executor (bit-identical results,
    pool startup paid per call again).
    """
    return os.environ.get(PERSISTENT_POOL_ENV, "1") != "0"


def service_start_method() -> str:
    """Start method for service pools: env override, then the default."""
    method = os.environ.get(START_METHOD_ENV)
    if method is None:
        from repro.parallel.pool import pool_start_method

        return pool_start_method()
    if method not in mp.get_all_start_methods():
        raise ConfigError(
            f"{START_METHOD_ENV} must be one of "
            f"{mp.get_all_start_methods()}, got {method!r}"
        )
    return method


@dataclass
class ServiceStats:
    """Lifetime counters of one service (bench/observability surface)."""

    pool_starts: int = 0  # pools created (lazy start + grow restarts)
    runs: int = 0  # run() calls served by a pool
    warm_runs: int = 0  # runs served by an already-running pool
    cells: int = 0  # tasks executed through the pool
    generations: int = 0  # distinct per-call state broadcasts
    generation_reuses: int = 0  # runs whose state matched the previous one
    blob_spills: int = 0  # generations whose state went via a temp file
    aborts: int = 0  # pools torn down after a worker crash / call timeout

    def as_dict(self) -> Dict[str, int]:
        return {
            "pool_starts": self.pool_starts,
            "runs": self.runs,
            "warm_runs": self.warm_runs,
            "cells": self.cells,
            "generations": self.generations,
            "generation_reuses": self.generation_reuses,
            "blob_spills": self.blob_spills,
            "aborts": self.aborts,
        }


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Monotonic across the whole process (never reset on pool restarts), so
#: a fresh worker -- whose last-seen generation is None -- always
#: re-initializes, and a stale worker can never mistake old state for new.
_GENERATION_COUNTER = 0

_WORKER_GENERATION: Optional[int] = None

#: Generation blobs up to this size ride inline in every task; larger
#: ones (pickled models, image snapshots) are spilled to a temp file the
#: workers each read once, keeping the per-task pipe traffic at payload
#: size.
_INLINE_BLOB_LIMIT = 64 * 1024


def _service_bootstrap() -> None:  # pragma: no cover - runs in workers
    """Once per worker process: pin the no-nested-pools environment."""
    os.environ[WORKERS_ENV] = "1"
    _reset_override_for_worker()


def _service_cell(task: Tuple[int, Tuple[str, object], Callable, object]):
    """One task: sync to the task's generation, then run the cell.

    The generation blob -- inline bytes, or a temp-file path for large
    state -- re-applies the parent's runtime config and runs the
    caller's initializer exactly once per worker per generation -- the
    same guarantee the per-call pool gave via its creation-time
    initializer. An initializer that raises leaves the worker's
    generation unchanged, so the next task retries it rather than
    running the cell against half-applied state.
    """
    global _WORKER_GENERATION
    generation, (blob_kind, blob_value), fn, payload = task
    if _WORKER_GENERATION != generation:
        if blob_kind == "file":
            with open(blob_value, "rb") as handle:
                blob = handle.read()
        else:
            blob = blob_value
        config_kwargs, initializer, initargs = pickle.loads(blob)
        set_runtime_config(RuntimeConfig(**config_kwargs))
        if initializer is not None:
            initializer(*initargs)
        _WORKER_GENERATION = generation
    return fn(payload)


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class WorkerService:
    """A lazily started, persistent, grow-only process pool.

    Usable standalone (``with WorkerService(workers=4) as svc: svc.run(...)``)
    or -- the common path -- as the process-wide shared instance every
    :func:`repro.parallel.pool.run_tasks` call reuses. The pool starts
    on the first pooled ``run`` and survives until :meth:`shutdown`,
    context-manager exit, a call needing *more* workers (grow restart),
    or interpreter exit (the shared instance registers an ``atexit``
    hook); calls needing fewer workers reuse the wider pool with their
    concurrency capped by chunked submission.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self._default_workers = workers
        self._start_method = start_method
        self._pool = None
        self._pool_workers = 0
        self._owner_pid = os.getpid()
        # (state digest, generation id, blob ref) of the last broadcast:
        # a run whose pickled state is byte-identical reuses it, so warm
        # workers skip re-initialization (and keep e.g. a loaded model).
        self._generation_cache: Optional[Tuple[bytes, int, Tuple]] = None
        self.stats = ServiceStats()

    # -- lifecycle ------------------------------------------------------
    def _ensure_pool(self, count: int):
        """A pool of at least ``count`` workers (grow-only resizing).

        A wider pool than requested is reused as-is -- :meth:`run`
        chunks submissions so at most ``count`` of its workers are busy
        -- because restarting would re-pay pool startup *and* discard
        every worker's warm per-process caches (plan geometry, BLAS-fold
        calibration), the exact costs the service exists to amortize.
        """
        inherited = self._pool is not None and self._owner_pid != os.getpid()
        too_small = self._pool is not None and self._pool_workers < count
        if inherited or too_small:
            self.shutdown()
        if self._pool is None:
            method = self._start_method or service_start_method()
            context = mp.get_context(method)
            self._pool = context.Pool(
                processes=count, initializer=_service_bootstrap
            )
            self._pool_workers = count
            self._owner_pid = os.getpid()
            self.stats.pool_starts += 1
        return self._pool

    @property
    def running(self) -> bool:
        """Whether a pool is currently alive under this service."""
        return self._pool is not None

    @property
    def pool_workers(self) -> int:
        """Worker count of the running pool (0 when not running)."""
        return self._pool_workers if self._pool is not None else 0

    def _drop_generation_cache(self) -> None:
        cached, self._generation_cache = self._generation_cache, None
        if (
            cached is not None
            and cached[2][0] == "file"
            and self._owner_pid == os.getpid()  # never unlink a parent's file
            and os.path.exists(cached[2][1])
        ):
            os.remove(cached[2][1])

    def shutdown(self) -> None:
        """Stop the pool (if any). The next pooled run restarts lazily.

        A pool handle inherited through ``fork`` (``os.getpid()`` differs
        from the creating process) is dropped without closing -- the
        pipes belong to the parent, and closing them from a child would
        sabotage the parent's still-live pool; likewise a spilled
        generation file is only unlinked by the process that wrote it.
        """
        self._drop_generation_cache()
        pool, self._pool = self._pool, None
        self._pool_workers = 0
        if pool is not None and self._owner_pid == os.getpid():
            pool.close()
            pool.join()

    def _abort_pool(self) -> None:
        """Tear down a pool that lost a worker (or blew its budget).

        ``terminate`` rather than ``close``+``join``: joining a pool
        whose in-flight tasks died with their worker can itself hang on
        the unaccounted results. The next pooled run restarts lazily --
        that restart *is* the recovery path.
        """
        self._drop_generation_cache()
        pool, self._pool = self._pool, None
        self._pool_workers = 0
        if pool is not None and self._owner_pid == os.getpid():
            pool.terminate()
            pool.join()
        self.stats.aborts += 1

    def __enter__(self) -> "WorkerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- execution ------------------------------------------------------
    def run(
        self,
        fn: Callable,
        payloads: Iterable,
        workers: Optional[int] = None,
        initializer: Optional[Callable] = None,
        initargs: Tuple = (),
        timeout: Optional[float] = None,
    ) -> List:
        """``[fn(p) for p in payloads]`` on the persistent pool.

        Same contract as :func:`repro.parallel.pool.run_tasks` (results
        in payload order, module-level picklable callables, serial
        fallback at one resolved worker -- initializer then runs in the
        calling process), plus warm reuse: consecutive calls share the
        pool, and only the generation blob -- runtime config,
        initializer, initargs, pickled once per call and spilled to a
        temp file when large -- travels alongside the tasks; a call
        whose state is byte-identical to the previous one reuses its
        generation outright, so warm workers skip re-initialization.
        (The warm path still pays one pickle of the state to compute the
        reuse digest -- correctness over cleverness: the digest must
        cover exactly what workers would apply. Ship big state by
        artifact path, as ``sharded_forward(model_path=...)`` does with
        a content digest alongside, to keep that O(KB).) ``workers`` is
        a concurrency cap even when the running pool is wider:
        submissions are chunked so at most that many workers are busy.

        Fault containment: a worker that dies mid-call raises
        :class:`~repro.errors.WorkerCrashError`, an exceeded ``timeout``
        (seconds) raises :class:`~repro.errors.WorkerTimeoutError`;
        either way the pool is torn down (``terminate``) and the next
        run restarts it lazily -- the service recovers, the caller gets
        a typed error, and nothing ever hangs on results a dead worker
        cannot deliver (see :func:`repro.parallel.pool.guarded_map_wait`).
        """
        payloads = list(payloads)
        count = min(
            resolve_workers(
                workers if workers is not None else self._default_workers
            ),
            max(1, len(payloads)),
        )
        if count <= 1 or len(payloads) <= 1:
            if initializer is not None:
                initializer(*initargs)
            return [fn(payload) for payload in payloads]
        blob = pickle.dumps(
            (asdict(runtime_config()), initializer, initargs),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        digest = hashlib.sha256(blob).digest()
        starts_before = self.stats.pool_starts
        pool = self._ensure_pool(count)  # a grow restart clears the cache
        self.stats.runs += 1
        if self.stats.pool_starts == starts_before:
            self.stats.warm_runs += 1
        self.stats.cells += len(payloads)
        cached = self._generation_cache
        if cached is not None and cached[0] == digest:
            # Byte-identical state: reuse the broadcast, so workers
            # already on this generation skip re-initialization entirely
            # (the spill file, if any, still serves never-initialized
            # workers).
            _, generation, blob_ref = cached
            self.stats.generation_reuses += 1
        else:
            global _GENERATION_COUNTER
            _GENERATION_COUNTER += 1
            generation = _GENERATION_COUNTER
            self._drop_generation_cache()
            if len(blob) > _INLINE_BLOB_LIMIT:
                fd, spill_path = tempfile.mkstemp(suffix=".generation.blob")
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                blob_ref = ("file", spill_path)
                self.stats.blob_spills += 1
            else:
                blob_ref = ("inline", blob)
            self._generation_cache = (digest, generation, blob_ref)
            self.stats.generations += 1
        tasks = [(generation, blob_ref, fn, payload) for payload in payloads]
        # chunksize 1 keeps assignment balanced; on a pool wider than the
        # requested cap, chunk so at most `count` chunks exist -- i.e. at
        # most `count` workers ever hold work from this call.
        if self._pool_workers <= count:
            chunksize = 1
        else:
            chunksize = -(-len(tasks) // count)
        from repro.parallel.pool import guarded_map_wait

        result = pool.map_async(_service_cell, tasks, chunksize=chunksize)
        try:
            return guarded_map_wait(pool, result, timeout=timeout)
        except (WorkerCrashError, WorkerTimeoutError):
            self._abort_pool()
            raise


# ---------------------------------------------------------------------------
# The shared instance run_tasks routes through
# ---------------------------------------------------------------------------

_SHARED: Optional[WorkerService] = None


def shared_service() -> WorkerService:
    """The process-wide service behind every pooled ``run_tasks`` call.

    Created on first use (with an ``atexit`` shutdown hook); a handle
    inherited by a forked child is replaced with the child's own fresh
    instance rather than reused, since pool pipes do not survive a fork
    usefully.
    """
    global _SHARED
    if _SHARED is None:
        _SHARED = WorkerService()
        atexit.register(shutdown_worker_service)
    elif _SHARED._owner_pid != os.getpid() and _SHARED._pool is not None:
        _SHARED = WorkerService()
    return _SHARED


def shutdown_worker_service() -> None:
    """Stop the shared pool (idempotent; the service restarts lazily)."""
    if _SHARED is not None:
        _SHARED.shutdown()


def service_stats() -> Dict[str, int]:
    """Lifetime counters of the shared service (zeros before first use)."""
    if _SHARED is None:
        return ServiceStats().as_dict()
    return _SHARED.stats.as_dict()
