"""Persistent worker pools: one long-lived pool, many ``run_tasks`` calls.

PR 2's executor started a fresh process pool for every :func:`run_tasks`
call, which priced pooling out of small batches: ~20 ms of pool startup
plus model/state shipping were paid per call, per worker.
:class:`WorkerService` keeps one pool alive across calls instead --
lazily started on first use, reused while the resolved worker count
stays put, resized (restarted) when it changes, and shut down cleanly
through a context manager, an explicit :meth:`WorkerService.shutdown`,
or the ``atexit`` hook guarding the process-wide shared instance.

Generations
-----------

A classic pool binds its initializer at creation, but a persistent pool
serves calls whose per-call state (model, images, encoder snapshot,
parent runtime config) differs. The service therefore versions that
state: every :meth:`WorkerService.run` call mints a new *generation* --
the parent's :class:`~repro.runtime.config.RuntimeConfig` plus the
caller's ``(initializer, initargs)``, pickled once -- and every task
carries the generation id. A worker whose last-seen generation differs
re-applies the runtime config and re-runs the initializer before
executing the cell; a worker already on the right generation runs the
cell directly. The effect is exactly the per-call pool's semantics
(state applied once per worker per call) without the per-call startup.
As a further warm-path shortcut, a call whose state pickles
byte-identically to the previous call's *reuses* the previous
generation: already-initialized workers then skip re-initialization and
keep what the initializer built (a loaded model, a warmed plan) -- the
model-shipping amortization repeated evaluations want. Initializers
must therefore establish state idempotently; cells must not mutate it
in ways a repeated identical call may not observe (every cell in this
package treats worker state as read-only).

Because generation state travels with the tasks rather than through
fork-time memory inheritance, small blobs ride inline in every task
(cheap, and workers already on the right generation ignore them), while
a blob past :data:`_INLINE_BLOB_LIMIT` -- e.g. a whole pickled model --
is spilled to a temporary file once per call and tasks carry only its
path: each worker reads the file at most once, so a large model crosses
the parent's pipe zero times and the disk once, instead of once per
task. Callers should still prefer artifact paths for long-lived state
(``sharded_forward(model_path=...)`` ships the ``.npz`` + ``.plan.npz``
location, and :func:`repro.parallel.shard.sharded_forward` switches to
slice-carrying task payloads whenever the service is active).

Pool sizing is grow-only: a call needing fewer workers than the running
pool reuses it (submissions are chunked so at most the requested count
run concurrently -- an explicit ``workers=2`` stays a concurrency cap
even on a wider pool), and only a call needing *more* workers restarts
it. Alternating small and large fan-outs therefore never thrashes pool
startup or the workers' warm per-process caches.

Start methods
-------------

The service defaults to :func:`repro.parallel.pool.pool_start_method`
(``fork`` on Linux, ``spawn`` elsewhere) but honours
``REPRO_START_METHOD`` (``fork`` | ``forkserver`` | ``spawn``).
``forkserver`` is the recommended override for long-lived services
embedded in threaded parents: workers fork from a clean server process
instead of from whatever state the parent has accumulated, at the cost
of one extra process. None of this affects results -- the service never
relies on inherited memory, so every start method computes the same
bytes (locked down by ``tests/parallel/``).

``REPRO_PERSISTENT_POOL=0`` disables the service globally;
:func:`run_tasks` then reverts to PR 2's pool-per-call executor.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing as mp
import os
import pickle
import tempfile
import time
from collections import deque
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError, WorkerCrashError, WorkerTimeoutError

# The env constants and readers were defined here historically; they
# moved to the layer's config module (rule P101) and stay importable.
from repro.parallel.config import (  # noqa: F401
    BREAKER_COOLDOWN_MS_ENV,
    BREAKER_THRESHOLD_ENV,
    BREAKER_WINDOW_MS_ENV,
    PERSISTENT_POOL_ENV,
    START_METHOD_ENV,
    WORKERS_ENV,
    _reset_override_for_worker,
    env_positive as _env_positive,
    persistent_pool_enabled,
    resolve_workers,
    service_start_method,
)
from repro.runtime.config import RuntimeConfig, runtime_config, set_runtime_config


@dataclass
class ServiceStats:
    """Lifetime counters of one service (bench/observability surface)."""

    pool_starts: int = 0  # pools created (lazy start + grow restarts)
    runs: int = 0  # run() calls served by a pool
    warm_runs: int = 0  # runs served by an already-running pool
    cells: int = 0  # tasks executed through the pool
    generations: int = 0  # distinct per-call state broadcasts
    generation_reuses: int = 0  # runs whose state matched the previous one
    blob_spills: int = 0  # generations whose state went via a temp file
    aborts: int = 0  # pools torn down after a worker crash / call timeout
    restarts: int = 0  # pool starts that recovered from an abort (backoff-gated)
    breaker_trips: int = 0  # times the circuit breaker opened
    breaker_serial_runs: int = 0  # runs degraded to inline serial (breaker open)

    def as_dict(self) -> Dict[str, int]:
        return {
            "pool_starts": self.pool_starts,
            "runs": self.runs,
            "warm_runs": self.warm_runs,
            "cells": self.cells,
            "generations": self.generations,
            "generation_reuses": self.generation_reuses,
            "blob_spills": self.blob_spills,
            "aborts": self.aborts,
            "restarts": self.restarts,
            "breaker_trips": self.breaker_trips,
            "breaker_serial_runs": self.breaker_serial_runs,
        }


class CircuitBreaker:
    """Abort-rate circuit breaker over a service's pool.

    Tracks pool aborts in a rolling window. While the abort count stays
    under ``threshold`` the breaker is *closed* and pooled execution
    proceeds normally. Hitting the threshold *opens* it: for
    ``cooldown_s`` the service stops restarting pools and degrades to
    inline serial execution -- ending a terminate/respawn storm from a
    persistently hostile workload. Once the cooldown elapses the breaker
    goes *half-open*: the next run probes the pool; success closes the
    breaker (and clears the abort history), another abort re-opens it
    for a fresh cooldown.
    """

    def __init__(
        self,
        threshold: int = 5,
        window_s: float = 30.0,
        cooldown_s: float = 1.0,
    ) -> None:
        if threshold < 1:
            raise ConfigError(
                f"breaker threshold must be >= 1, got {threshold}"
            )
        self.threshold = threshold
        self.window_s = window_s
        self.cooldown_s = cooldown_s
        self.trips = 0
        self._abort_times: deque = deque()
        self._open_until: Optional[float] = None
        self._probing = False

    def _prune(self, now: float) -> None:
        while self._abort_times and now - self._abort_times[0] > self.window_s:
            self._abort_times.popleft()

    @property
    def state(self) -> str:
        """``closed`` | ``open`` | ``half-open`` (cooldown elapsed)."""
        if self._open_until is None:
            return "closed"
        if self._probing or time.monotonic() >= self._open_until:
            return "half-open"
        return "open"

    def record_abort(self) -> bool:
        """Note one pool abort; ``True`` if this trip opened the breaker."""
        now = time.monotonic()
        self._abort_times.append(now)
        self._prune(now)
        if self._probing:
            # The half-open probe failed: straight back to open.
            self._probing = False
            self._open_until = now + self.cooldown_s
            self.trips += 1
            return True
        if self._open_until is None and len(self._abort_times) >= self.threshold:
            self._open_until = now + self.cooldown_s
            self.trips += 1
            return True
        return False

    def record_success(self) -> None:
        """A pooled run completed: close after a successful probe."""
        if self._open_until is not None:
            self._open_until = None
            self._probing = False
            self._abort_times.clear()

    def allow_pool(self) -> bool:
        """Whether the next run may use the pool (half-open = probe)."""
        if self._open_until is None:
            return True
        if time.monotonic() >= self._open_until:
            self._probing = True
            return True
        return False


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Monotonic across the whole process (never reset on pool restarts), so
#: a fresh worker -- whose last-seen generation is None -- always
#: re-initializes, and a stale worker can never mistake old state for new.
_GENERATION_COUNTER = 0  # repro: lint-ok[P102] parent-only monotonic id; workers compare, never increment

_WORKER_GENERATION: Optional[int] = None  # repro: lint-ok[P102] per-worker last-applied generation; written only by that worker

#: Generation blobs up to this size ride inline in every task; larger
#: ones (pickled models, image snapshots) are spilled to a temp file the
#: workers each read once, keeping the per-task pipe traffic at payload
#: size.
_INLINE_BLOB_LIMIT = 64 * 1024


def _service_bootstrap() -> None:  # pragma: no cover - runs in workers
    """Once per worker process: pin the no-nested-pools environment."""
    os.environ[WORKERS_ENV] = "1"
    _reset_override_for_worker()
    from repro.faults import mark_worker_process

    mark_worker_process()


def _service_cell(task: Tuple[int, Tuple[str, object], Callable, object]):
    """One task: sync to the task's generation, then run the cell.

    The generation blob -- inline bytes, or a temp-file path for large
    state -- re-applies the parent's runtime config and runs the
    caller's initializer exactly once per worker per generation -- the
    same guarantee the per-call pool gave via its creation-time
    initializer. An initializer that raises leaves the worker's
    generation unchanged, so the next task retries it rather than
    running the cell against half-applied state.
    """
    global _WORKER_GENERATION
    generation, (blob_kind, blob_value), fn, payload = task
    if _WORKER_GENERATION != generation:
        if blob_kind == "file":
            with open(blob_value, "rb") as handle:
                blob = handle.read()
        else:
            blob = blob_value
        config_kwargs, initializer, initargs = pickle.loads(blob)
        set_runtime_config(RuntimeConfig(**config_kwargs))
        if initializer is not None:
            initializer(*initargs)
        _WORKER_GENERATION = generation
    return fn(payload)


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class WorkerService:
    """A lazily started, persistent, grow-only process pool.

    Usable standalone (``with WorkerService(workers=4) as svc: svc.run(...)``)
    or -- the common path -- as the process-wide shared instance every
    :func:`repro.parallel.pool.run_tasks` call reuses. The pool starts
    on the first pooled ``run`` and survives until :meth:`shutdown`,
    context-manager exit, a call needing *more* workers (grow restart),
    or interpreter exit (the shared instance registers an ``atexit``
    hook); calls needing fewer workers reuse the wider pool with their
    concurrency capped by chunked submission.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        restart_backoff_ms: float = 50.0,
        restart_backoff_max_ms: float = 2000.0,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self._default_workers = workers
        self._start_method = start_method
        self._pool = None
        self._pool_workers = 0
        self._owner_pid = os.getpid()
        # (state digest, generation id, blob ref) of the last broadcast:
        # a run whose pickled state is byte-identical reuses it, so warm
        # workers skip re-initialization (and keep e.g. a loaded model).
        self._generation_cache: Optional[Tuple[bytes, int, Tuple]] = None
        self.stats = ServiceStats()
        # Post-abort restart damping: a flapping worker must not spin a
        # terminate/respawn loop at pool-start speed. Doubled per
        # consecutive abort, reset by the first successful pooled run.
        self._restart_backoff_ms = restart_backoff_ms
        self._restart_backoff_max_ms = restart_backoff_max_ms
        self._consecutive_aborts = 0
        self._last_abort: Optional[float] = None
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            threshold=int(_env_positive(BREAKER_THRESHOLD_ENV, 5, int)),
            window_s=_env_positive(BREAKER_WINDOW_MS_ENV, 30000.0) / 1000.0,
            cooldown_s=_env_positive(BREAKER_COOLDOWN_MS_ENV, 1000.0) / 1000.0,
        )

    # -- lifecycle ------------------------------------------------------
    def _ensure_pool(self, count: int):
        """A pool of at least ``count`` workers (grow-only resizing).

        A wider pool than requested is reused as-is -- :meth:`run`
        chunks submissions so at most ``count`` of its workers are busy
        -- because restarting would re-pay pool startup *and* discard
        every worker's warm per-process caches (plan geometry, BLAS-fold
        calibration), the exact costs the service exists to amortize.
        """
        inherited = self._pool is not None and self._owner_pid != os.getpid()
        too_small = self._pool is not None and self._pool_workers < count
        if inherited or too_small:
            self.shutdown()
        if self._pool is None:
            if self._last_abort is not None:
                # Restart backoff: damp terminate/respawn storms after a
                # crash. Exponential in the consecutive-abort count,
                # capped, and charged only for the remaining fraction.
                backoff_s = min(
                    self._restart_backoff_ms
                    * (2.0 ** max(0, self._consecutive_aborts - 1)),
                    self._restart_backoff_max_ms,
                ) / 1000.0
                wait = self._last_abort + backoff_s - time.monotonic()
                if wait > 0:
                    time.sleep(wait)
                self.stats.restarts += 1
            method = self._start_method or service_start_method()
            context = mp.get_context(method)
            self._pool = context.Pool(
                processes=count, initializer=_service_bootstrap
            )
            self._pool_workers = count
            self._owner_pid = os.getpid()
            self.stats.pool_starts += 1
        return self._pool

    @property
    def running(self) -> bool:
        """Whether a pool is currently alive under this service."""
        return self._pool is not None

    @property
    def pool_workers(self) -> int:
        """Worker count of the running pool (0 when not running)."""
        return self._pool_workers if self._pool is not None else 0

    def _drop_generation_cache(self) -> None:
        cached, self._generation_cache = self._generation_cache, None
        if (
            cached is not None
            and cached[2][0] == "file"
            and self._owner_pid == os.getpid()  # never unlink a parent's file
            and os.path.exists(cached[2][1])
        ):
            os.remove(cached[2][1])

    def shutdown(self) -> None:
        """Stop the pool (if any). The next pooled run restarts lazily.

        A pool handle inherited through ``fork`` (``os.getpid()`` differs
        from the creating process) is dropped without closing -- the
        pipes belong to the parent, and closing them from a child would
        sabotage the parent's still-live pool; likewise a spilled
        generation file is only unlinked by the process that wrote it.
        """
        self._drop_generation_cache()
        pool, self._pool = self._pool, None
        self._pool_workers = 0
        if pool is not None and self._owner_pid == os.getpid():
            pool.close()
            pool.join()

    def _abort_pool(self) -> None:
        """Tear down a pool that lost a worker (or blew its budget).

        ``terminate`` rather than ``close``+``join``: joining a pool
        whose in-flight tasks died with their worker can itself hang on
        the unaccounted results. The next pooled run restarts lazily --
        that restart *is* the recovery path.
        """
        self._drop_generation_cache()
        pool, self._pool = self._pool, None
        self._pool_workers = 0
        if pool is not None and self._owner_pid == os.getpid():
            pool.terminate()
            pool.join()
        self.stats.aborts += 1
        self._consecutive_aborts += 1
        self._last_abort = time.monotonic()
        if self.breaker.record_abort():
            self.stats.breaker_trips += 1

    def _note_success(self) -> None:
        """A pooled run completed: reset abort damping, close the breaker."""
        self._consecutive_aborts = 0
        self._last_abort = None
        self.breaker.record_success()

    def _run_inline(
        self,
        fn: Callable,
        payloads: List,
        initializer: Optional[Callable],
        initargs: Tuple,
    ) -> List:
        """Degraded serial execution while the breaker is open.

        Semantics match the single-worker serial fallback: the
        initializer (then the cells) run in the calling process, so
        progress continues at serial speed instead of feeding a restart
        storm. Fault-plan injection is skipped by design -- these cells
        do not run in a worker process (see :mod:`repro.faults`).
        """
        self.stats.breaker_serial_runs += 1
        self.stats.runs += 1
        self.stats.cells += len(payloads)
        if initializer is not None:
            initializer(*initargs)
        return [fn(payload) for payload in payloads]

    def __enter__(self) -> "WorkerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- execution ------------------------------------------------------
    def run(
        self,
        fn: Callable,
        payloads: Iterable,
        workers: Optional[int] = None,
        initializer: Optional[Callable] = None,
        initargs: Tuple = (),
        timeout: Optional[float] = None,
    ) -> List:
        """``[fn(p) for p in payloads]`` on the persistent pool.

        Same contract as :func:`repro.parallel.pool.run_tasks` (results
        in payload order, module-level picklable callables, serial
        fallback at one resolved worker -- initializer then runs in the
        calling process), plus warm reuse: consecutive calls share the
        pool, and only the generation blob -- runtime config,
        initializer, initargs, pickled once per call and spilled to a
        temp file when large -- travels alongside the tasks; a call
        whose state is byte-identical to the previous one reuses its
        generation outright, so warm workers skip re-initialization.
        (The warm path still pays one pickle of the state to compute the
        reuse digest -- correctness over cleverness: the digest must
        cover exactly what workers would apply. Ship big state by
        artifact path, as ``sharded_forward(model_path=...)`` does with
        a content digest alongside, to keep that O(KB).) ``workers`` is
        a concurrency cap even when the running pool is wider:
        submissions are chunked so at most that many workers are busy.

        Fault containment: a worker that dies mid-call raises
        :class:`~repro.errors.WorkerCrashError`, an exceeded ``timeout``
        (seconds) raises :class:`~repro.errors.WorkerTimeoutError`;
        either way the pool is torn down (``terminate``) and the next
        run restarts it lazily -- the service recovers, the caller gets
        a typed error, and nothing ever hangs on results a dead worker
        cannot deliver (see :func:`repro.parallel.pool.guarded_map_wait`).
        """
        payloads = list(payloads)
        count = min(
            resolve_workers(
                workers if workers is not None else self._default_workers
            ),
            max(1, len(payloads)),
        )
        if count <= 1 or len(payloads) <= 1:
            if initializer is not None:
                initializer(*initargs)
            return [fn(payload) for payload in payloads]
        if not self.breaker.allow_pool():
            return self._run_inline(fn, payloads, initializer, initargs)
        generation, blob_ref = self._broadcast_generation(
            initializer, initargs, count=count
        )
        pool = self._pool
        self.stats.cells += len(payloads)
        tasks = [(generation, blob_ref, fn, payload) for payload in payloads]
        # chunksize 1 keeps assignment balanced; on a pool wider than the
        # requested cap, chunk so at most `count` chunks exist -- i.e. at
        # most `count` workers ever hold work from this call.
        if self._pool_workers <= count:
            chunksize = 1
        else:
            chunksize = -(-len(tasks) // count)
        from repro.parallel.pool import guarded_map_wait

        result = pool.map_async(_service_cell, tasks, chunksize=chunksize)
        try:
            results = guarded_map_wait(pool, result, timeout=timeout)
        except (WorkerCrashError, WorkerTimeoutError):
            self._abort_pool()
            raise
        self._note_success()
        return results

    def _broadcast_generation(
        self,
        initializer: Optional[Callable],
        initargs: Tuple,
        count: int,
    ) -> Tuple[int, Tuple]:
        """Ensure a pool and mint (or reuse) the call's generation blob.

        Shared by :meth:`run` and :meth:`run_indexed` so both paths
        carry byte-identical state broadcasts -- a retry round reuses
        the warm generation a mapped call established, and vice versa.
        Updates run/warm-run/generation stats; callers account cells.
        """
        blob = pickle.dumps(
            (asdict(runtime_config()), initializer, initargs),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        digest = hashlib.sha256(blob).digest()
        starts_before = self.stats.pool_starts
        self._ensure_pool(count)  # a grow restart clears the cache
        self.stats.runs += 1
        if self.stats.pool_starts == starts_before:
            self.stats.warm_runs += 1
        cached = self._generation_cache
        if cached is not None and cached[0] == digest:
            # Byte-identical state: reuse the broadcast, so workers
            # already on this generation skip re-initialization entirely
            # (the spill file, if any, still serves never-initialized
            # workers).
            _, generation, blob_ref = cached
            self.stats.generation_reuses += 1
        else:
            global _GENERATION_COUNTER
            _GENERATION_COUNTER += 1
            generation = _GENERATION_COUNTER
            self._drop_generation_cache()
            if len(blob) > _INLINE_BLOB_LIMIT:
                fd, spill_path = tempfile.mkstemp(suffix=".generation.blob")
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                blob_ref = ("file", spill_path)
                self.stats.blob_spills += 1
            else:
                blob_ref = ("inline", blob)
            self._generation_cache = (digest, generation, blob_ref)
            self.stats.generations += 1
        return generation, blob_ref

    def run_indexed(
        self,
        fn: Callable,
        tasks: List[Tuple[int, object]],
        workers: Optional[int] = None,
        initializer: Optional[Callable] = None,
        initargs: Tuple = (),
        timeout: Optional[float] = None,
    ) -> Tuple[Dict[int, object], set, Optional[BaseException]]:
        """One recovery round for the retry layer: indexed, partial-harvest.

        Same generation semantics as :meth:`run`, but each ``(index,
        payload)`` task is submitted individually and a crash or timeout
        returns ``(done, dispatched, error)`` instead of raising -- the
        completed results survive, and only the lost tasks need
        re-execution (see :func:`repro.parallel.pool.gather_indexed`).
        There is **no** serial fallback here even for a single task: a
        suspect task must run in a worker process so that killing its
        worker cannot kill the caller. The one exception is an *open*
        circuit breaker, which degrades to inline execution -- by then
        the workload has already proven it kills pools, and the retry
        layer quarantines true poison tasks before the breaker opens.
        A cell that raises its own exception still propagates.
        """
        count = min(
            resolve_workers(
                workers if workers is not None else self._default_workers
            ),
            max(1, len(tasks)),
        )
        if not self.breaker.allow_pool():
            payloads = [payload for _, payload in tasks]
            results = self._run_inline(fn, payloads, initializer, initargs)
            done = {
                index: result
                for (index, _), result in zip(tasks, results)
            }
            return done, set(), None
        generation, blob_ref = self._broadcast_generation(
            initializer, initargs, count=count
        )
        pool = self._pool
        self.stats.cells += len(tasks)
        payload_by = {
            index: (generation, blob_ref, fn, payload)
            for index, payload in tasks
        }
        from repro.parallel.pool import gather_indexed

        done, dispatched, error = gather_indexed(
            pool,
            lambda index: pool.apply_async(
                _service_cell, (payload_by[index],)
            ),
            [index for index, _ in tasks],
            window=count,
            timeout=timeout,
        )
        if error is not None:
            self._abort_pool()
        else:
            self._note_success()
        return done, dispatched, error


# ---------------------------------------------------------------------------
# The shared instance run_tasks routes through
# ---------------------------------------------------------------------------

_SHARED: Optional[WorkerService] = None  # repro: lint-ok[P102] parent-only singleton; fork-inherited copies are detected by owner pid and discarded


def shared_service() -> WorkerService:
    """The process-wide service behind every pooled ``run_tasks`` call.

    Created on first use (with an ``atexit`` shutdown hook); a handle
    inherited by a forked child is replaced with the child's own fresh
    instance rather than reused, since pool pipes do not survive a fork
    usefully.
    """
    global _SHARED
    if _SHARED is None:
        _SHARED = WorkerService()
        atexit.register(shutdown_worker_service)
    elif _SHARED._owner_pid != os.getpid() and _SHARED._pool is not None:
        _SHARED = WorkerService()
    return _SHARED


def shutdown_worker_service() -> None:
    """Stop the shared pool (idempotent; the service restarts lazily)."""
    if _SHARED is not None:
        _SHARED.shutdown()


def service_stats() -> Dict[str, int]:
    """Lifetime counters of the shared service (zeros before first use)."""
    if _SHARED is None:
        return ServiceStats().as_dict()
    return _SHARED.stats.as_dict()
