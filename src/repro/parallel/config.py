"""Worker-count resolution for the sharded/pooled execution subsystem.

One knob, four sources, strict precedence:

1. an explicit ``workers=`` argument at the call site,
2. a scoped :func:`workers_override` (tests pin behaviour with it),
3. the ``REPRO_WORKERS`` environment variable,
4. ``os.cpu_count()``.

``REPRO_WORKERS=1`` is the documented serial fallback: every parallel
entry point then runs its shards/cells inline in the calling process,
with *identical results* (see the package docstring's determinism
guarantees). Worker processes are always started with ``REPRO_WORKERS=1``
in their environment so a cell can itself call parallel entry points
without ever nesting process pools.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ConfigError

WORKERS_ENV = "REPRO_WORKERS"

ON_SHARD_FAILURE_ENV = "REPRO_ON_SHARD_FAILURE"

PERSISTENT_POOL_ENV = "REPRO_PERSISTENT_POOL"

START_METHOD_ENV = "REPRO_START_METHOD"

BREAKER_THRESHOLD_ENV = "REPRO_BREAKER_THRESHOLD"

BREAKER_WINDOW_MS_ENV = "REPRO_BREAKER_WINDOW_MS"

BREAKER_COOLDOWN_MS_ENV = "REPRO_BREAKER_COOLDOWN_MS"

RETRY_MAX_ATTEMPTS_ENV = "REPRO_RETRY_MAX_ATTEMPTS"

RETRY_BACKOFF_MS_ENV = "REPRO_RETRY_BACKOFF_MS"

RETRY_BACKOFF_MAX_MS_ENV = "REPRO_RETRY_BACKOFF_MAX_MS"

RETRY_TASK_TIMEOUT_MS_ENV = "REPRO_RETRY_TASK_TIMEOUT_MS"

# Scoped worker-count override (tests pin behaviour with it); cleared in
# pool workers by _reset_override_for_worker so a parent's override
# never leaks into a cell's own parallel entry points.
_WORKERS_OVERRIDE: Optional[int] = None  # repro: lint-ok[P102] per-process scoped override; workers reset it on bootstrap


def env_number(name: str, default: float, cast=float) -> float:
    """A numeric env var, or ``default`` when unset/blank."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return cast(raw)
    except ValueError:
        raise ConfigError(f"{name} must be a number, got {raw!r}")


def env_positive(name: str, default: float, cast=float) -> float:
    """Like :func:`env_number`, additionally requiring the value > 0."""
    value = env_number(name, default, cast)
    if value <= 0:
        raise ConfigError(f"{name} must be > 0, got {value}")
    return value


def persistent_pool_enabled() -> bool:
    """Whether ``run_tasks`` routes through the shared persistent pool.

    On by default; ``REPRO_PERSISTENT_POOL=0`` reverts every pooled
    entry point to the pool-per-call executor (bit-identical results,
    pool startup paid per call again).
    """
    return os.environ.get(PERSISTENT_POOL_ENV, "1") != "0"


def service_start_method() -> str:
    """Start method for service pools: env override, then the default."""
    method = os.environ.get(START_METHOD_ENV)
    if method is None:
        from repro.parallel.pool import pool_start_method

        return pool_start_method()
    if method not in mp.get_all_start_methods():
        raise ConfigError(
            f"{START_METHOD_ENV} must be one of "
            f"{mp.get_all_start_methods()}, got {method!r}"
        )
    return method


def resolve_on_shard_failure() -> str:
    """What callers should do when a shard is quarantined as poison.

    ``REPRO_ON_SHARD_FAILURE``: ``raise`` (the default -- a
    :class:`~repro.errors.PoisonTaskError` propagates and the whole call
    fails) or ``skip`` (callers that can degrade, e.g.
    ``ExperimentContext.evaluate``, record the failed shards and
    continue on the surviving partial results).
    """
    value = os.environ.get(ON_SHARD_FAILURE_ENV, "raise").strip().lower()
    if value not in ("raise", "skip"):
        raise ConfigError(
            f"{ON_SHARD_FAILURE_ENV} must be 'raise' or 'skip', got {value!r}"
        )
    return value


def _validated(value: int, source: str) -> int:
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise ConfigError(f"{source} must be an integer, got {value!r}")
    if value < 1:
        raise ConfigError(f"{source} must be >= 1, got {value}")
    return value


def resolve_workers(workers: Optional[int] = None) -> int:
    """The worker count to use, honouring the precedence above."""
    if workers is not None:
        return _validated(workers, "workers")
    if _WORKERS_OVERRIDE is not None:
        return _WORKERS_OVERRIDE
    env = os.environ.get(WORKERS_ENV)
    if env is not None:
        return _validated(env, WORKERS_ENV)
    return os.cpu_count() or 1


def _reset_override_for_worker() -> None:
    """Drop an inherited override inside a freshly bootstrapped worker.

    Under a ``fork`` start method a scoped :func:`workers_override` in
    the parent would survive into the child and shadow the child's
    ``REPRO_WORKERS=1`` environment -- re-enabling the nested pools the
    bootstrap exists to prevent.
    """
    global _WORKERS_OVERRIDE
    _WORKERS_OVERRIDE = None


@contextmanager
def workers_override(workers: int) -> Iterator[int]:
    """Temporarily pin the resolved worker count (test/bench scoping)."""
    global _WORKERS_OVERRIDE
    workers = _validated(workers, "workers")
    previous = _WORKERS_OVERRIDE
    _WORKERS_OVERRIDE = workers
    try:
        yield workers
    finally:
        _WORKERS_OVERRIDE = previous
