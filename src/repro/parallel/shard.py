"""Batch sharding: split an image set into shards, merge the results.

:func:`sharded_forward` runs one :class:`DeployableNetwork` forward pass
over ``images`` split into contiguous shards, each shard evaluated by a
worker process (or inline under the serial fallback), and merges the
per-shard :class:`DeployableOutput` objects back into one.

Merge semantics (shard order is ascending sample index, always):

* ``logits`` / recorded spike trains -- concatenated along the sample
  axis in shard order; per-sample forward results are independent of the
  batch split (the same invariant the runtime's fused-batch chunking
  already relies on), so these are bit-identical to the unsharded pass.
* ``stats`` -- :meth:`SpikeStats.merge` folded left-to-right in shard
  order. Spike counts are integer-valued floats far below 2**53, so the
  merged totals equal the unsharded ones exactly.
* ``input_spike_totals`` -- accumulated in shard order. Binary layers
  are exact integers; the *analog* direct-coded input layer's total is a
  genuine float sum, whose value depends on the shard geometry (floating
  point addition is not associative) but never on the worker count.
* ``runtime_counters`` -- :meth:`LayerCounters.merge` in shard order.
  Counters tally per-(shard, timestep) dispatch decisions, so their
  totals scale with the shard count; like the analog totals they are a
  pure function of the shard geometry.

Determinism guarantees, in decreasing strength:

1. For a fixed shard geometry, results are bit-identical for *every*
   worker count (``REPRO_WORKERS=1`` serial fallback included): each
   shard is a pure function of (model, shard images, encoder + global
   sample offset), and the merge runs in shard order on the parent.
2. For deterministic encoders -- direct, TTFS, *and* counter-stream
   rate coding -- logits, spike trains and ``SpikeStats`` are
   additionally bit-identical across *all* shard geometries, including
   the unsharded ``model.forward``. Each task carries its shard's
   global start index and the worker positions the encoder with
   ``encoder.for_samples(start)``, so sample ``i`` draws the stream of
   global sample ``start + i`` no matter how the batch was split.
3. Leftover *stateful* stochastic encoders (``deterministic=False``
   subclasses whose draws depend on order) degrade to the legacy
   snapshot semantics: every shard re-materialises the pickled encoder
   and the offset is a no-op on the base class -- deterministic per
   geometry, but not geometry-invariant. The in-tree rate encoder no
   longer works this way (see :class:`repro.snn.encoding.RateEncoder`).

Workers receive the model once, at pool bootstrap: either the live
object (pickled, for in-memory models) or -- preferably -- the cached
``.npz`` path, in which case each worker loads the deployable artifact
plus its ``.plan.npz`` sidecar and skips lowering and BLAS-fold
calibration outright (see :mod:`repro.runtime.plan_io`).

Image payload routing (:func:`plan_task_images` /
:func:`resolve_task_images`, shared with the sharded simulator):

* **fork, pool-per-call** -- workers inherit the parent's memory, so the
  full array travels through the initializer for free and tasks carry
  only ``(start, stop)`` bounds;
* **persistent** :class:`~repro.parallel.service.WorkerService` -- the
  array is written once to a temp ``.npy`` and every task ships a
  ``('mmap', path, start, stop)`` row slice; workers memory-map the file
  and copy out only their rows, so the per-call generation blob and the
  task pipes stay small no matter how large the evaluation set is. When
  the temp file cannot be created the payloads fall back inline;
* **spawn, pool-per-call** -- each task carries its own shard array
  (every sample pickled exactly once).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ParallelError
from repro.parallel.config import resolve_workers
from repro.parallel.pool import run_tasks
from repro.runtime.config import LayerCounters
from repro.snn.metrics import SpikeStats

#: Default shard granularity -- matches the evaluation batch size the
#: serial harnesses have always used, so default-sharded evaluation is
#: bit-identical to the historical batch loop.
DEFAULT_SHARD_SIZE = 128


def shard_slices(
    total: int,
    shards: Optional[int] = None,
    shard_size: Optional[int] = None,
) -> List[slice]:
    """Deterministic contiguous split of ``range(total)``.

    Exactly one of ``shards`` (that many near-equal shards, the first
    ``total % shards`` one sample larger) or ``shard_size`` (fixed-size
    chunks, last one ragged) may be given; with neither, chunks of
    :data:`DEFAULT_SHARD_SIZE` are used. The split depends only on the
    arguments -- never on worker count or scheduling.
    """
    if total < 1:
        raise ParallelError(f"cannot shard an empty batch (total={total})")
    if shards is not None and shard_size is not None:
        raise ParallelError("pass either shards or shard_size, not both")
    if shards is not None:
        if shards < 1:
            raise ParallelError(f"shards must be >= 1, got {shards}")
        shards = min(shards, total)
        base, extra = divmod(total, shards)
        slices = []
        start = 0
        for index in range(shards):
            stop = start + base + (1 if index < extra else 0)
            slices.append(slice(start, stop))
            start = stop
        return slices
    if shard_size is None:
        shard_size = DEFAULT_SHARD_SIZE
    if shard_size < 1:
        raise ParallelError(f"shard_size must be >= 1, got {shard_size}")
    return [
        slice(start, min(start + shard_size, total))
        for start in range(0, total, shard_size)
    ]


def merge_outputs(parts: Sequence) -> "DeployableOutput":
    """Fold per-shard :class:`DeployableOutput` objects, in shard order."""
    from repro.quant.convert import DeployableOutput

    if not parts:
        raise ParallelError("no shard outputs to merge")
    logits = np.concatenate([part.logits for part in parts], axis=0)
    stats = SpikeStats()
    input_totals: Dict[str, float] = {}
    for part in parts:
        stats.merge(part.stats)
        for name, value in part.input_spike_totals.items():
            input_totals[name] = input_totals.get(name, 0.0) + value
    counters: Optional[Dict[str, LayerCounters]] = None
    if all(part.runtime_counters is not None for part in parts):
        counters = {}
        for part in parts:
            for name, counter in part.runtime_counters.items():
                counters.setdefault(name, LayerCounters()).merge(counter)
    trains = None
    stacked = None
    if all(part.spike_trains is not None for part in parts):
        trains = {}
        for name in parts[0].spike_trains:
            timesteps = len(parts[0].spike_trains[name])
            trains[name] = [
                np.concatenate(
                    [part.spike_trains[name][t] for part in parts], axis=0
                )
                for t in range(timesteps)
            ]
        if all(part.spike_trains_stacked is not None for part in parts):
            stacked = {
                name: np.concatenate(
                    [part.spike_trains_stacked[name] for part in parts], axis=1
                )
                for name in parts[0].spike_trains_stacked
            }
    return DeployableOutput(
        logits=logits,
        stats=stats,
        input_spike_totals=input_totals,
        spike_trains=trains,
        spike_trains_stacked=stacked,
        runtime_counters=counters,
    )


# ---------------------------------------------------------------------------
# Image payload planning (parent side) and resolution (worker side)
# ---------------------------------------------------------------------------

def _inherit_via_fork() -> bool:
    """Workers see the parent's memory only under fork-per-call pools."""
    from repro.parallel.pool import pool_start_method
    from repro.parallel.service import persistent_pool_enabled

    # Fork-time memory inheritance only exists when the pool is created
    # for this call: the persistent service's workers were forked at
    # service start and see none of the parent's later allocations, so
    # under the service every per-call byte must travel with the tasks.
    return pool_start_method() == "fork" and not persistent_pool_enabled()


def _write_shard_file(images: np.ndarray) -> Optional[str]:
    """``images`` as a temp ``.npy`` for memory-mapped shard payloads.

    Returns ``None`` when the file cannot be created or written (no
    usable temp dir, disk full, ...) -- callers then fall back to inline
    per-task arrays, which is always correct, just heavier on the pipes.
    """
    try:
        fd, path = tempfile.mkstemp(prefix="repro-shard-", suffix=".npy")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.save(handle, images)
        except BaseException:
            os.unlink(path)
            raise
        return path
    except OSError:
        return None


def plan_task_images(
    images: np.ndarray, slices: Sequence[slice]
) -> Tuple[Optional[np.ndarray], List[object], Callable[[], None]]:
    """Decide how each shard's rows of ``images`` reach the workers.

    Returns ``(init_images, payloads, cleanup)``: ``init_images`` is the
    array to hand the worker initializer (fork inheritance) or ``None``;
    ``payloads[i]`` is what shard ``i``'s task carries (bounds, an
    ``('mmap', path, start, stop)`` slice, or the shard's own array);
    ``cleanup`` must be called -- after the pooled call returns -- to
    remove any temp file (a no-op otherwise; already-mapped workers keep
    reading through their open mapping even after the unlink).
    """
    if _inherit_via_fork():
        return (
            images,
            [(piece.start, piece.stop) for piece in slices],
            lambda: None,
        )
    from repro.parallel.service import persistent_pool_enabled

    if persistent_pool_enabled():
        path = _write_shard_file(images)
        if path is not None:
            def cleanup(path=path):
                try:
                    os.unlink(path)
                except OSError:
                    pass
            return (
                None,
                [
                    ("mmap", path, piece.start, piece.stop)
                    for piece in slices
                ],
                cleanup,
            )
    return (
        None,
        [np.ascontiguousarray(images[piece]) for piece in slices],
        lambda: None,
    )


_MMAP_CACHE: Dict[str, np.ndarray] = {}  # repro: lint-ok[P102] per-process read-only mmap handles keyed by path; contents identical everywhere


def resolve_task_images(
    payload: object, init_images: Optional[np.ndarray]
) -> np.ndarray:
    """A task's image rows from whatever :func:`plan_task_images` shipped."""
    if isinstance(payload, np.ndarray):
        return payload
    if isinstance(payload, tuple) and payload and payload[0] == "mmap":
        _, path, start, stop = payload
        mapped = _MMAP_CACHE.get(path)
        if mapped is None:
            _MMAP_CACHE.clear()  # one eval file at a time; old paths are gone
            mapped = np.load(path, mmap_mode="r")
            _MMAP_CACHE[path] = mapped
        return np.array(mapped[start:stop])
    start, stop = payload
    return init_images[start:stop]


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

_WORKER_STATE: Optional[Dict] = None  # repro: lint-ok[P102] per-worker broadcast state; repopulated by the initializer in each process


def load_deployable_with_plan(path: str):
    """A :class:`DeployableNetwork` from ``path`` with its plan sidecar.

    When ``<stem>.plan.npz`` exists next to the artifact, the lowered
    plan is attached and the calibration cache seeded -- the cold-start
    path the sharded workers take. A sidecar that is stale (model digest
    mismatch after a retrain), corrupt or otherwise unusable is ignored;
    the model then lowers itself live on first forward.
    """
    from repro.errors import ReproError
    from repro.quant.convert import DeployableNetwork
    from repro.runtime.plan_io import plan_sidecar_path, try_load_plan

    model = DeployableNetwork.load(path)
    plan = try_load_plan(
        plan_sidecar_path(path), model_digest=model.weights_digest()
    )
    if plan is not None:
        try:
            model.attach_plan(plan)
        except ReproError:
            pass  # mismatched sidecar: fall back to live lowering
    return model


def _materialize_model(payload: Tuple[str, object, Optional[str]]):
    # The digest member exists for the parent side: it makes the pickled
    # payload -- and therefore the persistent service's generation
    # identity -- track the *contents* behind a path, so replacing the
    # artifact at an unchanged path can never let warm workers keep
    # serving the old weights (see WorkerService's generation reuse).
    kind, value, _digest = payload
    if kind == "object":
        return value
    return load_deployable_with_plan(value)


def _init_shard_worker(
    model_payload: Tuple[str, object],
    images: Optional[np.ndarray],
    encoder_blob: bytes,
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = {
        "model": _materialize_model(model_payload),
        "images": images,
        "encoder_blob": encoder_blob,
    }


def _run_shard(task: Tuple[object, int, int, bool]):
    """One shard: ``payload`` is whatever :func:`plan_task_images`
    shipped -- inherited-array bounds (fork), a memory-mapped row slice
    (persistent service) or the shard's own array (spawn). ``start`` is
    the shard's global sample offset: counter-stream encoders position
    themselves on it so the shard draws exactly the rows of the
    unsharded stream; stateful encoders ignore it (fresh snapshot per
    shard, the legacy semantics)."""
    payload, start, timesteps, record = task
    state = _WORKER_STATE
    shard_images = resolve_task_images(payload, state["images"])
    encoder = pickle.loads(state["encoder_blob"]).for_samples(start)
    return state["model"].forward(
        shard_images, timesteps, encoder, record=record
    )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def sharded_forward(
    model,
    images: np.ndarray,
    timesteps: int,
    encoder=None,
    record: bool = False,
    shards: Optional[int] = None,
    shard_size: Optional[int] = None,
    workers: Optional[int] = None,
    model_path: Optional[str] = None,
    timeout: Optional[float] = None,
    retry=None,
):
    """One merged forward pass over ``images``, sharded across workers.

    Args:
        model: the :class:`DeployableNetwork` to evaluate.
        images: (N, C, H, W) batch.
        timesteps: T.
        encoder: input encoder; shipped once and positioned per shard
            with ``for_samples(shard start)``, so counter-stream
            encoders are shard-geometry invariant (see the module
            docstring's determinism notes).
        record: keep per-layer spike trains (merged along the sample
            axis; costly across processes -- prefer ``record=False`` for
            dataset-scale evaluation).
        shards / shard_size: shard geometry, see :func:`shard_slices`.
        workers: worker count; ``None`` resolves via ``REPRO_WORKERS``.
        model_path: optional cached ``.npz`` artifact path; when given,
            workers load the model (and its plan sidecar) from disk
            instead of receiving a pickled copy.
        timeout: optional wall-clock budget (seconds) for the pooled
            call -- :class:`~repro.errors.WorkerTimeoutError` on expiry
            (see :func:`repro.parallel.pool.run_tasks`; the serial
            fallback runs inline and ignores it). This is how the
            serving layer propagates request deadlines into the
            execution path. With retries enabled the budget covers the
            whole call, recovery rounds included.
        retry: a :class:`~repro.parallel.retry.RetryPolicy`; ``None``
            (the default) resolves one from ``REPRO_RETRY_*`` -- pooled
            shard evaluation is therefore *self-healing by default*: a
            crashed or wedged shard is re-executed on a recovered pool,
            byte-identically (shards are pure functions of their
            coordinates), and only a task that kills its worker on
            every allowed attempt surfaces as a
            :class:`~repro.errors.PoisonTaskError` (carrying the
            surviving shard outputs). ``REPRO_RETRY_MAX_ATTEMPTS=1``
            restores single-shot semantics.
    """
    from repro.snn.encoding import DirectEncoder

    images = np.asarray(images, dtype=np.float32)
    slices = shard_slices(len(images), shards=shards, shard_size=shard_size)
    encoder_blob = pickle.dumps(encoder if encoder is not None else DirectEncoder())
    count = min(resolve_workers(workers), len(slices))
    if count <= 1 or len(slices) <= 1:
        parts = []
        for piece in slices:
            shard_encoder = pickle.loads(encoder_blob).for_samples(piece.start)
            parts.append(
                model.forward(
                    images[piece], timesteps, shard_encoder, record=record
                )
            )
        return merge_outputs(parts)
    # Under fork-per-call the live object (attached plan, warm caches
    # included) reaches workers through the inherited address space for
    # free; the disk artifact + sidecar pays off whenever workers must
    # materialise state explicitly (spawn, or the persistent service)
    # and would otherwise be shipped the whole pickled model.
    use_path = model_path is not None and not _inherit_via_fork()
    payload = (
        ("path", model_path, model.weights_digest())
        if use_path
        else ("object", model, None)
    )
    init_images, image_payloads, cleanup = plan_task_images(images, slices)
    tasks = [
        (image_payload, piece.start, timesteps, record)
        for image_payload, piece in zip(image_payloads, slices)
    ]
    if retry is None:
        from repro.parallel.retry import resolve_retry_policy

        retry = resolve_retry_policy()
    try:
        parts = run_tasks(
            _run_shard,
            tasks,
            workers=count,
            initializer=_init_shard_worker,
            initargs=(payload, init_images, encoder_blob),
            timeout=timeout,
            retry=retry,
        )
    finally:
        cleanup()
    return merge_outputs(parts)
