"""Analytic models of the prior works the paper compares against.

Table III pits the hybrid accelerator against two published designs:

* **SyncNN** (Panchapakesan et al., TRETS 2022 -- reference [15]): an
  event-driven design with quantization support on a ZCU102,
* **Gerlinghoff et al.** (DATE 2022 -- reference [7]): a resource-
  efficient accelerator supporting emerging neural encodings on the same
  XCVU13P; the paper's closest comparison point.

Like the paper, the comparison uses these works' *reported* numbers as
anchors; the classes also expose simple first-order scaling models (cycle
counts from their published dataflows) so ablations can ask "what if"
questions without pretending to bit-accuracy.
"""

from repro.baselines.prior_work import (
    GERLINGHOFF_DATE22,
    SYNCNN_CIFAR10,
    SYNCNN_SVHN,
    PriorWorkPoint,
    all_baselines,
)
from repro.baselines.rate_coded import rate_coded_config

__all__ = [
    "GERLINGHOFF_DATE22",
    "PriorWorkPoint",
    "SYNCNN_CIFAR10",
    "SYNCNN_SVHN",
    "all_baselines",
    "rate_coded_config",
]
