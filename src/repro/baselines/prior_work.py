"""Published operating points of the Table III baselines.

Values are taken verbatim from the paper's Table III (which itself quotes
the original publications); ``None`` marks figures the original work did
not report ('--' entries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class PriorWorkPoint:
    """One published accelerator result used as a comparison anchor."""

    study: str
    dataset: str
    network: str
    weight_precision: str
    accuracy_percent: float
    platform: str
    fmax_mhz: float
    power_w: float
    latency_ms: Optional[float]
    energy_mj: Optional[float]
    throughput_fps: float

    def energy_per_frame_mj(self) -> Optional[float]:
        """Energy per frame from power/throughput when not reported."""
        if self.energy_mj is not None:
            return self.energy_mj
        if self.throughput_fps > 0:
            return 1e3 * self.power_w / self.throughput_fps
        return None


SYNCNN_SVHN = PriorWorkPoint(
    study="SyncNN [15]",
    dataset="svhn",
    network="VGG11",
    weight_precision="4-bit",
    accuracy_percent=89.0,
    platform="ZCU102",
    fmax_mhz=200.0,
    power_w=0.4,
    latency_ms=None,
    energy_mj=None,
    throughput_fps=65.0,
)

SYNCNN_CIFAR10 = PriorWorkPoint(
    study="SyncNN [15]",
    dataset="cifar10",
    network="VGG11",
    weight_precision="4-bit",
    accuracy_percent=78.0,
    platform="ZCU102",
    fmax_mhz=200.0,
    power_w=0.4,
    latency_ms=None,
    energy_mj=None,
    throughput_fps=62.0,
)

GERLINGHOFF_DATE22 = PriorWorkPoint(
    study="Gerlinghoff [7]",
    dataset="cifar100",
    network="VGG11",
    weight_precision="32-bit",
    accuracy_percent=60.1,
    platform="XCVU13P",
    fmax_mhz=115.0,
    power_w=4.9,
    latency_ms=210.0,
    energy_mj=None,
    throughput_fps=4.7,
)


def all_baselines() -> List[PriorWorkPoint]:
    """Every Table III anchor, in the paper's row order."""
    return [SYNCNN_SVHN, SYNCNN_CIFAR10, GERLINGHOFF_DATE22]
