"""The rate-coding baseline configuration (Table II methodology).

A rate-coded network receives binary spikes at the input, so it needs
only sparse cores; for a fair comparison the paper powers the dense core
down. This helper derives that operating point from any direct-coding
configuration.
"""

from __future__ import annotations

from dataclasses import replace

from repro.hw.config import AcceleratorConfig


def rate_coded_config(config: AcceleratorConfig) -> AcceleratorConfig:
    """Clone ``config`` with the dense core gated off.

    The input layer's allocation entry is reinterpreted as a sparse-core
    NC count; the paper's LW tuples use 1 there, which carries over as a
    single NC serving the (now event-driven) input layer.
    """
    return replace(
        config,
        name=f"{config.name}-rate",
        use_dense_core=False,
    )
