"""Class-conditional synthetic image generators.

Three families mirror the paper's benchmarks:

* :func:`svhn_like` -- house-number digits: a 5x7 glyph rendered with
  random colours, position jitter and background clutter. Like SVHN it is
  the easiest of the three (the paper reaches 94.3%).
* :func:`cifar10_like` -- 10 object classes become 10 oriented band-pass
  textures with class-specific colour tints and moderate noise (paper:
  86.6%).
* :func:`cifar100_like` -- 100 fine-grained classes: orientation x
  frequency x tint combinations separated by much smaller margins and
  heavier noise (paper: 57.3%).

All generators are deterministic in (seed, num_samples, image_size), emit
float32 frames in [0, 1] with interleaved labels (sample ``i`` has class
``i % num_classes``), and accept any even ``image_size`` >= 8 so the same
code drives tiny unit-test runs and paper-scale sweeps.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.datasets.loaders import Dataset
from repro.errors import DatasetError
from repro.utils.rng import SeedLike, new_rng

DATASET_NAMES = ("svhn", "cifar10", "cifar100")

# 5x7 digit glyphs (1 = ink). The classic seven-segment-ish bitmap font.
_DIGIT_GLYPHS = {
    0: ["01110", "10001", "10011", "10101", "11001", "10001", "01110"],
    1: ["00100", "01100", "00100", "00100", "00100", "00100", "01110"],
    2: ["01110", "10001", "00001", "00010", "00100", "01000", "11111"],
    3: ["11111", "00010", "00100", "00010", "00001", "10001", "01110"],
    4: ["00010", "00110", "01010", "10010", "11111", "00010", "00010"],
    5: ["11111", "10000", "11110", "00001", "00001", "10001", "01110"],
    6: ["00110", "01000", "10000", "11110", "10001", "10001", "01110"],
    7: ["11111", "00001", "00010", "00100", "01000", "01000", "01000"],
    8: ["01110", "10001", "10001", "01110", "10001", "10001", "01110"],
    9: ["01110", "10001", "10001", "01111", "00001", "00010", "01100"],
}


def _validate(num_samples: int, image_size: int) -> None:
    if num_samples < 1:
        raise DatasetError(f"num_samples must be >= 1, got {num_samples}")
    if image_size < 8 or image_size % 2:
        raise DatasetError(
            f"image_size must be an even integer >= 8, got {image_size}"
        )


def _glyph_array(digit: int) -> np.ndarray:
    rows = _DIGIT_GLYPHS[digit]
    return np.array([[int(ch) for ch in row] for row in rows], dtype=np.float32)


def _resize_nearest(img: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Nearest-neighbour resize (no scipy dependency in the hot path)."""
    in_h, in_w = img.shape
    rows = (np.arange(out_h) * in_h // out_h).clip(0, in_h - 1)
    cols = (np.arange(out_w) * in_w // out_w).clip(0, in_w - 1)
    return img[np.ix_(rows, cols)]


def svhn_like(
    num_samples: int,
    image_size: int = 32,
    seed: SeedLike = 0,
) -> Dataset:
    """Digit-glyph dataset (10 classes, SVHN difficulty tier)."""
    _validate(num_samples, image_size)
    rng = new_rng(seed)
    images = np.empty((num_samples, 3, image_size, image_size), dtype=np.float32)
    labels = np.empty(num_samples, dtype=np.int64)
    glyph_h = max(6, int(image_size * 0.7))
    glyph_w = max(4, int(image_size * 0.5))
    # Real SVHN frames are digit-centred crops, so the glyph sits near the
    # centre with small jitter (not at arbitrary positions).
    jitter = max(1, image_size // 8)
    centre_r = (image_size - glyph_h) // 2
    centre_c = (image_size - glyph_w) // 2
    for i in range(num_samples):
        digit = i % 10
        labels[i] = digit
        glyph = _resize_nearest(_glyph_array(digit), glyph_h, glyph_w)
        canvas = np.zeros((image_size, image_size), dtype=np.float32)
        r = int(np.clip(centre_r + rng.integers(-jitter, jitter + 1), 0, image_size - glyph_h))
        c = int(np.clip(centre_c + rng.integers(-jitter, jitter + 1), 0, image_size - glyph_w))
        canvas[r : r + glyph_h, c : c + glyph_w] = glyph
        background = rng.uniform(0.0, 0.3, size=3)
        foreground = rng.uniform(0.65, 1.0, size=3)
        frame = (
            background[:, None, None]
            + canvas[None, :, :] * (foreground - background)[:, None, None]
        )
        frame += rng.normal(0.0, 0.06, size=frame.shape)
        images[i] = np.clip(frame, 0.0, 1.0)
    return Dataset(images, labels, num_classes=10, name="svhn")


def _texture_frame(
    rng: np.random.Generator,
    image_size: int,
    orientation: float,
    frequency: float,
    tint: np.ndarray,
    noise_std: float,
) -> np.ndarray:
    """One oriented sinusoidal texture with a colour tint and noise."""
    coords = np.linspace(-1.0, 1.0, image_size, dtype=np.float32)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    angle = orientation + rng.normal(0.0, 0.06)
    phase = rng.uniform(0.0, 2.0 * np.pi)
    carrier = np.cos(
        2.0 * np.pi * frequency * (xx * np.cos(angle) + yy * np.sin(angle)) + phase
    )
    pattern = 0.5 + 0.5 * carrier
    amplitude = rng.uniform(0.7, 1.0)
    frame = tint[:, None, None] * (0.25 + 0.6 * amplitude * pattern[None, :, :])
    frame += rng.normal(0.0, noise_std, size=frame.shape)
    return np.clip(frame, 0.0, 1.0).astype(np.float32)


def cifar10_like(
    num_samples: int,
    image_size: int = 32,
    seed: SeedLike = 0,
) -> Dataset:
    """Ten oriented-texture classes (CIFAR-10 difficulty tier)."""
    _validate(num_samples, image_size)
    rng = new_rng(seed)
    images = np.empty((num_samples, 3, image_size, image_size), dtype=np.float32)
    labels = np.empty(num_samples, dtype=np.int64)
    tints = 0.55 + 0.45 * np.abs(
        np.sin(np.outer(np.arange(10), np.array([1.0, 2.0, 3.0])) + 0.7)
    )
    for i in range(num_samples):
        cls = i % 10
        labels[i] = cls
        orientation = cls * np.pi / 10.0
        frequency = 2.0 + (cls % 3)
        images[i] = _texture_frame(
            rng, image_size, orientation, frequency, tints[cls], noise_std=0.24
        )
    return Dataset(images, labels, num_classes=10, name="cifar10")


def cifar100_like(
    num_samples: int,
    image_size: int = 32,
    seed: SeedLike = 0,
) -> Dataset:
    """One hundred fine-grained texture classes (CIFAR-100 tier).

    Classes tile a 10-orientation x 10-frequency grid: adjacent classes
    differ by 18 degrees *or* a 0.6-cycle frequency step, with a noise
    floor above :func:`cifar10_like` -- a 100-way discrimination task that
    is clearly harder than the 10-way sets while staying learnable.
    """
    _validate(num_samples, image_size)
    rng = new_rng(seed)
    images = np.empty((num_samples, 3, image_size, image_size), dtype=np.float32)
    labels = np.empty(num_samples, dtype=np.int64)
    tints = 0.5 + 0.5 * np.abs(
        np.sin(np.outer(np.arange(100), np.array([0.31, 0.57, 0.93])) + 1.3)
    )
    for i in range(num_samples):
        cls = i % 100
        labels[i] = cls
        orientation = (cls % 10) * np.pi / 10.0
        frequency = 1.5 + (cls // 10) * 0.6
        images[i] = _texture_frame(
            rng, image_size, orientation, frequency, tints[cls], noise_std=0.18
        )
    return Dataset(images, labels, num_classes=100, name="cifar100")


_GENERATORS: Dict[str, Callable[..., Dataset]] = {
    "svhn": svhn_like,
    "cifar10": cifar10_like,
    "cifar100": cifar100_like,
}


def make_dataset(
    name: str,
    num_samples: int,
    image_size: int = 32,
    seed: SeedLike = 0,
) -> Dataset:
    """Dispatch by dataset name ('svhn' | 'cifar10' | 'cifar100')."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; expected one of {DATASET_NAMES}"
        ) from None
    return generator(num_samples, image_size=image_size, seed=seed)
