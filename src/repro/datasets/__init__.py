"""Deterministic synthetic stand-ins for the paper's datasets.

The evaluation uses SVHN, CIFAR-10 and CIFAR-100; this reproduction runs
offline, so :mod:`repro.datasets.synthetic` generates class-conditional
image distributions with the same interface (3xHxW float frames in
[0, 1]) and -- crucially -- the same *difficulty ordering*:
``svhn_like`` (digit glyphs, easiest) > ``cifar10_like`` (10 oriented
textures) > ``cifar100_like`` (100 fine-grained textures, hardest).
"""

from repro.datasets.loaders import Dataset, train_test_split
from repro.datasets.synthetic import (
    DATASET_NAMES,
    cifar10_like,
    cifar100_like,
    make_dataset,
    svhn_like,
)

__all__ = [
    "DATASET_NAMES",
    "Dataset",
    "cifar10_like",
    "cifar100_like",
    "make_dataset",
    "svhn_like",
    "train_test_split",
]
