"""Dataset container, splitting and batching."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.utils.rng import SeedLike, new_rng


@dataclass
class Dataset:
    """An in-memory labelled image set.

    Attributes:
        images: (N, C, H, W) float32 frames in [0, 1].
        labels: (N,) integer class labels.
        num_classes: label-space size (may exceed max(labels)+1 for small
            samples of many-class sets).
        name: generator name, used for artifact caching.
    """

    images: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float32)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.images.ndim != 4:
            raise DatasetError(f"images must be (N, C, H, W), got {self.images.shape}")
        if len(self.images) != len(self.labels):
            raise DatasetError(
                f"{len(self.images)} images but {len(self.labels)} labels"
            )
        if self.num_classes < 2:
            raise DatasetError(f"num_classes must be >= 2, got {self.num_classes}")

    def __len__(self) -> int:
        return len(self.images)

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.images.shape[1:])

    def batches(
        self,
        batch_size: int,
        shuffle: bool = False,
        seed: SeedLike = None,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield (images, labels) minibatches."""
        if batch_size < 1:
            raise DatasetError(f"batch_size must be >= 1, got {batch_size}")
        order = np.arange(len(self))
        if shuffle:
            new_rng(seed).shuffle(order)
        for start in range(0, len(self), batch_size):
            index = order[start : start + batch_size]
            yield self.images[index], self.labels[index]

    def subset(self, count: int) -> "Dataset":
        """First ``count`` samples (class balance is preserved by the
        generators' interleaved layout)."""
        if count < 1 or count > len(self):
            raise DatasetError(
                f"subset size {count} out of range 1..{len(self)}"
            )
        return Dataset(
            self.images[:count], self.labels[:count], self.num_classes, self.name
        )


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.2, seed: SeedLike = 0
) -> Tuple[Dataset, Dataset]:
    """Shuffle and split into train/test partitions."""
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError(
            f"test_fraction must be in (0, 1), got {test_fraction}"
        )
    rng = new_rng(seed)
    order = rng.permutation(len(dataset))
    cut = max(1, int(round(len(dataset) * test_fraction)))
    test_idx, train_idx = order[:cut], order[cut:]
    if len(train_idx) == 0:
        raise DatasetError("split left no training samples")
    make = lambda idx, suffix: Dataset(  # noqa: E731 - tiny local helper
        dataset.images[idx],
        dataset.labels[idx],
        dataset.num_classes,
        f"{dataset.name}-{suffix}",
    )
    return make(train_idx, "train"), make(test_idx, "test")
