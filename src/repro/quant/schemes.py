"""Quantization schemes (bit width, symmetry, granularity)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import QuantizationError


@dataclass(frozen=True)
class QuantScheme:
    """A uniform integer quantization recipe.

    Attributes:
        bits: integer width; ``None`` denotes full precision (the fp32
            reference arm of every paper experiment).
        symmetric: symmetric (zero-point = 0) quantization; the paper's
            shift-and-add de-quantizer implies symmetric scales.
        per_channel: one scale per output channel (row) instead of one per
            tensor; preserves accuracy after batch-norm folding.
        pow2_scale: snap each scale *up* to the next power of two. With a
            power-of-two scale every dequantized weight q * 2^e and every
            float32 partial sum of binary-spike activations is exactly
            representable (sum of |q| over a 3x3x256 receptive field is
            at most 127 * 2304 < 2^24), so the integer datapath matches
            the float reference bit-for-bit in any fold order. This is
            the software analogue of the paper's shift-and-add
            de-quantizer, which only supports power-of-two scales anyway.
    """

    bits: Optional[int] = 4
    symmetric: bool = True
    per_channel: bool = True
    pow2_scale: bool = False

    def __post_init__(self) -> None:
        if self.bits is not None and not 2 <= self.bits <= 16:
            raise QuantizationError(
                f"bits must be in [2, 16] or None for fp32, got {self.bits}"
            )
        if self.bits is not None and not self.symmetric:
            raise QuantizationError(
                "asymmetric quantization is not supported by the "
                "shift-and-add hardware model"
            )
        if self.bits is None and self.pow2_scale:
            raise QuantizationError("fp32 scheme has no scales to snap")

    @property
    def is_float(self) -> bool:
        return self.bits is None

    @property
    def qmax(self) -> int:
        """Largest representable magnitude, e.g. 7 for int4."""
        if self.bits is None:
            raise QuantizationError("fp32 scheme has no integer range")
        return 2 ** (self.bits - 1) - 1

    @property
    def name(self) -> str:
        if self.bits is None:
            return "fp32"
        suffix = "p2" if self.pow2_scale else ""
        return f"int{self.bits}{suffix}"

    def __str__(self) -> str:
        return self.name


#: The two precisions compared throughout the paper plus an int8 midpoint.
INT4 = QuantScheme(bits=4)
INT8 = QuantScheme(bits=8)
FP32 = QuantScheme(bits=None)
#: Power-of-two-scale variants: identical bit widths, but the integer
#: runtime lowering is bit-exact against the float reference (see
#: ``QuantScheme.pow2_scale``) at a small accuracy cost from the coarser
#: scale grid.
INT4_P2 = QuantScheme(bits=4, pow2_scale=True)
INT8_P2 = QuantScheme(bits=8, pow2_scale=True)


def scheme_by_name(name: str) -> QuantScheme:
    """Look up 'fp32' / 'int4' / 'int8' / 'intN' / 'intNp2'."""
    normalized = name.strip().lower()
    if normalized == "fp32":
        return FP32
    if normalized.startswith("int"):
        body = normalized[3:]
        pow2 = body.endswith("p2")
        if pow2:
            body = body[:-2]
        try:
            return QuantScheme(bits=int(body), pow2_scale=pow2)
        except ValueError:
            pass
    raise QuantizationError(f"unknown quantization scheme {name!r}")
