"""Quantization schemes (bit width, symmetry, granularity)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import QuantizationError


@dataclass(frozen=True)
class QuantScheme:
    """A uniform integer quantization recipe.

    Attributes:
        bits: integer width; ``None`` denotes full precision (the fp32
            reference arm of every paper experiment).
        symmetric: symmetric (zero-point = 0) quantization; the paper's
            shift-and-add de-quantizer implies symmetric scales.
        per_channel: one scale per output channel (row) instead of one per
            tensor; preserves accuracy after batch-norm folding.
    """

    bits: Optional[int] = 4
    symmetric: bool = True
    per_channel: bool = True

    def __post_init__(self) -> None:
        if self.bits is not None and not 2 <= self.bits <= 16:
            raise QuantizationError(
                f"bits must be in [2, 16] or None for fp32, got {self.bits}"
            )
        if self.bits is not None and not self.symmetric:
            raise QuantizationError(
                "asymmetric quantization is not supported by the "
                "shift-and-add hardware model"
            )

    @property
    def is_float(self) -> bool:
        return self.bits is None

    @property
    def qmax(self) -> int:
        """Largest representable magnitude, e.g. 7 for int4."""
        if self.bits is None:
            raise QuantizationError("fp32 scheme has no integer range")
        return 2 ** (self.bits - 1) - 1

    @property
    def name(self) -> str:
        return "fp32" if self.bits is None else f"int{self.bits}"

    def __str__(self) -> str:
        return self.name


#: The two precisions compared throughout the paper plus an int8 midpoint.
INT4 = QuantScheme(bits=4)
INT8 = QuantScheme(bits=8)
FP32 = QuantScheme(bits=None)


def scheme_by_name(name: str) -> QuantScheme:
    """Look up 'fp32' / 'int4' / 'int8' / 'intN'."""
    normalized = name.strip().lower()
    if normalized == "fp32":
        return FP32
    if normalized.startswith("int"):
        try:
            return QuantScheme(bits=int(normalized[3:]))
        except ValueError:
            pass
    raise QuantizationError(f"unknown quantization scheme {name!r}")
