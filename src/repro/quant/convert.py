"""Conversion to a deployable (inference-only) network.

:func:`convert` takes a trained :class:`~repro.snn.network.SpikingNetwork`
-- plain or QAT-wrapped -- folds batch norm away, quantizes weights and
biases per the scheme, and emits a :class:`DeployableNetwork`: the exact
functional model of what the accelerator executes (integer weights +
scales, float membranes). The hardware simulator wraps this model with
timing, resource and power estimates; keeping function and timing apart
makes each independently testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import QuantizationError, ShapeError
from repro.quant.fold import fold_batchnorm
from repro.quant.quantizer import dequantize_array, quantize_array
from repro.quant.schemes import FP32, QuantScheme, scheme_by_name
from repro.runtime import (
    BufferPool,
    InferenceEngine,
    LayerCounters,
    plan_deployable,
    runtime_config,
    stack_encoder_frames,
)
from repro.snn.encoding import DirectEncoder, Encoder
from repro.snn.metrics import SpikeStats
from repro.snn.network import SpikingNetwork
from repro.snn.neuron import LIFConfig
from repro.tensor.ops import im2col
from repro.utils.serialization import load_npz, save_npz


@dataclass
class DeployableLayer:
    """One weight-bearing layer in deployment form.

    ``weight_q`` holds integers (int32 storage) when quantized, floats for
    fp32. ``pool_after`` is the OR-pool window applied to this layer's
    output spikes (1 = none). ``is_input_layer`` marks the direct-coding
    dense-core layer.
    """

    name: str
    kind: str  # 'conv' | 'fc'
    weight_q: np.ndarray
    bias_q: np.ndarray
    weight_scale: Optional[np.ndarray]
    bias_scale: Optional[np.ndarray]
    kernel: int
    padding: int
    input_shape: Tuple[int, ...]
    output_shape: Tuple[int, ...]
    pool_after: int = 1
    is_input_layer: bool = False

    def effective_weight(self) -> np.ndarray:
        """Dequantized weights -- what the shift-and-add units produce."""
        if self.weight_scale is None:
            return self.weight_q.astype(np.float32)
        return dequantize_array(self.weight_q, self.weight_scale)

    def effective_bias(self) -> np.ndarray:
        if self.bias_scale is None:
            return self.bias_q.astype(np.float32)
        return dequantize_array(self.bias_q, self.bias_scale)

    @property
    def out_channels(self) -> int:
        return int(self.weight_q.shape[0])

    @property
    def weight_count(self) -> int:
        return int(self.weight_q.size)

    def weight_storage_bits(self, weight_bits: int) -> int:
        """Bits of on-chip storage for this layer's weights + biases."""
        return (self.weight_q.size + self.bias_q.size) * weight_bits

    @property
    def zero_weight_fraction(self) -> float:
        """Fraction of exactly-zero weights (quantization snaps small
        weights to zero -- one mechanism behind Fig. 1's sparsity gain)."""
        return float((self.effective_weight() == 0).mean())


@dataclass
class DeployableOutput:
    """Results of one deployable forward pass.

    ``spike_trains`` keeps the legacy per-timestep list layout;
    ``spike_trains_stacked`` exposes the same trains as one ``(T, N, ...)``
    array per layer (zero-copy views of each other on the runtime path),
    which the hardware simulator consumes in a single batched pass.
    """

    logits: np.ndarray
    stats: SpikeStats
    input_spike_totals: Dict[str, float] = field(default_factory=dict)
    spike_trains: Optional[Dict[str, List[np.ndarray]]] = None
    spike_trains_stacked: Optional[Dict[str, np.ndarray]] = None
    runtime_counters: Optional[Dict[str, LayerCounters]] = None


class DeployableNetwork:
    """Inference-only network with (optionally) integer weights.

    Execution is pure NumPy -- no autograd tape -- and mirrors the
    hardware's arithmetic: dequantized weights, float membrane
    accumulation, reset-by-subtraction LIF, OR-pooling on spikes.
    """

    def __init__(
        self,
        layers: List[DeployableLayer],
        lif: LIFConfig,
        num_classes: int,
        scheme: QuantScheme,
        input_shape: Tuple[int, int, int],
    ) -> None:
        if not layers:
            raise QuantizationError("deployable network needs at least one layer")
        self.layers = layers
        self.lif = lif
        self.num_classes = num_classes
        self.scheme = scheme
        self.input_shape = tuple(input_shape)
        self.population_size = layers[-1].out_channels
        if self.population_size % num_classes:
            raise QuantizationError(
                f"population {self.population_size} not divisible by "
                f"{num_classes} classes"
            )
        self.population_group = self.population_size // num_classes
        self._runtime_plan = None
        self._runtime_buffers = BufferPool()

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def forward(
        self,
        images: np.ndarray,
        timesteps: int,
        encoder: Optional[Encoder] = None,
        record: bool = False,
    ) -> DeployableOutput:
        """Run ``timesteps`` of inference on an image batch.

        Routes through the fused inference runtime unless it is
        disabled; see :mod:`repro.runtime`. Shapes on the unblocked
        fold (every layer, when ``event_kblock=0``) are bit-exact
        against :meth:`forward_legacy`; deep conv shapes on the default
        canonical blocked fold are bit-exact across every dispatch
        setting (forced dense == forced event == cost-routed) but may
        differ from the legacy loop's full-``K`` GEMM in the last ulp.
        """
        images = np.asarray(images, dtype=np.float32)
        if images.ndim != 4 or images.shape[1:] != self.input_shape:
            raise ShapeError(
                f"expected (N, {self.input_shape}) images, got {images.shape}"
            )
        encoder = encoder or DirectEncoder()
        if runtime_config().enabled and timesteps >= 1:
            return self._forward_runtime(images, timesteps, encoder, record)
        return self.forward_legacy(images, timesteps, encoder, record)

    def forward_legacy(
        self,
        images: np.ndarray,
        timesteps: int,
        encoder: Optional[Encoder] = None,
        record: bool = False,
    ) -> DeployableOutput:
        """The original per-timestep loop (reference + fallback path)."""
        images = np.asarray(images, dtype=np.float32)
        if images.ndim != 4 or images.shape[1:] != self.input_shape:
            raise ShapeError(
                f"expected (N, {self.input_shape}) images, got {images.shape}"
            )
        encoder = encoder or DirectEncoder()
        encoder.reset()
        n = images.shape[0]
        beta, theta = self.lif.beta, self.lif.threshold

        stats = SpikeStats(samples=n, timesteps=timesteps)
        input_totals: Dict[str, float] = {}
        trains: Optional[Dict[str, List[np.ndarray]]] = (
            {layer.name: [] for layer in self.layers} if record else None
        )
        membranes: Dict[str, Optional[np.ndarray]] = {
            layer.name: None for layer in self.layers
        }
        accumulated = np.zeros((n, self.population_size), dtype=np.float32)

        for t in range(timesteps):
            x = encoder.encode(images, t).data
            for layer in self.layers:
                if trains is not None:
                    trains[layer.name].append(x.copy())
                input_totals[layer.name] = (
                    input_totals.get(layer.name, 0.0) + float(x.sum())
                )
                current = self._layer_current(layer, x)
                previous = membranes[layer.name]
                integrated = current if previous is None else beta * previous + current
                spikes = (integrated > theta).astype(np.float32)
                membranes[layer.name] = integrated - spikes * theta
                stats.record(layer.name, t, spikes)
                x = spikes
                if layer.pool_after > 1:
                    x = _or_pool(x, layer.pool_after)
            accumulated += x

        logits = accumulated.reshape(n, self.num_classes, self.population_group).sum(
            axis=2
        )
        return DeployableOutput(
            logits=logits,
            stats=stats,
            input_spike_totals=input_totals,
            spike_trains=trains,
        )

    def _forward_runtime(
        self,
        images: np.ndarray,
        timesteps: int,
        encoder: Encoder,
        record: bool,
    ) -> DeployableOutput:
        stacked, time_invariant = stack_encoder_frames(
            encoder, images, timesteps, record=record
        )
        if self._runtime_plan is None:
            self._runtime_plan = plan_deployable(self)
        engine = InferenceEngine(
            self._runtime_plan, buffers=self._runtime_buffers
        )
        result = engine.run(
            stacked,
            record=record,
            analog_first=encoder.analog_input,
            time_invariant=time_invariant,
        )
        n = images.shape[0]
        logits = result.accumulated.reshape(
            n, self.num_classes, self.population_group
        ).sum(axis=2)
        trains = (
            {name: list(arr) for name, arr in result.trains.items()}
            if result.trains is not None
            else None
        )
        return DeployableOutput(
            logits=logits,
            stats=result.stats,
            input_spike_totals=result.input_totals,
            spike_trains=trains,
            spike_trains_stacked=result.trains,
            runtime_counters=result.counters,
        )

    def invalidate_runtime_cache(self) -> None:
        """Drop the cached plan (call after mutating layer weights)."""
        self._runtime_plan = None
        self._runtime_buffers.clear()

    def weights_digest(self) -> str:
        """Content digest of the stored (quantized) parameters.

        Cheap (no dequantization) and stable across save/load; used to
        tie a ``.plan.npz`` sidecar to the exact model it was lowered
        from, so a retrain can never be served by a stale plan.
        """
        from repro.runtime import arrays_digest

        arrays = []
        for layer in self.layers:
            arrays.append(layer.weight_q)
            arrays.append(layer.bias_q)
            if layer.weight_scale is not None:
                arrays.append(layer.weight_scale)
            if layer.bias_scale is not None:
                arrays.append(layer.bias_scale)
        return arrays_digest(arrays)

    def attach_plan(self, plan) -> None:
        """Adopt a pre-lowered runtime plan (e.g. a ``.plan.npz`` sidecar).

        The plan must describe this network; origin (a deployable
        lowering, not a SpikingNetwork one), LIF constants and layer
        names/shapes are checked, a mismatched plan raises
        ``QuantizationError`` (weights are deliberately not compared --
        the sidecar *is* the lowered weight store; staleness is guarded
        by the ``model_digest`` check in :func:`repro.runtime.load_plan`).
        """
        if plan.source != "deployable" or plan.spike_rule != "threshold":
            raise QuantizationError(
                f"plan was lowered from {plan.source!r} (spike rule "
                f"{plan.spike_rule!r}); deployable networks require a "
                "deployable lowering"
            )
        if (
            plan.num_classes != self.num_classes
            or plan.population_group != self.population_group
            or plan.beta != self.lif.beta
            or plan.threshold != self.lif.threshold
        ):
            raise QuantizationError(
                "plan head/LIF constants do not match this network"
            )
        if len(plan.layers) != len(self.layers):
            raise QuantizationError(
                f"plan has {len(plan.layers)} layers; network has "
                f"{len(self.layers)}"
            )
        for plan_layer, layer in zip(plan.layers, self.layers):
            if (
                plan_layer.name != layer.name
                or plan_layer.kind != layer.kind
                or plan_layer.input_shape != tuple(layer.input_shape)
                or plan_layer.output_shape != tuple(layer.output_shape)
            ):
                raise QuantizationError(
                    f"plan layer {plan_layer.name!r} does not match network "
                    f"layer {layer.name!r}"
                )
        self._runtime_plan = plan

    def _layer_current(self, layer: DeployableLayer, x: np.ndarray) -> np.ndarray:
        weight = layer.effective_weight()
        bias = layer.effective_bias()
        if layer.kind == "conv":
            n = x.shape[0]
            cols = im2col(x, (layer.kernel, layer.kernel), 1, layer.padding)
            wmat = weight.reshape(layer.out_channels, -1)
            out = np.einsum("ok,nkp->nop", wmat, cols, optimize=True)
            oh, ow = layer.output_shape[1], layer.output_shape[2]
            return (
                out.reshape(n, layer.out_channels, oh, ow)
                + bias.reshape(1, -1, 1, 1)
            ).astype(np.float32)
        flat = x.reshape(x.shape[0], -1)
        if flat.shape[1] != weight.shape[1]:
            raise ShapeError(
                f"layer {layer.name} expects {weight.shape[1]} inputs, "
                f"got {flat.shape[1]}"
            )
        return (flat @ weight.T + bias).astype(np.float32)

    def predict(
        self,
        images: np.ndarray,
        timesteps: int,
        encoder: Optional[Encoder] = None,
        batch_size: int = 128,
    ) -> np.ndarray:
        """Class predictions, batched to bound memory.

        Offsets are threaded per batch (``encoder.for_samples``) so
        counter-stream encodings do not depend on ``batch_size``.
        """
        encoder = encoder or DirectEncoder()
        outputs = []
        for start in range(0, len(images), batch_size):
            out = self.forward(
                images[start : start + batch_size],
                timesteps,
                encoder.for_samples(start),
            )
            outputs.append(out.logits.argmax(axis=1))
        return np.concatenate(outputs) if outputs else np.empty(0, dtype=int)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        arrays: Dict[str, np.ndarray] = {}
        meta = {
            "scheme": self.scheme.name,
            "num_classes": self.num_classes,
            "input_shape": list(self.input_shape),
            "lif_beta": self.lif.beta,
            "lif_threshold": self.lif.threshold,
            "layers": [],
        }
        for index, layer in enumerate(self.layers):
            prefix = f"layer{index}"
            arrays[f"{prefix}.weight_q"] = layer.weight_q
            arrays[f"{prefix}.bias_q"] = layer.bias_q
            if layer.weight_scale is not None:
                arrays[f"{prefix}.weight_scale"] = layer.weight_scale
                arrays[f"{prefix}.bias_scale"] = layer.bias_scale
            meta["layers"].append(
                {
                    "name": layer.name,
                    "kind": layer.kind,
                    "kernel": layer.kernel,
                    "padding": layer.padding,
                    "input_shape": list(layer.input_shape),
                    "output_shape": list(layer.output_shape),
                    "pool_after": layer.pool_after,
                    "is_input_layer": layer.is_input_layer,
                    "quantized": layer.weight_scale is not None,
                }
            )
        save_npz(path, arrays, meta)

    @classmethod
    def load(cls, path: str) -> "DeployableNetwork":
        arrays, meta = load_npz(path)
        layers = []
        for index, info in enumerate(meta["layers"]):
            prefix = f"layer{index}"
            quantized = info["quantized"]
            layers.append(
                DeployableLayer(
                    name=info["name"],
                    kind=info["kind"],
                    weight_q=arrays[f"{prefix}.weight_q"],
                    bias_q=arrays[f"{prefix}.bias_q"],
                    weight_scale=arrays.get(f"{prefix}.weight_scale") if quantized else None,
                    bias_scale=arrays.get(f"{prefix}.bias_scale") if quantized else None,
                    kernel=info["kernel"],
                    padding=info["padding"],
                    input_shape=tuple(info["input_shape"]),
                    output_shape=tuple(info["output_shape"]),
                    pool_after=info["pool_after"],
                    is_input_layer=info["is_input_layer"],
                )
            )
        return cls(
            layers,
            lif=LIFConfig(beta=meta["lif_beta"], threshold=meta["lif_threshold"]),
            num_classes=meta["num_classes"],
            scheme=scheme_by_name(meta["scheme"]),
            input_shape=tuple(meta["input_shape"]),
        )

    def describe(self) -> str:
        lines = [
            f"DeployableNetwork({self.scheme.name}, input={self.input_shape}, "
            f"classes={self.num_classes})"
        ]
        for layer in self.layers:
            pool = f" +pool{layer.pool_after}" if layer.pool_after > 1 else ""
            dense = " [dense-core]" if layer.is_input_layer else ""
            lines.append(
                f"  {layer.name:<10s} {layer.kind:<5s} "
                f"{layer.input_shape} -> {layer.output_shape}{pool}{dense}"
            )
        return "\n".join(lines)


def _or_pool(x: np.ndarray, window: int) -> np.ndarray:
    """OR-gate max pooling on binary maps (hardware Sec. IV-B)."""
    n, c, h, w = x.shape
    return x.reshape(n, c, h // window, window, w // window, window).max(axis=(3, 5))


def convert(network: SpikingNetwork, scheme: QuantScheme = FP32) -> DeployableNetwork:
    """Fold BN, quantize, and package ``network`` for deployment."""
    folded = fold_batchnorm(network)
    layers: List[DeployableLayer] = []
    pending: Optional[DeployableLayer] = None
    for stage in network.stages:
        if stage.spec.kind == "pool":
            if pending is None:
                raise QuantizationError("pool layer precedes any compute layer")
            pending.pool_after = stage.spec.kernel
            continue
        weight, bias = folded[stage.name]
        if scheme.is_float:
            weight_q, weight_scale = weight, None
            bias_q, bias_scale = bias, None
        else:
            weight_q, weight_scale = quantize_array(weight, scheme)
            bias_scheme = QuantScheme(bits=scheme.bits, per_channel=False)
            bias_q, bias_scale = quantize_array(bias, bias_scheme)
        layer = DeployableLayer(
            name=stage.name,
            kind="conv" if stage.spec.kind == "conv" else "fc",
            weight_q=weight_q,
            bias_q=bias_q,
            weight_scale=weight_scale,
            bias_scale=bias_scale,
            kernel=stage.spec.kernel if stage.spec.kind == "conv" else 0,
            padding=(stage.spec.kernel // 2) if stage.spec.kind == "conv" else 0,
            input_shape=stage.input_shape,
            output_shape=stage.output_shape,
            is_input_layer=not layers,
        )
        layers.append(layer)
        pending = layer
    return DeployableNetwork(
        layers,
        lif=network.lif_config,
        num_classes=network.num_classes,
        scheme=scheme,
        input_shape=network.input_shape,
    )
