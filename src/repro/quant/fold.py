"""Batch-norm folding.

The accelerator has no batch-norm unit: at deployment BN's affine
transform is folded into the preceding convolution's weights and bias,

    w' = w * gamma / sqrt(var + eps)
    b' = beta + (b - mu) * gamma / sqrt(var + eps)

using the *running* statistics, which is exactly what evaluation-mode BN
applies -- so folding is mathematically lossless for inference.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.snn.layers import BatchNorm2d
from repro.snn.network import SpikingNetwork


def fold_batchnorm(
    network: SpikingNetwork,
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Return per-layer ``(weight, bias)`` with BN folded in.

    Layers without BN pass through unchanged (bias may be synthesised as
    zeros so every deployable layer has one). QAT wrappers are looked
    through: folding operates on the latent float weights; the conversion
    step re-quantizes afterwards.
    """
    folded: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for stage in network.compute_stages():
        layer = getattr(stage.layer, "inner", stage.layer)
        weight = layer.weight.data.copy()
        if layer.bias is not None:
            bias = layer.bias.data.copy()
        else:
            bias = np.zeros(weight.shape[0], dtype=np.float32)
        folded[stage.name] = _fold_one(weight, bias, stage.bn)
    return folded


def _fold_one(
    weight: np.ndarray,
    bias: np.ndarray,
    bn: Optional[BatchNorm2d],
) -> Tuple[np.ndarray, np.ndarray]:
    if bn is None:
        return weight, bias
    inv_std = 1.0 / np.sqrt(bn.running_var + bn.eps)
    gamma = bn.gamma.data
    beta = bn.beta.data
    factor = (gamma * inv_std).astype(np.float32)
    shape = (weight.shape[0],) + (1,) * (weight.ndim - 1)
    folded_weight = weight * factor.reshape(shape)
    folded_bias = beta + (bias - bn.running_mean) * factor
    return folded_weight.astype(np.float32), folded_bias.astype(np.float32)
