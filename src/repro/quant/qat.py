"""Fake-quant layer wrappers and network preparation for QAT."""

from __future__ import annotations

from typing import Dict, List, Union

import numpy as np

from repro.errors import QuantizationError
from repro.quant.quantizer import fake_quant
from repro.quant.schemes import QuantScheme
from repro.snn.layers import Module, SpikingConv2d, SpikingLinear
from repro.snn.network import SpikingNetwork
from repro.tensor import Tensor, ops


class _QATWrapper(Module):
    """Wraps a weight-bearing layer; quantizes weight+bias on every forward.

    The latent float parameters remain the trainable tensors (standard
    QAT); only the values flowing into the convolution are quantized.
    """

    def __init__(self, inner: Module, scheme: QuantScheme) -> None:
        if scheme.is_float:
            raise QuantizationError("QAT with the fp32 scheme is a no-op; "
                                    "train the plain network instead")
        self.inner = inner
        self.scheme = scheme

    # -- Module protocol (delegates to the wrapped layer) ---------------
    def parameters(self) -> List[Tensor]:
        return self.inner.parameters()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        self.inner.train(mode)
        return self

    def state_dict(self) -> Dict[str, np.ndarray]:
        return self.inner.state_dict()

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self.inner.load_state_dict(state)

    def _quantized_weight(self) -> Tensor:
        return fake_quant(self.inner.weight, self.scheme)

    def _quantized_bias(self) -> Union[Tensor, None]:
        if self.inner.bias is None:
            return None
        # Biases use per-tensor scales: they are vectors, so per-channel
        # granularity would degenerate to one scale per element.
        bias_scheme = QuantScheme(bits=self.scheme.bits, per_channel=False)
        return fake_quant(self.inner.bias, bias_scheme)


class QATConv2d(_QATWrapper):
    """Fake-quantized convolution layer."""

    def __init__(self, inner: SpikingConv2d, scheme: QuantScheme) -> None:
        if not isinstance(inner, SpikingConv2d):
            raise QuantizationError(
                f"QATConv2d wraps SpikingConv2d, got {type(inner).__name__}"
            )
        super().__init__(inner, scheme)

    def forward(self, x: Tensor) -> Tensor:
        return ops.conv2d(
            x,
            self._quantized_weight(),
            self._quantized_bias(),
            stride=1,
            padding=self.inner.padding,
        )

    __call__ = forward

    def __repr__(self) -> str:
        return f"QATConv2d({self.inner!r}, scheme={self.scheme.name})"


class QATLinear(_QATWrapper):
    """Fake-quantized fully connected layer."""

    def __init__(self, inner: SpikingLinear, scheme: QuantScheme) -> None:
        if not isinstance(inner, SpikingLinear):
            raise QuantizationError(
                f"QATLinear wraps SpikingLinear, got {type(inner).__name__}"
            )
        super().__init__(inner, scheme)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            x = x.reshape(x.shape[0], -1)
        return ops.linear(x, self._quantized_weight(), self._quantized_bias())

    __call__ = forward

    def __repr__(self) -> str:
        return f"QATLinear({self.inner!r}, scheme={self.scheme.name})"


def prepare_qat(network: SpikingNetwork, scheme: QuantScheme) -> SpikingNetwork:
    """Wrap every compute layer of ``network`` with fake-quant (in place).

    Idempotent-hostile by design: preparing twice raises, because nested
    fake-quant would double-round the weights.
    """
    if scheme.is_float:
        return network
    for stage in network.compute_stages():
        if isinstance(stage.layer, _QATWrapper):
            raise QuantizationError(
                f"layer {stage.name} is already QAT-prepared"
            )
        if isinstance(stage.layer, SpikingConv2d):
            stage.layer = QATConv2d(stage.layer, scheme)
        elif isinstance(stage.layer, SpikingLinear):
            stage.layer = QATLinear(stage.layer, scheme)
        else:
            raise QuantizationError(
                f"cannot QAT-wrap layer of type {type(stage.layer).__name__}"
            )
    network.invalidate_runtime_cache()
    return network


def strip_qat(network: SpikingNetwork) -> SpikingNetwork:
    """Remove fake-quant wrappers, restoring the latent float layers."""
    for stage in network.compute_stages():
        if isinstance(stage.layer, _QATWrapper):
            stage.layer = stage.layer.inner
    network.invalidate_runtime_cache()
    return network


def is_qat(network: SpikingNetwork) -> bool:
    """True when any compute layer carries a fake-quant wrapper."""
    return any(
        isinstance(stage.layer, _QATWrapper) for stage in network.compute_stages()
    )
