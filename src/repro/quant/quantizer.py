"""Uniform quantize / dequantize primitives and the fake-quant operator.

Rounding rule (one mode end-to-end): every float -> integer step uses
round-half-to-even (``np.round``), and every integer -> float step is a
single float32 multiply by the scale followed by a single float32 bias
add, i.e. ``fl(fl(acc) * scale) + bias`` with the default IEEE-754
round-half-to-even at each operation. :func:`quantize_array`,
:func:`dequantize_array`, :func:`fake_quant` and the integer runtime
boundary (:func:`dequantize_accumulator`) all follow this rule, so the
integer datapath and the dequantized-float reference disagree only
through float summation order -- and not at all when the scale is a
power of two (see ``QuantScheme.pow2_scale``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import QuantizationError
from repro.quant.schemes import QuantScheme
from repro.tensor import Tensor, ops


def _scales(weights: np.ndarray, scheme: QuantScheme) -> np.ndarray:
    """Symmetric scale(s): max|w| / qmax, per tensor or per out-channel.

    A zero scale (all-zero channel) maps to 1.0 so the quantized values
    are simply zeros instead of NaNs.

    With ``scheme.pow2_scale`` each scale is snapped *up* to the next
    power of two (2^ceil(log2(scale))), keeping max|w| representable
    while making every dequantized weight exactly representable in
    float32 -- the property the bit-exact integer lowering relies on.
    """
    if scheme.per_channel and weights.ndim >= 2:
        flat = np.abs(weights).reshape(weights.shape[0], -1)
        max_abs = flat.max(axis=1)
    else:
        max_abs = np.asarray(np.abs(weights).max())
    scale = max_abs / scheme.qmax
    scale = np.where(scale > 0, scale, 1.0)
    if scheme.pow2_scale:
        scale = np.exp2(np.ceil(np.log2(scale.astype(np.float64))))
    return scale.astype(np.float32)


def _broadcast_scale(scale: np.ndarray, ndim: int) -> np.ndarray:
    """Reshape per-channel scales to broadcast over trailing axes."""
    if scale.ndim == 0:
        return scale
    return scale.reshape(scale.shape + (1,) * (ndim - 1))


def quantize_array(
    weights: np.ndarray, scheme: QuantScheme
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize to integers.

    Returns:
        (q, scale): ``q`` is an int32 array of round(w/scale) clipped to
        [-qmax, qmax]; ``scale`` is scalar or (out_channels,).
    """
    if scheme.is_float:
        raise QuantizationError("cannot integer-quantize with the fp32 scheme")
    weights = np.asarray(weights, dtype=np.float32)
    scale = _scales(weights, scheme)
    q = np.round(weights / _broadcast_scale(scale, weights.ndim))
    q = np.clip(q, -scheme.qmax, scheme.qmax).astype(np.int32)
    return q, scale


def dequantize_array(q: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Inverse of :func:`quantize_array` (up to rounding error)."""
    q = np.asarray(q)
    return (q * _broadcast_scale(np.asarray(scale, dtype=np.float32), q.ndim)).astype(
        np.float32
    )


def dequantize_accumulator(
    acc: np.ndarray, scale: np.ndarray, bias: np.ndarray = None
) -> np.ndarray:
    """Map an int32 accumulator back to float32 at a layer boundary.

    The documented rounding rule in one place: a single float32 multiply
    ``fl(fl(acc) * scale)`` followed by a single float32 bias add. The
    int32 -> float32 cast is exact whenever |acc| < 2^24, which
    :func:`int_accumulation_bound` guarantees before the integer path is
    allowed to run; the multiply and add round half-to-even per IEEE-754.

    ``scale`` is scalar or per-channel; per-channel scales broadcast over
    the axes trailing the channel axis (axis 0 of ``acc``).
    """
    scale = np.asarray(scale, dtype=np.float32)
    out = acc.astype(np.float32) * _broadcast_scale(scale, acc.ndim)
    if bias is not None:
        bias = np.asarray(bias, dtype=np.float32)
        out += _broadcast_scale(bias, acc.ndim)
    return out


def int_accumulation_bound(q: np.ndarray) -> int:
    """Worst-case |accumulator| for binary activations: max_c sum_k |q[c,k]|.

    Spikes are 0/1, so each output channel's int32 accumulator is a
    subset sum of that channel's quantized weights; its magnitude never
    exceeds the channel's L1 norm. The integer lowering requires this
    bound to fit both int32 (no wraparound) and, for bit-exactness of the
    boundary dequantization, 2^24 (exact int -> float32 cast). Computed
    in int64 so the check itself cannot overflow.
    """
    q = np.asarray(q, dtype=np.int64)
    if q.size == 0:
        return 0
    flat = np.abs(q).reshape(q.shape[0], -1)
    return int(flat.sum(axis=1).max())


#: Exactness ceiling for the integer datapath: every partial sum must be
#: exactly representable in float32 (|acc| <= 2^24), which also sits far
#: inside int32. Checked per layer at plan-lowering time.
INT_ACCUMULATION_LIMIT = 1 << 24


def fake_quant(weight: Tensor, scheme: QuantScheme) -> Tensor:
    """Quantize-dequantize with a straight-through gradient (QAT core).

    Forward emits the dequantized integer approximation of ``weight`` so
    the loss *sees* quantization noise; backward passes the gradient
    through unmodified inside the representable range and zero outside it
    (the saturated region cannot be improved by nudging the latent float).
    """
    if scheme.is_float:
        return weight
    q, scale = quantize_array(weight.data, scheme)
    value = dequantize_array(q, scale)
    limit = _broadcast_scale(np.asarray(scale), weight.data.ndim) * scheme.qmax
    pass_mask = (np.abs(weight.data) <= limit).astype(np.float32)
    return ops.straight_through(weight, value, pass_mask)
