"""Uniform quantize / dequantize primitives and the fake-quant operator."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import QuantizationError
from repro.quant.schemes import QuantScheme
from repro.tensor import Tensor, ops


def _scales(weights: np.ndarray, scheme: QuantScheme) -> np.ndarray:
    """Symmetric scale(s): max|w| / qmax, per tensor or per out-channel.

    A zero scale (all-zero channel) maps to 1.0 so the quantized values
    are simply zeros instead of NaNs.
    """
    if scheme.per_channel and weights.ndim >= 2:
        flat = np.abs(weights).reshape(weights.shape[0], -1)
        max_abs = flat.max(axis=1)
    else:
        max_abs = np.asarray(np.abs(weights).max())
    scale = max_abs / scheme.qmax
    return np.where(scale > 0, scale, 1.0).astype(np.float32)


def _broadcast_scale(scale: np.ndarray, ndim: int) -> np.ndarray:
    """Reshape per-channel scales to broadcast over trailing axes."""
    if scale.ndim == 0:
        return scale
    return scale.reshape(scale.shape + (1,) * (ndim - 1))


def quantize_array(
    weights: np.ndarray, scheme: QuantScheme
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize to integers.

    Returns:
        (q, scale): ``q`` is an int32 array of round(w/scale) clipped to
        [-qmax, qmax]; ``scale`` is scalar or (out_channels,).
    """
    if scheme.is_float:
        raise QuantizationError("cannot integer-quantize with the fp32 scheme")
    weights = np.asarray(weights, dtype=np.float32)
    scale = _scales(weights, scheme)
    q = np.round(weights / _broadcast_scale(scale, weights.ndim))
    q = np.clip(q, -scheme.qmax, scheme.qmax).astype(np.int32)
    return q, scale


def dequantize_array(q: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Inverse of :func:`quantize_array` (up to rounding error)."""
    q = np.asarray(q)
    return (q * _broadcast_scale(np.asarray(scale, dtype=np.float32), q.ndim)).astype(
        np.float32
    )


def fake_quant(weight: Tensor, scheme: QuantScheme) -> Tensor:
    """Quantize-dequantize with a straight-through gradient (QAT core).

    Forward emits the dequantized integer approximation of ``weight`` so
    the loss *sees* quantization noise; backward passes the gradient
    through unmodified inside the representable range and zero outside it
    (the saturated region cannot be improved by nudging the latent float).
    """
    if scheme.is_float:
        return weight
    q, scale = quantize_array(weight.data, scheme)
    value = dequantize_array(q, scale)
    limit = _broadcast_scale(np.asarray(scale), weight.data.ndim) * scheme.qmax
    pass_mask = (np.abs(weight.data) <= limit).astype(np.float32)
    return ops.straight_through(weight, value, pass_mask)
