"""Quantization-aware training and integer deployment (Sec. II-B / III).

The paper trains with QAT (Jacob et al., 2018): weights and biases see
quantization noise during training through fake-quant operators with a
straight-through gradient estimator; at deployment they are true integers
with per-layer (or per-channel) scales, while neuronal state (membrane
potential) stays floating point -- exactly the paper's arrangement, where
the accelerator de-quantizes weights with shift-and-add constant
multipliers and accumulates float membranes.

Workflow::

    net = snn.build_vgg9(...)
    quant.prepare_qat(net, quant.INT4)     # wrap layers with fake-quant
    Trainer(net, cfg).fit(...)             # QAT
    deployable = quant.convert(net, quant.INT4)   # fold BN + integer weights
    # deployable runs on repro.hw.HybridSimulator
"""

from repro.quant.schemes import FP32, INT4, INT4_P2, INT8, INT8_P2, QuantScheme
from repro.quant.quantizer import (
    INT_ACCUMULATION_LIMIT,
    dequantize_accumulator,
    dequantize_array,
    fake_quant,
    int_accumulation_bound,
    quantize_array,
)
from repro.quant.qat import QATConv2d, QATLinear, prepare_qat, strip_qat
from repro.quant.fold import fold_batchnorm
from repro.quant.convert import (
    DeployableLayer,
    DeployableNetwork,
    convert,
)

__all__ = [
    "DeployableLayer",
    "DeployableNetwork",
    "FP32",
    "INT4",
    "INT4_P2",
    "INT8",
    "INT8_P2",
    "INT_ACCUMULATION_LIMIT",
    "QATConv2d",
    "QATLinear",
    "QuantScheme",
    "convert",
    "dequantize_accumulator",
    "dequantize_array",
    "fake_quant",
    "fold_batchnorm",
    "int_accumulation_bound",
    "prepare_qat",
    "quantize_array",
]
