"""Online inference serving with dynamic batching.

The long-lived front-end over the repo's deployable runtime: an
:class:`~repro.serving.server.InferenceServer` accepts single-sample
requests, coalesces them per model under a max-batch / max-wait policy
(:class:`~repro.serving.config.ServeConfig`, ``REPRO_SERVE_*``), and
executes assembled batches through the same sharded/pooled path offline
evaluation uses -- so a served sample's logits are byte-identical to an
offline evaluation of that sample, for any arrival pattern.

Abuse resolves to typed errors, never hangs: bounded-queue admission
(:class:`~repro.errors.QueueFullError`), per-request deadlines
propagated from queue to pool to client wait
(:class:`~repro.errors.RequestTimeoutError`), worker death surfaced by
the parallel layer's liveness guard
(:class:`~repro.errors.WorkerCrashError`), and graceful drain/shutdown
(:class:`~repro.errors.ServerClosedError`). The synthetic load
generator (:mod:`repro.serving.loadgen`) and the fault-injection suite
in ``tests/serving/`` exist to prove exactly that.
"""

from repro.serving.batcher import (
    EndpointStats,
    GatherStreamEncoder,
    InferenceResponse,
    ModelQueue,
    PendingRequest,
)
from repro.serving.config import ServeConfig, resolve_serve_config
from repro.serving.loadgen import LoadReport, run_closed_loop, run_open_loop
from repro.serving.server import InferenceServer, ModelEndpoint

__all__ = [
    "EndpointStats",
    "GatherStreamEncoder",
    "InferenceResponse",
    "InferenceServer",
    "LoadReport",
    "ModelEndpoint",
    "ModelQueue",
    "PendingRequest",
    "ServeConfig",
    "resolve_serve_config",
    "run_closed_loop",
    "run_open_loop",
]
