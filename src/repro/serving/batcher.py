"""Per-model request queue + dynamic batcher.

One :class:`ModelQueue` serves one registered model: a bounded FIFO of
single-sample requests, a batcher thread that coalesces them under the
max-batch / max-wait policy, and the typed failure paths the serving
layer promises (reject, time out, drain -- never hang).

Bit-exactness
-------------

The serving path must return, for every sample, byte-identical logits
to an offline evaluation of that sample -- no matter which batch the
dynamic batcher happened to pack it into. Two properties deliver that:

* per-sample forward results are independent of the batch split -- the
  same invariant the runtime's fused-batch chunking and the sharded
  evaluation merge already rely on (locked down by ``tests/parallel/``
  and ``tests/serving/test_batching_invariance.py``);
* stochastic encoders draw from counter-based streams keyed on the
  *global sample index*, so encoding depends on the request, not on the
  batch. :class:`GatherStreamEncoder` extends the contiguous
  ``Encoder.for_samples`` offsetting to the arbitrary index sets a
  dynamic batch is made of: each request carries its ``stream_index``
  and the assembled batch encodes sample ``i`` from the stream of
  global sample ``stream_index[i]``, byte-identical to encoding it
  alone.

Deadlines
---------

A request's deadline is set at admission and travels with it: the
batcher drops already-expired requests at batch assembly (typed
:class:`~repro.errors.RequestTimeoutError`, no wasted compute), passes
the batch's tightest remaining deadline to the executor (which the
pooled execution path enforces as a wall-clock budget), and the
client-side :meth:`PendingRequest.result` wait is bounded by the same
deadline -- whichever side notices first wins the (single) state
transition, so a request resolves exactly once.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import (
    QueueFullError,
    RequestTimeoutError,
    ServerClosedError,
    ServingError,
    ShapeError,
)
from repro.serving.config import ServeConfig
from repro.snn.encoding import Encoder
from repro.tensor import Tensor


class GatherStreamEncoder(Encoder):
    """Encode a batch whose samples sit at arbitrary global indices.

    ``Encoder.for_samples(offset)`` positions a *contiguous* window in
    the stream; a dynamically assembled batch is generally not
    contiguous. This wrapper carries one explicit stream index per
    sample: sample ``i`` is encoded exactly as global sample
    ``indices[i]`` would be -- byte-identical to encoding it alone or
    inside any other batch, which is the serving bit-exactness
    invariant.

    Index-independent encoders (direct, TTFS: ``for_samples`` returns
    ``self``) delegate wholesale; contiguous index runs take the
    vectorised ``for_samples(first)`` path; only genuinely scattered
    batches pay the per-sample encode (counter-stream draws make the
    two byte-identical by construction).
    """

    def __init__(self, base: Encoder, indices: Sequence[int]) -> None:
        self.base = base
        self.indices = [int(index) for index in indices]
        if any(index < 0 for index in self.indices):
            raise ServingError(
                f"stream indices must be >= 0, got {self.indices}"
            )
        self.analog_input = base.analog_input
        self.time_invariant = base.time_invariant
        self.deterministic = base.deterministic
        self.name = f"gather[{base.name}]"

    def encode(self, images: np.ndarray, t: int) -> Tensor:
        n = images.shape[0]
        if n > len(self.indices):
            raise ShapeError(
                f"gather encoder carries {len(self.indices)} stream "
                f"indices but was asked to encode {n} samples"
            )
        if n == 0 or self.base.for_samples(1) is self.base:
            # Index-independent stream: positioning is a no-op.
            return self.base.encode(images, t)
        # A shard may consume a prefix of the window (sharded_forward
        # positions with for_samples(start) then encodes `stop - start`
        # samples), so only the first n indices apply here.
        window = self.indices[:n]
        first = window[0]
        if all(index == first + i for i, index in enumerate(window)):
            return self.base.for_samples(first).encode(images, t)
        parts = [
            self.base.for_samples(index).encode(images[i : i + 1], t).data
            for i, index in enumerate(window)
        ]
        return Tensor(np.concatenate(parts, axis=0))

    def reset(self) -> None:
        self.base.reset()

    def for_samples(self, offset: int) -> "GatherStreamEncoder":
        # Sharding a gathered batch slices the index list: shard sample
        # 0 at shard offset `offset` is global sample indices[offset].
        if offset == 0:
            return self
        return GatherStreamEncoder(self.base, self.indices[offset:])

    def stream_signature(self) -> str:
        # Same stream as the base encoder; the indices position samples
        # within it, they do not change which stream it is.
        return self.base.stream_signature()


@dataclass
class InferenceResponse:
    """One served inference result.

    ``logits`` is the sample's own contiguous row -- byte-comparable to
    an offline evaluation of the same sample. ``batch_size`` records how
    many requests rode the batch that produced it (observability for
    the amortization the batcher exists to win)."""

    request_id: int
    model: str
    logits: np.ndarray
    prediction: int
    latency_ms: float
    queue_ms: float
    batch_size: int


# Request lifecycle: exactly one transition out of PENDING ever wins.
_PENDING, _DONE, _FAILED = 0, 1, 2


class _Request:
    """Internal request record; state transitions are single-shot."""

    __slots__ = (
        "request_id", "image", "stream_index", "admitted", "deadline",
        "_state", "_response", "_error", "_event", "_lock",
    )

    def __init__(
        self,
        request_id: int,
        image: np.ndarray,
        stream_index: int,
        admitted: float,
        deadline: Optional[float],
    ) -> None:
        self.request_id = request_id
        self.image = image
        self.stream_index = stream_index
        self.admitted = admitted
        self.deadline = deadline
        self._state = _PENDING
        self._response: Optional[InferenceResponse] = None
        self._error: Optional[BaseException] = None
        self._event = threading.Event()
        self._lock = threading.Lock()

    def complete(self, response: InferenceResponse) -> bool:
        with self._lock:
            if self._state != _PENDING:
                return False
            self._state = _DONE
            self._response = response
        self._event.set()
        return True

    def fail(self, error: BaseException) -> bool:
        with self._lock:
            if self._state != _PENDING:
                return False
            self._state = _FAILED
            self._error = error
        self._event.set()
        return True


class PendingRequest:
    """Client handle for one submitted request (a minimal future).

    :meth:`result` blocks until the request resolves -- to a response,
    or to one of the serving layer's typed errors. The wait itself is
    deadline-bounded: a request with a deadline can never park its
    caller forever, even if the server stalls."""

    def __init__(self, queue: "ModelQueue", request: _Request) -> None:
        self._queue = queue
        self._request = request

    @property
    def request_id(self) -> int:
        return self._request.request_id

    @property
    def done(self) -> bool:
        return self._request._event.is_set()

    def result(self, timeout: Optional[float] = None) -> InferenceResponse:
        """The response, blocking until resolution.

        ``timeout`` (seconds) bounds this wait explicitly; without it,
        the wait runs to the request's deadline (or indefinitely for
        deadline-free requests). A deadline that expires here fails the
        request -- a response the server produces later is discarded,
        matching what the server-side expiry would have done.
        """
        request = self._request
        if timeout is not None:
            wait = timeout
        elif request.deadline is not None:
            wait = max(0.0, request.deadline - time.monotonic())
        else:
            wait = None
        if not request._event.wait(wait):
            now = time.monotonic()
            if request.deadline is not None and now >= request.deadline:
                if request.fail(
                    RequestTimeoutError(
                        f"request {request.request_id} missed its "
                        f"deadline after "
                        f"{(now - request.admitted) * 1e3:.1f} ms"
                    )
                ):
                    self._queue._count_timeout()
            else:
                # An explicit wait bound expired before the request's
                # own deadline: surface it without resolving the
                # request -- the caller may wait again.
                raise RequestTimeoutError(
                    f"wait for request {request.request_id} exceeded "
                    f"{timeout:.3f}s (request still pending)"
                )
            request._event.wait()
        if request._state == _DONE:
            return request._response
        raise request._error


@dataclass
class EndpointStats:
    """Lifetime counters of one model queue (all guarded by the queue
    lock; read via :meth:`ModelQueue.stats_snapshot`)."""

    submitted: int = 0
    accepted: int = 0
    rejected_full: int = 0
    rejected_closed: int = 0
    completed: int = 0
    timed_out: int = 0
    failed: int = 0
    batches: int = 0
    batched_samples: int = 0
    max_batch: int = 0
    queue_peak: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected_full": self.rejected_full,
            "rejected_closed": self.rejected_closed,
            "completed": self.completed,
            "timed_out": self.timed_out,
            "failed": self.failed,
            "batches": self.batches,
            "batched_samples": self.batched_samples,
            "max_batch": self.max_batch,
            "queue_peak": self.queue_peak,
        }


class ModelQueue:
    """Bounded request queue + batcher thread for one registered model.

    ``executor(images, stream_indices, timeout_s) -> logits`` runs one
    assembled batch; the server wires in the pooled default, tests
    inject fault executors. The batcher thread starts lazily with the
    first admission and exits when the queue closes and empties.
    """

    def __init__(
        self,
        name: str,
        config: ServeConfig,
        executor: Callable[[np.ndarray, List[int], Optional[float]], np.ndarray],
        sample_shape: Sequence[int],
    ) -> None:
        self.name = name
        self.config = config
        self._executor = executor
        self._sample_shape = tuple(sample_shape)
        self._queue: deque = deque()
        self._cond = threading.Condition()
        self._closing = False
        self._thread: Optional[threading.Thread] = None
        self._next_id = 0
        self.stats = EndpointStats()

    # -- admission ------------------------------------------------------
    def submit(
        self,
        image: np.ndarray,
        stream_index: int = 0,
        timeout_ms: Optional[float] = None,
    ) -> PendingRequest:
        """Admit one single-sample request (or reject it, typed).

        ``timeout_ms`` overrides the configured default deadline for
        this request (0 disables it). Raises
        :class:`~repro.errors.ServerClosedError` after close/drain and
        :class:`~repro.errors.QueueFullError` when the bounded queue is
        at depth -- the explicit backpressure signal.
        """
        image = np.ascontiguousarray(image, dtype=np.float32)
        if image.shape != self._sample_shape:
            raise ShapeError(
                f"model {self.name!r} serves {self._sample_shape} "
                f"samples, got {image.shape}"
            )
        if stream_index < 0:
            raise ServingError(
                f"stream_index must be >= 0, got {stream_index}"
            )
        effective_ms = (
            self.config.timeout_ms if timeout_ms is None else timeout_ms
        )
        if effective_ms < 0:
            raise ServingError(
                f"timeout_ms must be >= 0, got {effective_ms}"
            )
        now = time.monotonic()
        deadline = None if effective_ms == 0 else now + effective_ms / 1e3
        with self._cond:
            self.stats.submitted += 1
            if self._closing:
                self.stats.rejected_closed += 1
                raise ServerClosedError(
                    f"model queue {self.name!r} is draining; request "
                    "rejected"
                )
            if len(self._queue) >= self.config.queue_depth:
                self.stats.rejected_full += 1
                raise QueueFullError(
                    f"model queue {self.name!r} is at depth "
                    f"{self.config.queue_depth}; request rejected "
                    "(shed load or retry later)"
                )
            request = _Request(
                self._next_id, image, int(stream_index), now, deadline
            )
            self._next_id += 1
            self._queue.append(request)
            self.stats.accepted += 1
            self.stats.queue_peak = max(
                self.stats.queue_peak, len(self._queue)
            )
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop,
                    name=f"repro-serve-{self.name}",
                    daemon=True,
                )
                self._thread.start()
            self._cond.notify_all()
        return PendingRequest(self, request)

    def _count_timeout(self) -> None:
        with self._cond:
            self.stats.timed_out += 1

    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._queue)

    # -- the batcher thread ---------------------------------------------
    def _next_batch(self) -> Optional[List[_Request]]:
        with self._cond:
            while not self._queue and not self._closing:
                self._cond.wait()
            if not self._queue:
                return None  # closing, and fully drained
            window_end = (
                self._queue[0].admitted + self.config.max_wait_ms / 1e3
            )
            while (
                len(self._queue) < self.config.max_batch
                and not self._closing
            ):
                remaining = window_end - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            batch = []
            while self._queue and len(batch) < self.config.max_batch:
                batch.append(self._queue.popleft())
            return batch

    def _loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._execute(batch)

    def _execute(self, batch: List[_Request]) -> None:
        now = time.monotonic()
        live: List[_Request] = []
        expired = 0
        for request in batch:
            if request.deadline is not None and now >= request.deadline:
                # Deadline propagation, first half: never spend batch
                # compute on a request whose caller already gave up.
                if request.fail(
                    RequestTimeoutError(
                        f"request {request.request_id} expired in the "
                        f"queue after "
                        f"{(now - request.admitted) * 1e3:.1f} ms"
                    )
                ):
                    expired += 1
            else:
                live.append(request)
        if expired:
            with self._cond:
                self.stats.timed_out += expired
        if not live:
            return
        images = np.stack([request.image for request in live])
        indices = [request.stream_index for request in live]
        # Deadline propagation, second half: the batch may spend at most
        # the tightest member's remaining budget in the execution path
        # (enforced as a typed wall-clock bound by the pooled executor).
        deadlines = [r.deadline for r in live if r.deadline is not None]
        timeout_s = (
            max(min(deadlines) - now, 0.005) if deadlines else None
        )
        try:
            logits = np.asarray(self._executor(images, indices, timeout_s))
        except BaseException as error:  # typed errors pass through as-is  # repro: lint-ok[E101] containment seam: every waiter is failed with the original (typed) error
            failed = sum(1 for r in live if r.fail(error))
            with self._cond:
                self.stats.failed += failed
                self.stats.batches += 1
                self.stats.batched_samples += len(live)
                self.stats.max_batch = max(self.stats.max_batch, len(live))
            return
        if logits.ndim != 2 or logits.shape[0] != len(live):
            error = ServingError(
                f"executor returned logits of shape {logits.shape} for "
                f"a {len(live)}-sample batch"
            )
            failed = sum(1 for r in live if r.fail(error))
            with self._cond:
                self.stats.failed += failed
            return
        done = time.monotonic()
        completed = 0
        for i, request in enumerate(live):
            response = InferenceResponse(
                request_id=request.request_id,
                model=self.name,
                logits=np.ascontiguousarray(logits[i]),
                prediction=int(np.argmax(logits[i])),
                latency_ms=(done - request.admitted) * 1e3,
                queue_ms=(now - request.admitted) * 1e3,
                batch_size=len(live),
            )
            if request.complete(response):
                completed += 1
        with self._cond:
            self.stats.completed += completed
            self.stats.batches += 1
            self.stats.batched_samples += len(live)
            self.stats.max_batch = max(self.stats.max_batch, len(live))

    # -- shutdown -------------------------------------------------------
    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Stop admission, then wait for queued + in-flight work.

        Returns ``True`` when everything resolved within ``timeout_s``
        (default: the configured ``drain_ms``); ``False`` leaves the
        remaining work running -- call :meth:`close` to fail it.
        """
        if timeout_s is None:
            timeout_s = self.config.drain_ms / 1e3
        with self._cond:
            self._closing = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout_s)
            return not thread.is_alive()
        return True

    def close(self) -> None:
        """Fail everything still queued and let the thread exit.

        Queued requests resolve with
        :class:`~repro.errors.ServerClosedError` -- a stopped server
        never leaves a caller blocked on a request it will not run."""
        with self._cond:
            self._closing = True
            abandoned = list(self._queue)
            self._queue.clear()
            self._cond.notify_all()
        closed = 0
        for request in abandoned:
            if request.fail(
                ServerClosedError(
                    f"model queue {self.name!r} shut down before "
                    f"request {request.request_id} ran"
                )
            ):
                closed += 1
        with self._cond:
            self.stats.rejected_closed += closed
        thread = self._thread
        if thread is not None:
            thread.join(self.config.drain_ms / 1e3)

    def stats_snapshot(self) -> Dict[str, int]:
        with self._cond:
            return self.stats.as_dict()
