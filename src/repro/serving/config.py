"""Serving configuration: the dynamic-batching policy knobs.

Every knob resolves the same way the rest of the repo's configuration
does -- explicit argument first, then a ``REPRO_SERVE_*`` environment
variable, then the baked-in default -- and is validated eagerly
(:class:`~repro.errors.ConfigError` on nonsense), so a misconfigured
server fails at construction, not mid-traffic.

The policy in one sentence: a request admitted to a model queue waits at
most ``max_wait_ms`` for up to ``max_batch - 1`` companions, rides the
assembled batch through the execution path, and must produce a response
within ``timeout_ms`` of admission or its caller gets a typed
:class:`~repro.errors.RequestTimeoutError`; a queue holding
``queue_depth`` requests rejects new admissions outright
(:class:`~repro.errors.QueueFullError`) instead of buffering without
bound.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError

MAX_BATCH_ENV = "REPRO_SERVE_MAX_BATCH"
MAX_WAIT_ENV = "REPRO_SERVE_MAX_WAIT_MS"
QUEUE_DEPTH_ENV = "REPRO_SERVE_QUEUE_DEPTH"
TIMEOUT_ENV = "REPRO_SERVE_TIMEOUT_MS"
DRAIN_ENV = "REPRO_SERVE_DRAIN_MS"


@dataclass(frozen=True)
class ServeConfig:
    """Resolved dynamic-batching policy of one :class:`InferenceServer`.

    Attributes:
        max_batch: most samples one assembled batch may carry (>= 1).
        max_wait_ms: longest the batcher holds the oldest queued request
            open for companions before executing a partial batch
            (>= 0; 0 batches whatever is queued at wake-up, which still
            coalesces bursts that arrive between executions).
        queue_depth: bounded per-model queue; admission beyond it is
            rejected with :class:`~repro.errors.QueueFullError` (>= 1).
        timeout_ms: default per-request deadline, measured from
            admission (> 0; 0 disables deadlines -- callers then wait
            indefinitely unless they pass their own timeout).
        drain_ms: how long a graceful drain waits for queued and
            in-flight work before failing what remains (>= 0).
    """

    max_batch: int = 8
    max_wait_ms: float = 2.0
    queue_depth: int = 64
    timeout_ms: float = 1000.0
    drain_ms: float = 2000.0


def _env_int(env: str, minimum: int) -> Optional[int]:
    raw = os.environ.get(env)
    if raw is None:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(f"{env} must be an integer, got {raw!r}")
    if value < minimum:
        raise ConfigError(f"{env} must be >= {minimum}, got {value}")
    return value


def _env_float(env: str, minimum: float) -> Optional[float]:
    raw = os.environ.get(env)
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(f"{env} must be a number, got {raw!r}")
    if value < minimum:
        raise ConfigError(f"{env} must be >= {minimum}, got {value}")
    return value


def resolve_serve_config(
    max_batch: Optional[int] = None,
    max_wait_ms: Optional[float] = None,
    queue_depth: Optional[int] = None,
    timeout_ms: Optional[float] = None,
    drain_ms: Optional[float] = None,
) -> ServeConfig:
    """A validated :class:`ServeConfig`.

    Explicit (non-``None``) arguments win, then the ``REPRO_SERVE_*``
    environment, then the defaults. Raises
    :class:`~repro.errors.ConfigError` on unparseable or out-of-range
    values, wherever they came from.
    """
    defaults = ServeConfig()

    def pick(explicit, env_value, default, name, minimum):
        if explicit is not None:
            value = explicit
        elif env_value is not None:
            return env_value  # already validated by the env reader
        else:
            return default
        if value < minimum:
            raise ConfigError(f"{name} must be >= {minimum}, got {value}")
        return value

    return ServeConfig(
        max_batch=int(
            pick(max_batch, _env_int(MAX_BATCH_ENV, 1),
                 defaults.max_batch, "max_batch", 1)
        ),
        max_wait_ms=float(
            pick(max_wait_ms, _env_float(MAX_WAIT_ENV, 0.0),
                 defaults.max_wait_ms, "max_wait_ms", 0.0)
        ),
        queue_depth=int(
            pick(queue_depth, _env_int(QUEUE_DEPTH_ENV, 1),
                 defaults.queue_depth, "queue_depth", 1)
        ),
        timeout_ms=float(
            pick(timeout_ms, _env_float(TIMEOUT_ENV, 0.0),
                 defaults.timeout_ms, "timeout_ms", 0.0)
        ),
        drain_ms=float(
            pick(drain_ms, _env_float(DRAIN_ENV, 0.0),
                 defaults.drain_ms, "drain_ms", 0.0)
        ),
    )
