"""Synthetic load generation against an :class:`InferenceServer`.

Two canonical shapes:

* **open loop** (:func:`run_open_loop`) -- requests arrive on a fixed
  wall-clock schedule regardless of how the server is coping, the
  arrival pattern that actually exercises admission control: when the
  server falls behind, the queue fills and the generator *keeps
  submitting*, so rejections and timeouts show up in the report instead
  of being masked by client back-off.
* **closed loop** (:func:`run_closed_loop`) -- N client threads, each
  submitting its next request only after the previous one resolved; the
  gentler pattern that measures end-to-end latency under a bounded
  concurrency.

Both return a :class:`LoadReport` with full accounting (every issued
request is exactly one of completed / rejected / timed out / failed)
and latency percentiles over the completed ones. Determinism note: the
schedule is fixed, but wall-clock outcomes (which requests got
rejected, measured latencies) are inherently load-dependent -- the
*logits* of completed requests are what the serving layer keeps
bit-exact, and that is covered by the invariance suite, not here.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import (
    QueueFullError,
    RequestTimeoutError,
    ServerClosedError,
    ServingError,
)


@dataclass
class LoadReport:
    """Outcome accounting + latency percentiles for one generated load."""

    offered: int = 0
    completed: int = 0
    rejected: int = 0
    timed_out: int = 0
    failed: int = 0
    duration_s: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)
    batch_sizes: List[int] = field(default_factory=list)

    @property
    def accepted(self) -> int:
        return self.offered - self.rejected

    @property
    def achieved_rps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    def as_dict(self) -> Dict[str, object]:
        return {
            "offered": self.offered,
            "accepted": self.accepted,
            "completed": self.completed,
            "rejected": self.rejected,
            "timed_out": self.timed_out,
            "failed": self.failed,
            "duration_s": round(self.duration_s, 6),
            "achieved_rps": round(self.achieved_rps, 3),
            "p50_ms": round(self.percentile_ms(50), 3),
            "p99_ms": round(self.percentile_ms(99), 3),
            "mean_batch": round(
                float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0,
                3,
            ),
        }


def _settle(report: LoadReport, pendings: List) -> None:
    """Resolve every pending request into exactly one outcome bucket."""
    for pending in pendings:
        try:
            response = pending.result()
        except RequestTimeoutError:
            report.timed_out += 1
        except ServerClosedError:
            report.failed += 1
        except Exception:  # repro: lint-ok[E101] load generator survives any server fault; failure is the datum being counted
            report.failed += 1
        else:
            report.completed += 1
            report.latencies_ms.append(response.latency_ms)
            report.batch_sizes.append(response.batch_size)


def run_open_loop(
    server,
    model: str,
    images: np.ndarray,
    rate_rps: float,
    count: int,
    timeout_ms: Optional[float] = None,
    stream_indices: Optional[Sequence[int]] = None,
) -> LoadReport:
    """Offer ``count`` requests at a fixed ``rate_rps`` arrival rate.

    Request ``i`` submits sample ``images[i % len(images)]`` under
    stream index ``stream_indices[i % len(...)]`` (default: the sample's
    own position, so replayed samples keep their offline spike trains).
    Submission never waits on results; everything settles at the end.
    """
    if rate_rps <= 0:
        raise ServingError(f"rate_rps must be > 0, got {rate_rps}")
    if count < 1:
        raise ServingError(f"count must be >= 1, got {count}")
    interval = 1.0 / rate_rps
    report = LoadReport(offered=count)
    pendings = []
    start = time.monotonic()
    for i in range(count):
        target = start + i * interval
        delay = target - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        sample = i % len(images)
        index = (
            stream_indices[i % len(stream_indices)]
            if stream_indices is not None
            else sample
        )
        try:
            pendings.append(
                server.submit(
                    model,
                    images[sample],
                    stream_index=index,
                    timeout_ms=timeout_ms,
                )
            )
        except (QueueFullError, ServerClosedError):
            report.rejected += 1
    _settle(report, pendings)
    report.duration_s = time.monotonic() - start
    return report


def run_closed_loop(
    server,
    model: str,
    images: np.ndarray,
    clients: int,
    requests_per_client: int,
    timeout_ms: Optional[float] = None,
) -> LoadReport:
    """``clients`` threads, each issuing its requests back-to-back.

    Client ``c``'s request ``j`` serves sample ``(c * requests_per_client
    + j) % len(images)`` under that global index as its stream index, so
    a closed-loop run still exercises scattered stream gathers.
    """
    if clients < 1:
        raise ServingError(f"clients must be >= 1, got {clients}")
    if requests_per_client < 1:
        raise ServingError(
            f"requests_per_client must be >= 1, got {requests_per_client}"
        )
    reports = [LoadReport() for _ in range(clients)]

    def client(c: int) -> None:
        report = reports[c]
        for j in range(requests_per_client):
            global_index = c * requests_per_client + j
            report.offered += 1
            try:
                pending = server.submit(
                    model,
                    images[global_index % len(images)],
                    stream_index=global_index % len(images),
                    timeout_ms=timeout_ms,
                )
            except (QueueFullError, ServerClosedError):
                report.rejected += 1
                continue
            _settle(report, [pending])

    threads = [
        threading.Thread(target=client, args=(c,), daemon=True)
        for c in range(clients)
    ]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    total = LoadReport(duration_s=time.monotonic() - start)
    for report in reports:
        total.offered += report.offered
        total.completed += report.completed
        total.rejected += report.rejected
        total.timed_out += report.timed_out
        total.failed += report.failed
        total.latencies_ms.extend(report.latencies_ms)
        total.batch_sizes.extend(report.batch_sizes)
    return total
