"""The long-lived inference front-end: models in, batched answers out.

:class:`InferenceServer` owns one :class:`~repro.serving.batcher.ModelQueue`
per registered model. Clients submit single-sample requests; the
per-model batcher coalesces them under the max-batch / max-wait policy
and runs each assembled batch through the same execution path offline
evaluation uses -- :func:`repro.parallel.shard.sharded_forward` over the
persistent :class:`~repro.parallel.service.WorkerService` pool (warm
plans, generation reuse), degrading to the inline serial fallback under
``REPRO_WORKERS=1`` exactly like every other entry point.

Because the executor is the offline path and the batch encoder gathers
each request's own counter stream
(:class:`~repro.serving.batcher.GatherStreamEncoder`), a served sample's
logits are byte-identical to an offline ``predict`` of that sample --
for any arrival pattern, any batch composition the dynamic batcher
happens to produce, and any worker count.

Execution is serialized across model queues by a process-wide lock:
the worker pool (and a deployable's mutable runtime caches) are not
thread-safe, and on the CPU-bound inference path interleaving batches
buys nothing -- batching, not concurrency, is where the throughput is.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ServingError
from repro.serving.batcher import ModelQueue, PendingRequest
from repro.serving.config import ServeConfig, resolve_serve_config

#: Serializes batch execution process-wide: WorkerService and the
#: deployable's runtime caches are single-threaded by design.
_EXECUTE_LOCK = threading.Lock()


class ModelEndpoint:
    """One registered model plus everything needed to run its batches."""

    def __init__(
        self,
        name: str,
        model,
        timesteps: int,
        encoder=None,
        model_path: Optional[str] = None,
        workers: Optional[int] = None,
        shard_size: Optional[int] = None,
        retry=None,
    ) -> None:
        from repro.snn.encoding import DirectEncoder

        if timesteps < 1:
            raise ServingError(f"timesteps must be >= 1, got {timesteps}")
        self.name = name
        self.model = model
        self.timesteps = int(timesteps)
        self.encoder = encoder if encoder is not None else DirectEncoder()
        self.model_path = model_path
        self.workers = workers
        self.shard_size = shard_size
        #: RetryPolicy for pooled batches; None inherits the environment
        #: default (self-healing on, REPRO_RETRY_* tunable), exactly like
        #: offline evaluation. The serving layer also inherits the pool
        #: circuit breaker through the shared WorkerService.
        self.retry = retry
        self.sample_shape = tuple(model.input_shape)

    def run_batch(
        self,
        images: np.ndarray,
        stream_indices: List[int],
        timeout_s: Optional[float],
    ) -> np.ndarray:
        """Logits for one assembled batch, via the offline path.

        The gather encoder positions every sample on its own request's
        counter stream; ``sharded_forward`` then executes exactly as an
        offline evaluation of those samples would (pooled when workers
        allow, inline otherwise), with the batch's deadline budget
        propagated as the pooled call's wall-clock bound.
        """
        from repro.parallel.shard import sharded_forward
        from repro.serving.batcher import GatherStreamEncoder

        encoder = GatherStreamEncoder(self.encoder, stream_indices)
        with _EXECUTE_LOCK:
            output = sharded_forward(
                self.model,
                images,
                self.timesteps,
                encoder=encoder,
                record=False,
                shard_size=self.shard_size or len(images),
                workers=self.workers,
                model_path=self.model_path,
                timeout=timeout_s,
                retry=self.retry,
            )
        return output.logits


class InferenceServer:
    """Online inference serving with per-model dynamic batching.

    Lifecycle: construct (optionally from ``REPRO_SERVE_*`` via
    :func:`~repro.serving.config.resolve_serve_config`), register
    models, serve :meth:`submit` traffic, then :meth:`drain` (graceful:
    stop admission, finish queued work) or :meth:`shutdown` (drain, then
    fail whatever remains with a typed
    :class:`~repro.errors.ServerClosedError`). A context manager runs
    :meth:`shutdown` on exit, so no test or tool can leak a batcher
    thread.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config if config is not None else resolve_serve_config()
        self._endpoints: Dict[str, ModelEndpoint] = {}
        self._queues: Dict[str, ModelQueue] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- registration ---------------------------------------------------
    def register(
        self,
        name: str,
        model,
        timesteps: int,
        encoder=None,
        model_path: Optional[str] = None,
        workers: Optional[int] = None,
        shard_size: Optional[int] = None,
        executor=None,
        retry=None,
    ) -> ModelEndpoint:
        """Register ``model`` under ``name`` and start taking traffic.

        ``executor(images, stream_indices, timeout_s) -> logits``
        overrides the default pooled execution path -- the seam the
        fault-injection harness uses to induce worker crashes, stalls
        and failures without a real pool. ``retry`` pins a
        :class:`~repro.parallel.retry.RetryPolicy` for this endpoint's
        pooled batches; ``None`` inherits the environment default.
        """
        endpoint = ModelEndpoint(
            name,
            model,
            timesteps,
            encoder=encoder,
            model_path=model_path,
            workers=workers,
            shard_size=shard_size,
            retry=retry,
        )
        with self._lock:
            if self._closed:
                from repro.errors import ServerClosedError

                raise ServerClosedError(
                    f"cannot register {name!r}: server is shut down"
                )
            if name in self._endpoints:
                raise ServingError(f"model {name!r} is already registered")
            self._endpoints[name] = endpoint
            self._queues[name] = ModelQueue(
                name,
                self.config,
                executor if executor is not None else endpoint.run_batch,
                endpoint.sample_shape,
            )
        return endpoint

    def endpoint(self, name: str) -> ModelEndpoint:
        with self._lock:
            if name not in self._endpoints:
                raise ServingError(f"no model registered as {name!r}")
            return self._endpoints[name]

    @property
    def models(self) -> List[str]:
        with self._lock:
            return sorted(self._endpoints)

    # -- traffic --------------------------------------------------------
    def submit(
        self,
        model: str,
        image: np.ndarray,
        stream_index: int = 0,
        timeout_ms: Optional[float] = None,
    ) -> PendingRequest:
        """Admit one single-sample request against ``model``.

        ``stream_index`` is the request's global sample index in the
        encoder's counter stream -- the coordinate that makes its spike
        train (hence its logits) independent of batch placement. Typed
        rejections: :class:`~repro.errors.QueueFullError` (backpressure),
        :class:`~repro.errors.ServerClosedError` (draining/stopped),
        :class:`~repro.errors.ServingError` (unknown model, bad shape).
        """
        with self._lock:
            queue = self._queues.get(model)
        if queue is None:
            raise ServingError(f"no model registered as {model!r}")
        return queue.submit(
            image, stream_index=stream_index, timeout_ms=timeout_ms
        )

    # -- lifecycle ------------------------------------------------------
    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Gracefully drain every model queue.

        Admission stops immediately; queued and in-flight requests run
        to completion, bounded by ``timeout_s`` (default: the configured
        ``drain_ms``, applied per queue). Returns ``True`` when every
        queue fully drained."""
        with self._lock:
            self._closed = True
            queues = list(self._queues.values())
        drained = True
        for queue in queues:
            drained = queue.drain(timeout_s) and drained
        return drained

    def shutdown(self, drain: bool = True) -> None:
        """Stop the server; never leaves a caller blocked.

        With ``drain=True`` queued work gets a bounded chance to finish
        first; anything still pending afterwards (and everything, with
        ``drain=False``) resolves with
        :class:`~repro.errors.ServerClosedError`."""
        if drain:
            self.drain()
        else:
            with self._lock:
                self._closed = True
        with self._lock:
            queues = list(self._queues.values())
        for queue in queues:
            queue.close()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- observability --------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-model lifetime counters (see
        :class:`~repro.serving.batcher.EndpointStats`)."""
        with self._lock:
            queues = dict(self._queues)
        return {name: queue.stats_snapshot() for name, queue in queues.items()}
