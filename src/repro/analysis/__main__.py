"""``python -m repro.analysis`` -- same flags as ``snn-hybrid lint``."""

import sys

from repro.analysis import main

if __name__ == "__main__":
    sys.exit(main())
