"""Finding objects and their two renderings (human lines, JSON).

A :class:`Finding` is one rule violation at one source location. Its
*baseline key* deliberately excludes the line number: grandfathered
findings keep matching after unrelated edits shift the file, and stop
matching as soon as the offending line itself changes (see
:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes:
        rule: rule identifier (``D101``, ``P102``, ...).
        path: file path relative to the lint root, ``/``-separated.
        line: 1-based line the violation anchors to (pragmas on this
            line suppress it).
        message: human explanation including the expected fix.
        snippet: the stripped source line at ``line`` -- the stable part
            of the baseline key.
    """

    rule: str
    path: str
    line: int
    message: str
    snippet: str = ""

    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-number-free identity used by the baseline file."""
        return (self.rule, self.path, self.snippet)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable report order: path, line, rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def render_human(
    findings: Iterable[Finding],
    files_scanned: int,
    suppressed: int = 0,
    baselined: int = 0,
) -> str:
    """The human report: one line per finding plus a summary line."""
    findings = sort_findings(findings)
    lines = [finding.render() for finding in findings]
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    breakdown = (
        " (" + ", ".join(f"{r}: {n}" for r, n in sorted(by_rule.items())) + ")"
        if by_rule
        else ""
    )
    lines.append(
        f"repro lint: {len(findings)} finding(s){breakdown} in "
        f"{files_scanned} file(s); {suppressed} pragma-suppressed, "
        f"{baselined} baselined"
    )
    return "\n".join(lines)


def render_json(
    findings: Iterable[Finding],
    files_scanned: int,
    suppressed: int = 0,
    baselined: int = 0,
) -> str:
    """The machine report (stable ordering, one JSON document)."""
    findings = sort_findings(findings)
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    return json.dumps(
        {
            "findings": [finding.as_dict() for finding in findings],
            "counts": by_rule,
            "files_scanned": files_scanned,
            "suppressed": suppressed,
            "baselined": baselined,
        },
        indent=2,
        sort_keys=True,
    )
