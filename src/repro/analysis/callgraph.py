"""Worker-reachability: which modules execute inside pool workers.

Rule P102 (mutable module state in worker-executed code) needs to know
which modules a pool worker can run. That set is derived statically, in
two steps:

1. **Roots.** Every call to ``run_tasks(...)`` or
   ``run_tasks_resilient(...)`` ships its first argument (and its
   ``initializer=`` keyword, when present) to worker processes. Each
   such callable is resolved through the calling module's imports and
   local definitions to the module that *defines* it -- those defining
   modules are the worker entry modules. The executor modules
   themselves (wherever ``run_tasks``/``run_tasks_resilient`` is
   *defined*) are also roots: their bootstrap/injection code runs in
   every worker.

2. **Closure.** Anything a worker entry module imports -- at module
   level or lazily inside a function, since workers resolve both -- is
   reachable too, transitively, restricted to modules inside the
   scanned tree.

The result deliberately over-approximates (a worker that imports a
module can call anything in it); under-approximation is what this rule
exists to prevent.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: Callables whose arguments are shipped to worker processes.
EXECUTOR_NAMES = ("run_tasks", "run_tasks_resilient")

#: Keyword arguments of those executors that also carry worker-executed
#: callables.
EXECUTOR_CALLABLE_KWARGS = ("initializer",)


def _called_name(func: ast.expr) -> Optional[str]:
    """The trailing identifier of a call target (``pool.run_tasks`` ->
    ``run_tasks``), or None for computed targets."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _ModuleIndex(ast.NodeVisitor):
    """Per-module facts the reachability pass needs."""

    def __init__(self) -> None:
        self.imported_modules: Set[str] = set()  # absolute dotted names
        self.import_aliases: Dict[str, str] = {}  # local name -> module
        self.from_imports: Dict[str, Tuple[str, str]] = {}  # name -> (module, orig)
        self.defined: Set[str] = set()
        self.shipped_callables: List[ast.expr] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.imported_modules.add(alias.name)
            self.import_aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            self.imported_modules.add(node.module)
            for alias in node.names:
                # ``from repro.parallel import shard`` imports the
                # *module* repro.parallel.shard; record the candidate --
                # the closure keeps it only if it names a scanned module.
                self.imported_modules.add(f"{node.module}.{alias.name}")
                self.from_imports[alias.asname or alias.name] = (
                    node.module,
                    alias.name,
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.defined.add(node.name)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.defined.add(node.name)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.defined.add(node.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if _called_name(node.func) in EXECUTOR_NAMES:
            if node.args:
                self.shipped_callables.append(node.args[0])
            for keyword in node.keywords:
                if keyword.arg in EXECUTOR_CALLABLE_KWARGS:
                    self.shipped_callables.append(keyword.value)
        self.generic_visit(node)


def index_module(tree: ast.AST) -> _ModuleIndex:
    index = _ModuleIndex()
    index.visit(tree)
    return index


def _resolve_callable_module(
    expr: ast.expr, module_name: str, index: _ModuleIndex
) -> Optional[str]:
    """The dotted module that defines a shipped callable, or None."""
    if isinstance(expr, ast.Name):
        if expr.id in index.defined:
            return module_name
        if expr.id in index.from_imports:
            return index.from_imports[expr.id][0]
        return None
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        base = expr.value.id
        if base in index.import_aliases:
            return index.import_aliases[base]
        if base in index.from_imports:
            # ``from repro.parallel import shard; shard._run_shard``
            module, original = index.from_imports[base]
            return f"{module}.{original}"
    return None


def worker_reachable_modules(
    indexed: Dict[str, _ModuleIndex],
) -> Set[str]:
    """Dotted names of modules a pool worker can execute.

    ``indexed`` maps each scanned module's dotted name to its
    :func:`index_module` result; names outside this mapping (stdlib,
    third-party) are ignored.
    """
    roots: Set[str] = set()
    for name, index in indexed.items():
        if EXECUTOR_NAMES[0] in index.defined or EXECUTOR_NAMES[1] in index.defined:
            roots.add(name)
        for expr in index.shipped_callables:
            target = _resolve_callable_module(expr, name, index)
            if target is not None and target in indexed:
                roots.add(target)
    reachable: Set[str] = set()
    frontier = [name for name in roots if name in indexed]
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        for imported in indexed[name].imported_modules:
            for candidate in _package_modules(imported, indexed):
                if candidate not in reachable:
                    frontier.append(candidate)
    return reachable


def _package_modules(
    imported: str, indexed: Dict[str, _ModuleIndex]
) -> Iterable[str]:
    """The scanned modules an import of ``imported`` pulls in.

    Importing a package executes its ``__init__``; the candidate names
    recorded by the index cover submodules imported as attributes.
    """
    if imported in indexed:
        yield imported
    init = f"{imported}.__init__"
    if init in indexed:
        yield init
