"""Per-line suppression pragmas: ``# repro: lint-ok[RULE] why``.

A pragma acknowledges a finding *at its line* and records the one-line
justification next to the code it blesses -- unlike a baseline entry,
which marks a finding as merely grandfathered. The rule list is
explicit (``lint-ok[D102]``, ``lint-ok[P101,P102]``): a blanket
``lint-ok`` with no rule is not honoured, so a pragma can never
accidentally swallow a *new* class of violation on the same line.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Set

PRAGMA_PATTERN = re.compile(
    r"#\s*repro:\s*lint-ok\[(?P<rules>[A-Z][A-Z0-9]*(?:\s*,\s*[A-Z][A-Z0-9]*)*)\]"
)

#: A pragma should say *why* -- matched loosely: any non-space text
#: after the closing bracket counts as a justification.
JUSTIFIED_PATTERN = re.compile(
    r"#\s*repro:\s*lint-ok\[[^\]]*\]\s*\S"
)


def pragma_rules(line: str) -> Set[str]:
    """Rule ids suppressed on this source line (empty set if none)."""
    match = PRAGMA_PATTERN.search(line)
    if not match:
        return set()
    return {rule.strip() for rule in match.group("rules").split(",")}


def collect_pragmas(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """``{1-based line number: suppressed rule ids}`` for one file."""
    table: Dict[int, Set[str]] = {}
    for number, line in enumerate(lines, start=1):
        rules = pragma_rules(line)
        if rules:
            table[number] = rules
    return table


def unjustified_pragma_lines(lines: Sequence[str]) -> List[int]:
    """Lines carrying a pragma with no justification text after it."""
    bad: List[int] = []
    for number, line in enumerate(lines, start=1):
        if PRAGMA_PATTERN.search(line) and not JUSTIFIED_PATTERN.search(line):
            bad.append(number)
    return bad
