"""The lint engine: file collection, rule dispatch, pragma filtering.

One :func:`lint_paths` (or :func:`lint_sources`, for in-memory fixture
suites) call produces a :class:`LintResult`:

* per-file rules run over every parsed file;
* the cross-file passes run once: worker reachability feeds P102, the
  registry completeness check (R103) fires only when the registry
  module itself is in scope;
* ``# repro: lint-ok[RULE]`` pragmas suppress findings on their line --
  the suppressed count is reported, never silently dropped;
* files that fail to parse surface as an ``X100`` syntax finding rather
  than aborting the run (the rest of the tree still gets checked).

Baseline filtering is the caller's concern
(:func:`repro.analysis.baseline.partition_baseline`): the engine
reports everything it sees.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis import callgraph, rules
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.pragmas import collect_pragmas, unjustified_pragma_lines
from repro.errors import StaticAnalysisError

#: Pseudo-rule for unparseable files: cannot be pragma'd away (the
#: pragma table needs a parse), can be baselined like anything else.
SYNTAX_RULE = "X100"


@dataclass
class LintResult:
    """Everything one lint run learned."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    #: worker-reachable module names (diagnostic surface for tests/tools)
    worker_reachable: Set[str] = field(default_factory=set)


def _validated_select(select: Optional[Sequence[str]]) -> Set[str]:
    known = rules.known_rule_ids()
    if select is None:
        return set(known)
    chosen = {rule.strip() for rule in select if rule.strip()}
    unknown = chosen - known
    if unknown:
        raise StaticAnalysisError(
            f"unknown rule id(s) {sorted(unknown)}; known: {sorted(known)}"
        )
    return chosen


def _module_name(relpath: str) -> str:
    """Dotted module name of a scanned file.

    ``src/repro/parallel/shard.py`` -> ``repro.parallel.shard`` and
    package ``__init__`` files collapse onto the package name, so the
    import-closure pass resolves real import statements directly.
    Paths outside a ``src`` layout fall back to their slash-to-dot
    form -- fixture suites match on those names explicitly.
    """
    path = relpath.replace("\\", "/")
    if path.endswith(".py"):
        path = path[: -len(".py")]
    parts = [part for part in path.split("/") if part not in ("", ".")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def collect_files(paths: Sequence[str], root: str) -> List[str]:
    """The ``.py`` files under ``paths`` (files or directories),
    relative to ``root``, deterministically ordered."""
    out: Set[str] = set()
    for path in paths:
        absolute = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(absolute):
            out.add(os.path.relpath(absolute, root))
        elif os.path.isdir(absolute):
            for dirpath, dirnames, filenames in os.walk(absolute):
                dirnames[:] = [
                    d for d in dirnames
                    if d != "__pycache__" and not d.startswith(".")
                ]
                for name in filenames:
                    if name.endswith(".py"):
                        out.add(
                            os.path.relpath(os.path.join(dirpath, name), root)
                        )
        else:
            raise StaticAnalysisError(f"no such file or directory: {path}")
    return sorted(rel.replace("\\", "/") for rel in out)


def lint_sources(
    sources: Dict[str, str],
    select: Optional[Sequence[str]] = None,
    root: Optional[str] = None,
) -> LintResult:
    """Lint in-memory sources: ``{relative path: source text}``.

    The fixture-suite entry point -- byte-for-byte the same pipeline
    :func:`lint_paths` runs on files.
    """
    chosen = _validated_select(select)
    result = LintResult()
    contexts: List[rules.FileContext] = []
    indexed: Dict[str, object] = {}

    for relpath in sorted(sources):
        result.files_scanned += 1
        try:
            ctx = rules.FileContext(
                relpath, sources[relpath], _module_name(relpath)
            )
        except SyntaxError as error:
            result.findings.append(Finding(
                rule=SYNTAX_RULE,
                path=relpath.replace("\\", "/"),
                line=error.lineno or 1,
                message=f"file does not parse: {error.msg}",
            ))
            continue
        contexts.append(ctx)
        indexed[ctx.module_name] = callgraph.index_module(ctx.tree)

    reachable = callgraph.worker_reachable_modules(indexed)  # type: ignore[arg-type]
    result.worker_reachable = reachable

    raw: List[Finding] = []
    for ctx in contexts:
        for rule_id, check in rules.PER_FILE_CHECKS.items():
            if rule_id in chosen:
                raw.extend(check(ctx))
        if "P102" in chosen:
            raw.extend(rules.check_worker_mutable_state(
                ctx, ctx.module_name in reachable
            ))
        # A pragma that names no justification is itself a finding --
        # the workflow requires the why next to the what.
        if "X101" in chosen:
            for line in unjustified_pragma_lines(ctx.lines):
                raw.append(ctx.finding(
                    "X101", line,
                    "lint-ok pragma carries no justification; say why the "
                    "violation is intentional",
                ))
    if "R103" in chosen:
        raw.extend(rules.check_stale_registry(contexts, root))

    by_path = {ctx.relpath: ctx for ctx in contexts}
    for finding in raw:
        ctx = by_path.get(finding.path)
        if ctx is not None:
            pragmas = collect_pragmas(ctx.lines)
            if finding.rule in pragmas.get(finding.line, set()):
                result.suppressed += 1
                continue
        result.findings.append(finding)
    result.findings = sort_findings(result.findings)
    return result


def lint_paths(
    paths: Sequence[str],
    root: Optional[str] = None,
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint files/directories rooted at ``root`` (default: cwd)."""
    root = os.path.abspath(root or os.getcwd())
    files = collect_files(paths, root)
    sources: Dict[str, str] = {}
    for relpath in files:
        with open(os.path.join(root, relpath), "r", encoding="utf-8") as handle:
            sources[relpath] = handle.read()
    return lint_sources(sources, select=select, root=root)
