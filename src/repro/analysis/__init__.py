"""Static analysis: the ``repro lint`` invariant checker.

The runtime's guarantees -- bit-exact results at any shard/worker
geometry, deterministic counter-keyed randomness, typed failures across
the pool boundary, one documented configuration surface -- are enforced
dynamically by the byte-compare gates in ``scripts/perf_smoke.sh``.
This package enforces them *statically*, so a violation is caught in
any geometry, not just the ones the gates exercise.

Entry points:

* ``repro lint [paths...]`` (the ``snn-hybrid`` subcommand) and
  ``python -m repro.analysis`` -- identical flags, shared here;
* :func:`lint_paths` / :func:`lint_sources` -- library API (the test
  suite's fixture harness);
* ``scripts/check_static.py`` -- the CI gate wired into
  ``scripts/perf_smoke.sh``.

See ``docs/LINTING.md`` for the rule catalog, the
``# repro: lint-ok[RULE] why`` pragma convention and the baseline
workflow.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    partition_baseline,
    save_baseline,
)
from repro.analysis.engine import LintResult, lint_paths, lint_sources
from repro.analysis.findings import Finding, render_human, render_json
from repro.analysis.rules import RULES
from repro.errors import StaticAnalysisError

__all__ = [
    "Finding",
    "LintResult",
    "RULES",
    "add_lint_arguments",
    "lint_paths",
    "lint_sources",
    "main",
    "run_lint_from_args",
]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``lint`` flag set, shared by the ``snn-hybrid lint``
    subcommand and ``python -m repro.analysis``."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["human", "json"],
        default="human",
        help="finding output format (default: human)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=(
            "grandfathered-findings file (default: lint-baseline.json "
            "next to the lint root when present; 'none' disables)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file with the current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def _resolve_baseline_path(arg: Optional[str], root: str) -> Optional[str]:
    if arg == "none":
        return None
    if arg is not None:
        return arg if os.path.isabs(arg) else os.path.join(root, arg)
    default = os.path.join(root, DEFAULT_BASELINE_NAME)
    return default if os.path.exists(default) else None


def run_lint_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed ``lint`` invocation; returns the exit code
    (0 clean, 1 findings, 2 usage/configuration error)."""
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id}  {rule.name:<22s} {rule.summary}")
        return 0
    root = os.getcwd()
    select = args.select.split(",") if args.select else None
    try:
        result = lint_paths(args.paths, root=root, select=select)
        baseline_path = _resolve_baseline_path(args.baseline, root)
        if args.update_baseline:
            target = baseline_path or os.path.join(root, DEFAULT_BASELINE_NAME)
            count = save_baseline(target, result.findings)
            print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
                  f"to {target}")
            return 0
        baselined: List[Finding] = []
        if baseline_path is not None:
            result.findings, baselined = partition_baseline(
                result.findings, load_baseline(baseline_path)
            )
    except StaticAnalysisError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    render = render_json if args.format == "json" else render_human
    print(render(
        result.findings,
        files_scanned=result.files_scanned,
        suppressed=result.suppressed,
        baselined=len(baselined),
    ))
    return 1 if result.findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker for the repro package",
    )
    add_lint_arguments(parser)
    return run_lint_from_args(parser.parse_args(argv))
