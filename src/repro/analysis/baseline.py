"""Checked-in baseline of grandfathered findings.

The baseline lets the static gate land *green* on a tree that still
carries known violations: each entry acknowledges one existing finding
as "to be fixed, not to be multiplied". New findings -- including the
same rule firing on a *changed* line -- are never absorbed, because the
match key is ``(rule, path, stripped source line)`` with no line
number: unrelated edits may shift a grandfathered line without
un-baselining it, but touching the offending line itself (or moving the
file) revokes the exemption and the gate fails until the violation is
fixed or deliberately re-baselined with ``--update-baseline``.

Format: a JSON document with a version tag and a sorted entry list, so
diffs of the checked-in file stay reviewable.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Dict, Iterable, List, Tuple

from repro.analysis.findings import Finding, sort_findings
from repro.errors import StaticAnalysisError

_FORMAT = "repro-lint-baseline-v1"

#: Conventional location, relative to the repo root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

BaselineKey = Tuple[str, str, str]


def load_baseline(path: str) -> Counter:
    """The multiset of grandfathered finding keys in ``path``.

    A multiset, not a set: two identical offending lines in one file
    produce two findings, and a baseline carrying one entry must absorb
    exactly one of them. Raises
    :class:`~repro.errors.StaticAnalysisError` on unreadable or
    foreign-format files -- a gate must never silently run baseline-less
    because of a typo'd path or a corrupt checkout.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise StaticAnalysisError(f"cannot read baseline {path}: {error}")
    except ValueError as error:
        raise StaticAnalysisError(f"baseline {path} is not valid JSON: {error}")
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise StaticAnalysisError(
            f"baseline {path} has format {payload.get('format')!r}, "
            f"expected {_FORMAT!r}"
        )
    keys: Counter = Counter()
    for entry in payload.get("entries", ()):
        try:
            keys[(entry["rule"], entry["path"], entry["snippet"])] += 1
        except (TypeError, KeyError):
            raise StaticAnalysisError(
                f"baseline {path} carries a malformed entry: {entry!r}"
            )
    return keys


def save_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write ``findings`` as the new baseline; returns the entry count.

    Entries are sorted and line numbers recorded for the human reader
    only -- matching never uses them.
    """
    entries: List[Dict[str, object]] = [
        {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "snippet": finding.snippet,
        }
        for finding in sort_findings(findings)
    ]
    payload = {"format": _FORMAT, "entries": entries}
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return len(entries)


def partition_baseline(
    findings: Iterable[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into ``(fresh, grandfathered)`` against a baseline.

    Consumes baseline entries as it matches, so N identical findings
    need N entries.
    """
    remaining = Counter(baseline)
    fresh: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in sort_findings(findings):
        key = finding.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            fresh.append(finding)
    return fresh, grandfathered
