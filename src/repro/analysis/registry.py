"""Single source of truth for the repo's configuration surface.

Every ``REPRO_*`` environment variable and every long CLI flag the
package exposes is declared here, once, with its owning module. Three
consumers keep each other honest:

* ``repro lint`` (rules R101/R102/R103 in :mod:`repro.analysis.rules`)
  fails when a ``REPRO_*`` token or an ``add_argument("--flag")``
  appears in the source tree without a registry entry -- and when a
  registry entry no longer appears anywhere (stale entry);
* ``scripts/check_docs.py`` fails when a registry entry is missing from
  ``docs/CONFIGURATION.md`` -- docs drift and code drift are caught
  against the *same* list instead of two independent greps;
* the config modules themselves import their env-var names from here,
  so a renamed variable cannot silently fork from its registration.

Family prefixes: prose like "the ``REPRO_RETRY_*`` family" leaves a
``REPRO_RETRY_`` token in the tree. Those are registered as
:data:`FAMILY_PREFIXES` (each must prefix at least one real variable)
rather than as variables, and the scan helpers accept them.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Dict, Iterable, Set, Tuple

#: Token shape shared by every scanner (linter, docs gate, tests).
ENV_TOKEN_PATTERN = re.compile(r"REPRO_[A-Z0-9_]+")

#: Directories (relative to the repo root) where configuration surface
#: may be introduced. Tests are deliberately excluded: they reference
#: hypothetical and negative-case values.
SCAN_DIRS: Tuple[str, ...] = ("src", "scripts", "benchmarks")


@dataclass(frozen=True)
class EnvVar:
    """One registered ``REPRO_*`` environment variable."""

    name: str
    owner: str  # module (or tree) whose config layer resolves it
    description: str


@dataclass(frozen=True)
class CliFlag:
    """One registered long CLI flag of the ``snn-hybrid`` parser."""

    name: str
    subcommand: str  # "common" = shared via add_common
    description: str


_ENV_VARS: Tuple[EnvVar, ...] = (
    # -- runtime layer (src/repro/runtime/config.py) ------------------
    EnvVar("REPRO_RUNTIME", "repro/runtime/config.py",
           "0 disables the fused inference runtime globally"),
    EnvVar("REPRO_DISPATCH_POLICY", "repro/runtime/config.py",
           "dense/event routing: cost (default) or density"),
    EnvVar("REPRO_EVENT_KBLOCK", "repro/runtime/config.py",
           "blocked k-fold control: auto, 0 (off) or a block size"),
    EnvVar("REPRO_INT_KERNELS", "repro/runtime/config.py",
           "integer datapath: auto (default), on or off"),
    # -- parallel layer (src/repro/parallel/config.py) ----------------
    EnvVar("REPRO_WORKERS", "repro/parallel/config.py",
           "worker-process count; 1 is the serial fallback"),
    EnvVar("REPRO_ON_SHARD_FAILURE", "repro/parallel/config.py",
           "poison-shard handling: raise (default) or skip"),
    EnvVar("REPRO_PERSISTENT_POOL", "repro/parallel/config.py",
           "0 reverts run_tasks to the pool-per-call executor"),
    EnvVar("REPRO_START_METHOD", "repro/parallel/config.py",
           "multiprocessing start method override for service pools"),
    EnvVar("REPRO_BREAKER_THRESHOLD", "repro/parallel/config.py",
           "pool aborts in the rolling window that open the breaker"),
    EnvVar("REPRO_BREAKER_WINDOW_MS", "repro/parallel/config.py",
           "rolling abort-count window of the circuit breaker"),
    EnvVar("REPRO_BREAKER_COOLDOWN_MS", "repro/parallel/config.py",
           "serial-degradation cooldown while the breaker is open"),
    EnvVar("REPRO_RETRY_MAX_ATTEMPTS", "repro/parallel/config.py",
           "per-task attempt budget of the self-healing executor"),
    EnvVar("REPRO_RETRY_BACKOFF_MS", "repro/parallel/config.py",
           "base backoff before a shard re-execution"),
    EnvVar("REPRO_RETRY_BACKOFF_MAX_MS", "repro/parallel/config.py",
           "backoff growth cap of the retry policy"),
    EnvVar("REPRO_RETRY_TASK_TIMEOUT_MS", "repro/parallel/config.py",
           "per-attempt wall budget that kills wedged workers"),
    # -- faults layer (src/repro/faults/config.py) --------------------
    EnvVar("REPRO_FAULT_PLAN", "repro/faults/config.py",
           "deterministic worker-fault injection plan"),
    # -- experiments layer (src/repro/experiments/config.py) ----------
    EnvVar("REPRO_EVAL_CACHE", "repro/experiments/config.py",
           "0 disables the disk-backed evaluation cache"),
    # -- serving layer (src/repro/serving/config.py) ------------------
    EnvVar("REPRO_SERVE_MAX_BATCH", "repro/serving/config.py",
           "most requests one dynamic batch may coalesce"),
    EnvVar("REPRO_SERVE_MAX_WAIT_MS", "repro/serving/config.py",
           "longest the batcher holds the oldest request open"),
    EnvVar("REPRO_SERVE_QUEUE_DEPTH", "repro/serving/config.py",
           "bounded per-model admission queue"),
    EnvVar("REPRO_SERVE_TIMEOUT_MS", "repro/serving/config.py",
           "default per-request deadline from admission"),
    EnvVar("REPRO_SERVE_DRAIN_MS", "repro/serving/config.py",
           "graceful-drain budget at shutdown"),
    # -- benchmarks ---------------------------------------------------
    EnvVar("REPRO_BENCH_SCALE", "benchmarks/bench_runtime_hotpaths.py",
           "preset scale of the runtime hot-path bench"),
    EnvVar("REPRO_BENCH_WORKSPACE", "benchmarks/bench_runtime_hotpaths.py",
           "artifact workspace of the runtime hot-path bench"),
)

#: Registered family prefixes: prose shorthand for a group of variables
#: ("REPRO_RETRY_*"). Each must prefix at least one registered variable.
FAMILY_PREFIXES: Tuple[str, ...] = ("REPRO_RETRY_", "REPRO_SERVE_")


_CLI_FLAGS: Tuple[CliFlag, ...] = (
    CliFlag("--version", "top-level", "print the package version"),
    # -- shared via add_common ----------------------------------------
    CliFlag("--scale", "common", "preset scale: tiny | small | paper"),
    CliFlag("--workspace", "common", "artifact workspace directory"),
    CliFlag("--seed", "common", "master experiment seed"),
    CliFlag("--encoder-seed", "common", "counter-stream encoding seed"),
    CliFlag("--quiet", "common", "suppress progress output"),
    CliFlag("--workers", "common", "worker processes for sharded eval"),
    CliFlag("--eval-cache", "common", "enable the disk evaluation cache"),
    CliFlag("--no-eval-cache", "common", "disable the disk evaluation cache"),
    CliFlag("--int-kernels", "common", "integer datapath: off | auto | on"),
    CliFlag("--retries", "common", "attempts per shard before quarantine"),
    CliFlag("--on-shard-failure", "common", "poison handling: raise | skip"),
    # -- per-subcommand -----------------------------------------------
    CliFlag("--scheme", "train/evaluate/simulate/partition/serve",
            "quantization scheme"),
    CliFlag("--coding", "train/evaluate/simulate/serve", "input coding"),
    CliFlag("--config", "simulate", "hardware configuration"),
    CliFlag("--budget", "partition", "NC budget of the balanced allocation"),
    CliFlag("--write-md", "experiment", "write EXPERIMENTS.md-style output"),
    CliFlag("--max-batch", "serve", "dynamic-batch size cap"),
    CliFlag("--max-wait-ms", "serve", "batching window"),
    CliFlag("--queue-depth", "serve", "bounded admission queue"),
    CliFlag("--timeout-ms", "serve", "per-request deadline"),
    CliFlag("--drain-ms", "serve", "graceful-drain budget"),
    CliFlag("--mode", "serve", "load shape: open | closed"),
    CliFlag("--rate", "serve", "open-loop arrival rate"),
    CliFlag("--requests", "serve", "total requests to replay"),
    CliFlag("--clients", "serve", "closed-loop client count"),
    # -- lint subcommand (repro lint / python -m repro.analysis) ------
    CliFlag("--format", "lint", "finding output: human | json"),
    CliFlag("--baseline", "lint", "grandfathered-findings file"),
    CliFlag("--update-baseline", "lint", "rewrite the baseline file"),
    CliFlag("--select", "lint", "comma-separated rule subset"),
    CliFlag("--list-rules", "lint", "print the rule catalog and exit"),
)


ENV_VARS: Dict[str, EnvVar] = {var.name: var for var in _ENV_VARS}

CLI_FLAGS: Dict[str, CliFlag] = {flag.name: flag for flag in _CLI_FLAGS}


def registered_env_names() -> Set[str]:
    """The registered variable names (family prefixes excluded)."""
    return set(ENV_VARS)


def registered_flag_names() -> Set[str]:
    """The registered long CLI flags."""
    return set(CLI_FLAGS)


def documented_tokens() -> Set[str]:
    """Every token ``docs/CONFIGURATION.md`` must mention.

    Variables, family prefixes and flags -- the docs-drift gate
    (``scripts/check_docs.py``) iterates exactly this set.
    """
    return registered_env_names() | set(FAMILY_PREFIXES) | registered_flag_names()


def is_registered_env_token(token: str) -> bool:
    """Whether a scanned ``REPRO_*`` token is accounted for.

    A token ending in ``_`` (prose shorthand for a variable family)
    matches
    through :data:`FAMILY_PREFIXES`; anything else must be a registered
    variable.
    """
    if token.endswith("_"):
        return token in FAMILY_PREFIXES
    return token in ENV_VARS


def scan_env_tokens_in_text(text: str) -> Set[str]:
    """Every ``REPRO_*`` token mentioned in ``text``."""
    return set(ENV_TOKEN_PATTERN.findall(text))


def scan_env_tokens(root: str, dirs: Iterable[str] = SCAN_DIRS) -> Set[str]:
    """Every ``REPRO_*`` token in the ``.py``/``.sh`` files under
    ``root``'s ``dirs`` -- the same walk the docs gate has always used,
    shared so the linter and the docs gate cannot diverge."""
    found: Set[str] = set()
    for scan_dir in dirs:
        top = os.path.join(root, scan_dir)
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for name in filenames:
                if not name.endswith((".py", ".sh")):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, "r", encoding="utf-8") as handle:
                    found |= scan_env_tokens_in_text(handle.read())
    return found


def verify_against_tree(root: str) -> Tuple[Set[str], Set[str]]:
    """Registry vs source tree, both directions.

    Returns ``(unregistered, stale)``: tokens present in the tree but
    not registered, and registered variables no longer mentioned
    anywhere. Both empty on a healthy tree.
    """
    seen = scan_env_tokens(root)
    unregistered = {tok for tok in seen if not is_registered_env_token(tok)}
    stale = registered_env_names() - seen
    return unregistered, stale
