"""The rule catalog: the codebase's hard invariants as named checks.

Four families, lettered after the invariants they defend (see
``docs/LINTING.md`` for the full rationale):

* **D -- determinism.** Results must be a pure function of
  configuration, never of ambient process state.

  - ``D101`` ambient RNG: calls into ``np.random.*`` / the stdlib
    ``random`` module outside the blessed stream module
    (``repro/utils/rng.py``). All randomness routes through
    ``counter_rng`` / ``counter_uniforms`` (coordinate-keyed streams)
    or ``new_rng``/``fork_rng`` (explicitly seeded sequential streams).
  - ``D102`` wall-clock reads: ``time.time``/``perf_counter``/
    ``datetime.now`` & friends outside the blessed measurement modules
    (``repro/utils/timing.py``, ``repro/runtime/costmodel.py``).
    ``time.monotonic`` is deliberately allowed: the codebase uses it
    only for deadline/timeout arithmetic, which bounds *when* work
    stops, never *what* it computes.

* **P -- cross-process safety.** A worker process must see exactly the
  state the parent shipped it.

  - ``P101`` ambient environment reads: ``os.environ``/``os.getenv``
    reads outside the per-layer ``config.py`` modules. Environment
    *writes* are allowed -- they are the documented parent-side
    mechanism for scoping knobs to worker processes.
  - ``P102`` mutable module state in worker-executed code: a
    module-level binding that is mutated (or rebound via ``global``)
    from function scope, in a module reachable from a pool-worker entry
    point (see :mod:`repro.analysis.callgraph`). Intentional
    per-process caches carry a pragma documenting their cross-process
    story.

* **E -- typed-error discipline.** Failures crossing the pool boundary
  must be typed :class:`~repro.errors.ReproError` values, never
  swallowed.

  - ``E101`` swallowed broad except: a bare/``Exception``/
    ``BaseException`` handler whose body cannot re-raise, inside
    ``parallel/``, ``serving/`` or ``faults/``.
  - ``E102`` untyped raise: raising a builtin exception type in those
    same subsystems.

* **R -- registry drift.** The configuration surface has one source of
  truth (:mod:`repro.analysis.registry`).

  - ``R101`` unregistered ``REPRO_*`` token;
  - ``R102`` unregistered CLI long flag in an ``add_argument`` call;
  - ``R103`` stale registry entry (variable registered but gone from
    the scanned tree; only checked when the registry module itself is
    in scope, i.e. on whole-tree runs).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import registry
from repro.analysis.findings import Finding

# --------------------------------------------------------------------
# Rule metadata
# --------------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    """One named invariant check."""

    id: str
    name: str
    summary: str


RULES: Tuple[Rule, ...] = (
    Rule("D101", "ambient-rng",
         "np.random.* / stdlib random outside repro/utils/rng.py; route "
         "randomness through counter_rng/counter_uniforms or new_rng"),
    Rule("D102", "wall-clock",
         "time.time/perf_counter/datetime.now outside the blessed "
         "measurement modules (utils/timing.py, runtime/costmodel.py)"),
    Rule("P101", "ambient-env",
         "os.environ / os.getenv read outside a layer config.py module"),
    Rule("P102", "worker-mutable-state",
         "module-level state mutated from function scope in a "
         "worker-reachable module"),
    Rule("E101", "swallowed-except",
         "bare/broad except that cannot re-raise, in parallel/, "
         "serving/ or faults/"),
    Rule("E102", "untyped-raise",
         "builtin exception raised in parallel/, serving/ or faults/; "
         "raise a ReproError subtype"),
    Rule("R101", "unregistered-env",
         "REPRO_* token missing from analysis/registry.py"),
    Rule("R102", "unregistered-flag",
         "CLI long flag missing from analysis/registry.py"),
    Rule("R103", "stale-registry",
         "registered REPRO_* variable no longer present in the tree"),
    Rule("X100", "syntax-error",
         "file does not parse; emitted unconditionally (a file that "
         "cannot be parsed cannot be checked or pragma'd)"),
    Rule("X101", "unjustified-pragma",
         "lint-ok pragma without a justification; the workflow requires "
         "the why next to the what"),
)

RULE_IDS: Tuple[str, ...] = tuple(rule.id for rule in RULES)


# --------------------------------------------------------------------
# Blessed locations (path suffixes, '/'-separated)
# --------------------------------------------------------------------

#: The only module that may touch ambient RNG constructors: it is where
#: seeds are canonicalised and counter streams are keyed.
RNG_BLESSED_SUFFIXES = ("repro/utils/rng.py",)

#: Modules whose purpose *is* wall-clock measurement.
CLOCK_BLESSED_SUFFIXES = (
    "repro/utils/timing.py",
    "repro/runtime/costmodel.py",
)

#: Environment reads are legal only in per-layer config modules.
ENV_BLESSED_BASENAME = "config.py"

#: Subsystems under typed-error discipline (results cross the pool
#: boundary or the serving API).
TYPED_ERROR_DIR_PARTS = ("parallel", "serving", "faults")

#: Builtin exception types that must not cross the pool boundary raw.
BUILTIN_EXCEPTIONS = frozenset({
    "Exception", "BaseException", "ValueError", "TypeError",
    "RuntimeError", "KeyError", "IndexError", "AttributeError",
    "OSError", "IOError", "LookupError", "ArithmeticError",
    "ZeroDivisionError", "OverflowError", "StopIteration",
    "NotImplementedError", "AssertionError", "TimeoutError",
    "MemoryError", "EOFError", "FileNotFoundError", "PermissionError",
    "InterruptedError", "BrokenPipeError", "ConnectionError",
})

#: time-module attributes whose reads leak wall-clock into results.
#: ``monotonic``/``monotonic_ns`` are excluded by design (deadline
#: arithmetic only -- they bound *when* work stops, not what it computes).
CLOCK_ATTRS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "process_time", "process_time_ns", "clock_gettime",
})

DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: Mutating method names that turn a module-level container into state.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popleft",
    "appendleft", "clear", "update", "setdefault", "add", "discard",
    "__setitem__", "sort", "reverse",
})

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                             "BoundedSemaphore", "Event", "local"})


# --------------------------------------------------------------------
# Per-file context
# --------------------------------------------------------------------


class FileContext:
    """Parsed source plus the name/alias tables the rules share."""

    def __init__(self, relpath: str, source: str, module_name: str) -> None:
        self.relpath = relpath.replace("\\", "/")
        self.source = source
        self.module_name = module_name
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=relpath)
        # local name -> imported module ("np" -> "numpy")
        self.module_aliases: Dict[str, str] = {}
        # local name -> (module, original name) for from-imports
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[
                        alias.asname or alias.name.split(".")[0]
                    ] = alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.level == 0:
                    for alias in node.names:
                        self.from_imports[alias.asname or alias.name] = (
                            node.module, alias.name
                        )

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: str, node_or_line, message: str) -> Finding:
        line = (
            node_or_line
            if isinstance(node_or_line, int)
            else node_or_line.lineno
        )
        return Finding(
            rule=rule,
            path=self.relpath,
            line=line,
            message=message,
            snippet=self.snippet(line),
        )

    # -- helpers shared by several rules ------------------------------

    def path_endswith(self, suffixes: Sequence[str]) -> bool:
        return any(self.relpath.endswith(suffix) for suffix in suffixes)

    def in_typed_error_dirs(self) -> bool:
        parts = self.relpath.split("/")
        return any(part in TYPED_ERROR_DIR_PARTS for part in parts[:-1])

    def resolves_to_module(self, node: ast.expr, module: str) -> bool:
        """Whether ``node`` names ``module`` through the file's imports."""
        if isinstance(node, ast.Name):
            return self.module_aliases.get(node.id) == module
        if isinstance(node, ast.Attribute):
            # e.g. numpy.random reached as an attribute of numpy
            base = self.attribute_chain(node)
            return base == module
        return False

    def attribute_chain(self, node: ast.expr) -> Optional[str]:
        """Dotted name of an attribute chain rooted at a Name, resolved
        through import aliases (``np.random.rand`` -> ``numpy.random.rand``);
        None for computed roots."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in self.module_aliases:
            root = self.module_aliases[root]
        elif root in self.from_imports:
            module, original = self.from_imports[root]
            root = f"{module}.{original}"
        parts.append(root)
        return ".".join(reversed(parts))


# --------------------------------------------------------------------
# D101 -- ambient RNG
# --------------------------------------------------------------------


def check_ambient_rng(ctx: FileContext) -> List[Finding]:
    if ctx.path_endswith(RNG_BLESSED_SUFFIXES):
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module == "random" or node.module.startswith(
                ("numpy.random", "random.")
            ):
                findings.append(ctx.finding(
                    "D101", node,
                    f"import from ambient RNG module {node.module!r}; "
                    "route randomness through repro.utils.rng",
                ))
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith(
                    ("numpy.random", "random.")
                ):
                    findings.append(ctx.finding(
                        "D101", node,
                        f"import of ambient RNG module {alias.name!r}; "
                        "route randomness through repro.utils.rng",
                    ))
        elif isinstance(node, ast.Call):
            chain = ctx.attribute_chain(node.func)
            if chain and (
                chain.startswith("numpy.random.")
                or chain.startswith("random.")
            ):
                findings.append(ctx.finding(
                    "D101", node,
                    f"ambient RNG call {chain}(); use "
                    "repro.utils.rng (counter_rng/counter_uniforms for "
                    "coordinate-keyed draws, new_rng for seeded streams)",
                ))
    return findings


# --------------------------------------------------------------------
# D102 -- wall-clock reads
# --------------------------------------------------------------------


def check_wall_clock(ctx: FileContext) -> List[Finding]:
    if ctx.path_endswith(CLOCK_BLESSED_SUFFIXES):
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            bad = [a.name for a in node.names if a.name in CLOCK_ATTRS]
            if bad:
                findings.append(ctx.finding(
                    "D102", node,
                    f"imports wall-clock reader(s) {', '.join(bad)} from "
                    "time; only blessed measurement modules may read the "
                    "clock (time.monotonic deadline arithmetic is exempt)",
                ))
        elif isinstance(node, ast.Call):
            chain = ctx.attribute_chain(node.func)
            if chain is None:
                continue
            if chain.startswith("time.") and chain.split(".", 1)[1] in CLOCK_ATTRS:
                findings.append(ctx.finding(
                    "D102", node,
                    f"wall-clock read {chain}(); results must not depend "
                    "on the clock -- measure inside utils/timing.py or "
                    "runtime/costmodel.py, or pragma with a justification",
                ))
            elif (
                chain.startswith("datetime.")
                and chain.rsplit(".", 1)[-1] in DATETIME_ATTRS
            ):
                findings.append(ctx.finding(
                    "D102", node,
                    f"wall-clock read {chain}(); results must not depend "
                    "on the calendar clock",
                ))
    return findings


# --------------------------------------------------------------------
# P101 -- ambient environment reads
# --------------------------------------------------------------------


def _is_environ(ctx: FileContext, node: ast.expr) -> bool:
    chain = ctx.attribute_chain(node)
    return chain in ("os.environ",)


def check_ambient_env(ctx: FileContext) -> List[Finding]:
    if ctx.relpath.rsplit("/", 1)[-1] == ENV_BLESSED_BASENAME:
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            chain = ctx.attribute_chain(node.func)
            if chain == "os.getenv":
                findings.append(ctx.finding(
                    "P101", node,
                    "ambient os.getenv read; resolve through the layer's "
                    "config.py so parent and workers agree on precedence",
                ))
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("get", "setdefault", "pop")
                and _is_environ(ctx, node.func.value)
            ):
                findings.append(ctx.finding(
                    "P101", node,
                    f"ambient os.environ.{node.func.attr} read; resolve "
                    "through the layer's config.py module",
                ))
        elif isinstance(node, ast.Subscript):
            if isinstance(node.ctx, ast.Load) and _is_environ(ctx, node.value):
                findings.append(ctx.finding(
                    "P101", node,
                    "ambient os.environ[...] read; resolve through the "
                    "layer's config.py module (writes are the documented "
                    "parent-side scoping mechanism and stay legal)",
                ))
    return findings


# --------------------------------------------------------------------
# P102 -- mutable module state in worker-reachable modules
# --------------------------------------------------------------------


def _module_level_bindings(tree: ast.Module) -> Dict[str, int]:
    """Module-level ``name -> lineno`` for simple assignments."""
    bindings: Dict[str, int] = {}
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                bindings.setdefault(target.id, node.lineno)
    return bindings


def _iter_scope(body) -> "List[ast.AST]":
    """Every node of one scope, *not* descending into nested function
    (or lambda) bodies -- those are separate scopes with their own pass."""
    out: List[ast.AST] = []
    stack = list(body)
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return out


def _local_names(func: ast.AST) -> Set[str]:
    """Parameter and locally bound names of one function body (nested
    function bodies excluded -- they get their own scope pass)."""
    names: Set[str] = set()
    args = func.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in _iter_scope(func.body):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


def _function_scope_mutations(tree: ast.Module) -> Dict[str, List[int]]:
    """Names mutated or globally rebound inside function bodies.

    A name the function binds locally (parameter or plain assignment)
    shadows the module binding, so mutating it is not module state --
    unless a ``global`` statement says otherwise.
    """
    mutated: Dict[str, List[int]] = {}

    def note(name: str, line: int) -> None:
        mutated.setdefault(name, []).append(line)

    def scan_function(func: ast.AST) -> None:
        scope = _iter_scope(func.body)
        declared_global: Set[str] = set()
        for node in scope:
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        locals_here = _local_names(func) - declared_global
        for name in declared_global:
            note(name, func.lineno)

        def hits_module(name: str) -> bool:
            return name not in locals_here

        for node in scope:
            if (
                isinstance(node, (ast.Subscript, ast.Attribute))
                and isinstance(node.ctx, (ast.Store, ast.Del))
                and isinstance(node.value, ast.Name)
                and hits_module(node.value.id)
            ):
                note(node.value.id, node.lineno)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
                and isinstance(node.func.value, ast.Name)
                and hits_module(node.func.value.id)
            ):
                note(node.func.value.id, node.func.value.lineno)

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan_function(node)
    return mutated


def _is_lock_binding(tree: ast.Module, name: str) -> bool:
    """Synchronisation primitives are coordination, not data state."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == name for t in node.targets
        ):
            value = node.value
            if isinstance(value, ast.Call):
                func = value.func
                attr = (
                    func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else None
                )
                return attr in _LOCK_FACTORIES
    return False


def check_worker_mutable_state(
    ctx: FileContext, worker_reachable: bool
) -> List[Finding]:
    if not worker_reachable:
        return []
    findings: List[Finding] = []
    bindings = _module_level_bindings(ctx.tree)
    mutations = _function_scope_mutations(ctx.tree)
    for name, lines in sorted(mutations.items()):
        if name not in bindings:
            continue
        if name.startswith("__"):  # __all__ etc. are never touched at run time
            continue
        if _is_lock_binding(ctx.tree, name):
            continue
        line = bindings[name]
        findings.append(ctx.finding(
            "P102", line,
            f"module-level state {name!r} is mutated from function scope "
            f"(line{'s' if len(lines) > 1 else ''} "
            f"{', '.join(str(l) for l in sorted(set(lines))[:4])}) in a "
            "worker-reachable module; per-process caches/counters need a "
            "pragma documenting their cross-process story",
        ))
    return findings


# --------------------------------------------------------------------
# E101 / E102 -- typed-error discipline
# --------------------------------------------------------------------


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True

    def broad(node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id in (
            "Exception", "BaseException"
        )

    if isinstance(handler.type, ast.Tuple):
        return any(broad(el) for el in handler.type.elts)
    return broad(handler.type)


def check_swallowed_except(ctx: FileContext) -> List[Finding]:
    if not ctx.in_typed_error_dirs():
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad_handler(node):
            continue
        if any(isinstance(sub, ast.Raise) for body in node.body
               for sub in ast.walk(body)):
            continue
        findings.append(ctx.finding(
            "E101", node,
            "broad except swallows the error in a pool/serving subsystem; "
            "catch typed ReproError subtypes, re-raise, or pragma with the "
            "containment justification",
        ))
    return findings


def check_untyped_raise(ctx: FileContext) -> List[Finding]:
    if not ctx.in_typed_error_dirs():
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id in BUILTIN_EXCEPTIONS:
            findings.append(ctx.finding(
                "E102", node,
                f"raises builtin {exc.id} across the pool/serving "
                "boundary; raise a ReproError subtype from repro.errors "
                "so callers can catch the package's failures as one family",
            ))
    return findings


# --------------------------------------------------------------------
# R101 / R102 / R103 -- registry drift
# --------------------------------------------------------------------

_REGISTRY_SUFFIX = "repro/analysis/registry.py"


def check_env_registration(ctx: FileContext) -> List[Finding]:
    if ctx.relpath.endswith(_REGISTRY_SUFFIX):
        return []
    findings: List[Finding] = []
    for number, line in enumerate(ctx.lines, start=1):
        for token in sorted(registry.scan_env_tokens_in_text(line)):
            if not registry.is_registered_env_token(token):
                findings.append(ctx.finding(
                    "R101", number,
                    f"{token} is not registered in "
                    "repro/analysis/registry.py; every REPRO_* variable "
                    "must be declared there (docs and parsers consume it)",
                ))
    return findings


def check_flag_registration(ctx: FileContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
            and node.args
        ):
            continue
        first = node.args[0]
        if (
            isinstance(first, ast.Constant)
            and isinstance(first.value, str)
            and first.value.startswith("--")
            and first.value not in registry.registered_flag_names()
        ):
            findings.append(ctx.finding(
                "R102", node,
                f"CLI flag {first.value!r} is not registered in "
                "repro/analysis/registry.py",
            ))
    return findings


def check_stale_registry(
    contexts: Sequence[FileContext], root: Optional[str]
) -> List[Finding]:
    """R103 -- runs only when the registry module itself is in scope.

    Scans the conventional trees under ``root`` when given (whole-repo
    runs); otherwise falls back to the scanned sources, so partial runs
    that deliberately include the registry still get drift coverage.
    """
    reg_ctx = next(
        (c for c in contexts if c.relpath.endswith(_REGISTRY_SUFFIX)), None
    )
    if reg_ctx is None:
        return []
    if root is not None:
        seen = registry.scan_env_tokens(root)
    else:
        seen = set()
        for ctx in contexts:
            if ctx is not reg_ctx:
                seen |= registry.scan_env_tokens_in_text(ctx.source)
    findings: List[Finding] = []
    for name in sorted(registry.registered_env_names() - seen):
        line = _registry_entry_line(reg_ctx, name)
        findings.append(reg_ctx.finding(
            "R103", line,
            f"{name} is registered but no longer appears in the scanned "
            "tree; delete the stale entry (and its documentation)",
        ))
    return findings


def _registry_entry_line(reg_ctx: FileContext, name: str) -> int:
    pattern = re.compile(rf'"{re.escape(name)}"')
    for number, line in enumerate(reg_ctx.lines, start=1):
        if pattern.search(line):
            return number
    return 1


# --------------------------------------------------------------------
# Dispatch table consumed by the engine
# --------------------------------------------------------------------

#: rule id -> per-file checker. P102 and R103 need cross-file state and
#: are dispatched specially by the engine.
PER_FILE_CHECKS: Dict[str, Callable[[FileContext], List[Finding]]] = {
    "D101": check_ambient_rng,
    "D102": check_wall_clock,
    "P101": check_ambient_env,
    "E101": check_swallowed_except,
    "E102": check_untyped_raise,
    "R101": check_env_registration,
    "R102": check_flag_registration,
}


def known_rule_ids() -> Set[str]:
    return set(RULE_IDS)
