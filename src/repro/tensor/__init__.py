"""A small reverse-mode automatic differentiation engine on NumPy.

This subpackage is the training substrate for the reproduction: the paper
trains its SNNs with surrogate-gradient backpropagation-through-time using
snnTorch; here the same mathematics runs on a self-contained tape-based
autograd engine.

Public surface:

* :class:`~repro.tensor.tensor.Tensor` -- the differentiable array type,
* :mod:`repro.tensor.ops` -- functional primitives (conv2d, matmul, ...),
* :func:`~repro.tensor.tensor.parameter` -- convenience constructor for
  trainable tensors,
* :func:`~repro.tensor.grad_check.numeric_gradient` -- finite-difference
  checker used by the test suite.
"""

from repro.tensor.tensor import Tensor, no_grad, parameter
from repro.tensor import ops
from repro.tensor.grad_check import gradient_error, numeric_gradient

__all__ = [
    "Tensor",
    "gradient_error",
    "no_grad",
    "numeric_gradient",
    "ops",
    "parameter",
]
