"""The :class:`Tensor` type: a NumPy array with a gradient tape.

The engine is deliberately minimal -- dynamic graph, reverse mode only,
float32 -- but complete enough to train the paper's VGG9 SNN with
backpropagation through time. Operations live in
:mod:`repro.tensor.ops`; the class forwards operators there so that the
graph-building logic stays in one place.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.errors import GraphError

DTYPE = np.float32

_GRAD_ENABLED = [True]  # repro: lint-ok[P102] per-process autograd switch; scoped by no_grad and restored on exit


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables graph construction (inference mode)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def grad_enabled() -> bool:
    """True when new operations should be recorded on the tape."""
    return _GRAD_ENABLED[-1]


class Tensor:
    """A differentiable n-dimensional array.

    Attributes:
        data: the underlying ``numpy.ndarray`` (float32).
        grad: accumulated gradient, same shape as ``data`` (or None).
        requires_grad: whether backward should reach this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: Union[np.ndarray, float, int, Sequence],
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=DTYPE)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward = backward
        self._parents = parents if grad_enabled() else ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the raw array (shared memory; copy before mutating)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else _raise_item()

    # ------------------------------------------------------------------
    # Graph manipulation
    # ------------------------------------------------------------------
    def detach(self) -> "Tensor":
        """Return a view of the same data cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad``, validating the shape."""
        grad = np.asarray(grad, dtype=DTYPE)
        if grad.shape != self.data.shape:
            raise GraphError(
                f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
            )
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode accumulation from this tensor.

        Args:
            grad: seed gradient; defaults to ones (required implicitly for
                scalar losses, where it is the conventional ``dL/dL = 1``).
        """
        if grad is None:
            if self.data.size != 1:
                raise GraphError(
                    "backward() without an explicit gradient requires a scalar tensor"
                )
            grad = np.ones_like(self.data)
        order = _topological_order(self)
        self.accumulate_grad(np.broadcast_to(grad, self.data.shape).astype(DTYPE))
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------
    # Operators (implementations in repro.tensor.ops)
    # ------------------------------------------------------------------
    def __add__(self, other: "TensorLike") -> "Tensor":
        from repro.tensor import ops

        return ops.add(self, _wrap(other))

    __radd__ = __add__

    def __sub__(self, other: "TensorLike") -> "Tensor":
        from repro.tensor import ops

        return ops.sub(self, _wrap(other))

    def __rsub__(self, other: "TensorLike") -> "Tensor":
        from repro.tensor import ops

        return ops.sub(_wrap(other), self)

    def __mul__(self, other: "TensorLike") -> "Tensor":
        from repro.tensor import ops

        return ops.mul(self, _wrap(other))

    __rmul__ = __mul__

    def __truediv__(self, other: "TensorLike") -> "Tensor":
        from repro.tensor import ops

        return ops.div(self, _wrap(other))

    def __rtruediv__(self, other: "TensorLike") -> "Tensor":
        from repro.tensor import ops

        return ops.div(_wrap(other), self)

    def __neg__(self) -> "Tensor":
        from repro.tensor import ops

        return ops.neg(self)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        from repro.tensor import ops

        return ops.matmul(self, other)

    def __pow__(self, exponent: float) -> "Tensor":
        from repro.tensor import ops

        return ops.power(self, exponent)

    # Convenience methods mirroring the functional API -----------------
    def reshape(self, *shape: int) -> "Tensor":
        from repro.tensor import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        from repro.tensor import ops

        return ops.transpose(self, axes)

    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.sum_(self, axis=axis, keepdims=keepdims)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)


TensorLike = Union[Tensor, np.ndarray, float, int]


def _wrap(value: TensorLike) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def parameter(
    data: Union[np.ndarray, Sequence, float],
    name: str = "",
) -> Tensor:
    """Create a trainable tensor (``requires_grad=True``)."""
    return Tensor(np.asarray(data, dtype=DTYPE), requires_grad=True, name=name)


def _topological_order(root: Tensor) -> List[Tensor]:
    """Iterative DFS post-order over the tape (recursion-free: BPTT graphs
    for many timesteps would overflow Python's recursion limit)."""
    order: List[Tensor] = []
    visited: Set[int] = set()
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return order


def collect_parameters(items: Iterable[object]) -> List[Tensor]:
    """Flatten an iterable of tensors/modules into unique trainable tensors."""
    seen: Set[int] = set()
    params: List[Tensor] = []
    for item in items:
        candidates: Iterable[Tensor]
        if isinstance(item, Tensor):
            candidates = [item]
        elif hasattr(item, "parameters"):
            candidates = item.parameters()  # type: ignore[attr-defined]
        else:
            raise TypeError(f"cannot collect parameters from {type(item)!r}")
        for tensor in candidates:
            if tensor.requires_grad and id(tensor) not in seen:
                seen.add(id(tensor))
                params.append(tensor)
    return params


def _raise_item() -> float:
    raise GraphError("item() requires a tensor with exactly one element")
