"""Finite-difference gradient checking used throughout the test suite.

Surrogate-gradient ops intentionally have "wrong" (non-Heaviside)
derivatives, so gradcheck is applied only to the smooth primitives.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numeric_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int = 0,
    eps: float = 1e-3,
) -> np.ndarray:
    """Central finite-difference gradient of ``sum(func(*inputs))``.

    Uses float64 perturbation arithmetic to fight the float32 engine's
    rounding, which is the dominant error source at small ``eps``.
    """
    target = inputs[wrt]
    base = target.data.astype(np.float64).copy()
    grad = np.zeros_like(base)
    flat_grad = grad.reshape(-1)
    flat_base = base.reshape(-1)
    for index in range(flat_base.size):
        original = flat_base[index]
        flat_base[index] = original + eps
        target.data = base.astype(np.float32)
        high = float(func(*inputs).data.sum())
        flat_base[index] = original - eps
        target.data = base.astype(np.float32)
        low = float(func(*inputs).data.sum())
        flat_base[index] = original
        flat_grad[index] = (high - low) / (2.0 * eps)
    target.data = base.astype(np.float32)
    return grad


def gradient_error(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int = 0,
    eps: float = 1e-3,
) -> float:
    """Relative error between autograd and numeric gradients.

    Returns ``max |g_auto - g_num| / (max |g_num| + 1)``; values below
    ~1e-2 are considered a pass for float32.
    """
    for tensor in inputs:
        tensor.zero_grad()
    out = func(*inputs)
    out.backward(np.ones_like(out.data))
    target = inputs[wrt]
    if target.grad is None:
        raise AssertionError("autograd produced no gradient for the target input")
    auto = target.grad.astype(np.float64)
    num = numeric_gradient(func, inputs, wrt=wrt, eps=eps)
    scale = np.abs(num).max() + 1.0
    return float(np.abs(auto - num).max() / scale)
