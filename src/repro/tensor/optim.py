"""Gradient-descent optimizers for the autograd engine.

The paper trains with snnTorch's default Adam; we provide Adam plus plain
SGD (with optional momentum) for ablations. Optimizers hold references to
parameter tensors and update ``tensor.data`` in place.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.errors import ConfigError
from repro.tensor.tensor import Tensor


class Optimizer:
    """Base class: parameter bookkeeping and ``zero_grad``."""

    def __init__(self, params: Iterable[Tensor]) -> None:
        self.params: List[Tensor] = [p for p in params]
        if not self.params:
            raise ConfigError("optimizer received no parameters")
        for param in self.params:
            if not param.requires_grad:
                raise ConfigError(
                    f"parameter {param!r} does not require gradients"
                )

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel = self._velocity.get(id(param))
                if vel is None:
                    vel = np.zeros_like(param.data)
                vel = self.momentum * vel + grad
                self._velocity[id(param)] = vel
                grad = vel
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigError(f"betas must each be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad**2
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
