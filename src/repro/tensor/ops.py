"""Differentiable primitives for the autograd engine.

Every function takes and returns :class:`~repro.tensor.tensor.Tensor`
objects, computes its forward result eagerly with NumPy, and -- when
gradients are enabled and any input requires them -- attaches a backward
closure that scatters the output gradient back to the inputs.

Conventions:

* image tensors are NCHW: ``(batch, channels, height, width)``;
* convolution is implemented with im2col/col2im, the standard reshaping
  trick that turns it into one large matmul (fast in NumPy);
* broadcasting in elementwise ops is supported and undone in backward by
  summing over the broadcast axes.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ShapeError
from repro.tensor.tensor import DTYPE, Tensor, grad_enabled

Axis = Optional[Union[int, Tuple[int, ...]]]


# ---------------------------------------------------------------------------
# Graph-construction helper
# ---------------------------------------------------------------------------

def _make(
    data: np.ndarray,
    parents: Tuple[Tensor, ...],
    backward: Callable[[np.ndarray], None],
) -> Tensor:
    """Build the output tensor, recording the tape edge only when needed."""
    requires = grad_enabled() and any(p.requires_grad for p in parents)
    if not requires:
        return Tensor(data)
    out = Tensor(data, requires_grad=True, parents=parents, backward=backward)
    return out


def _as_dtype(data: np.ndarray) -> np.ndarray:
    """Return ``data`` as DTYPE without copying when it already is.

    ``astype`` always copies; on the hot path (conv/pool outputs that are
    float32 by construction) that duplicated every activation tensor.
    """
    return data if data.dtype == DTYPE else data.astype(DTYPE)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# ---------------------------------------------------------------------------
# Elementwise arithmetic
# ---------------------------------------------------------------------------

def add(a: Tensor, b: Tensor) -> Tensor:
    data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad, a.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(grad, b.shape))

    return _make(data, (a, b), backward)


def sub(a: Tensor, b: Tensor) -> Tensor:
    data = a.data - b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad, a.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(-grad, b.shape))

    return _make(data, (a, b), backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad * b.data, a.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(grad * a.data, b.shape))

    return _make(data, (a, b), backward)


def div(a: Tensor, b: Tensor) -> Tensor:
    data = a.data / b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad / b.data, a.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(-grad * a.data / (b.data**2), b.shape))

    return _make(data, (a, b), backward)


def neg(a: Tensor) -> Tensor:
    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(-grad)

    return _make(-a.data, (a,), backward)


def power(a: Tensor, exponent: float) -> Tensor:
    data = a.data**exponent

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * exponent * a.data ** (exponent - 1))

    return _make(data, (a,), backward)


def exp(a: Tensor) -> Tensor:
    data = np.exp(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * data)

    return _make(data, (a,), backward)


def log(a: Tensor, eps: float = 1e-12) -> Tensor:
    """Natural log with a small clamp for numerical safety."""
    clamped = np.maximum(a.data, eps)
    data = np.log(clamped)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad / clamped)

    return _make(data, (a,), backward)


def sqrt(a: Tensor, eps: float = 0.0) -> Tensor:
    data = np.sqrt(a.data + eps)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * 0.5 / np.maximum(data, 1e-12))

    return _make(data, (a,), backward)


def sigmoid(a: Tensor) -> Tensor:
    data = 1.0 / (1.0 + np.exp(-a.data))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * data * (1.0 - data))

    return _make(data, (a,), backward)


def relu(a: Tensor) -> Tensor:
    mask = a.data > 0

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * mask)

    return _make(a.data * mask, (a,), backward)


def clip(a: Tensor, low: float, high: float) -> Tensor:
    """Clamp values; gradient flows only through the un-clipped region."""
    data = np.clip(a.data, low, high)
    mask = (a.data >= low) & (a.data <= high)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * mask)

    return _make(data, (a,), backward)


# ---------------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------------

def reshape(a: Tensor, shape: Sequence[int]) -> Tensor:
    original = a.shape
    data = a.data.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad.reshape(original))

    return _make(data, (a,), backward)


def transpose(a: Tensor, axes: Optional[Sequence[int]] = None) -> Tensor:
    data = np.transpose(a.data, axes)
    if axes is None:
        inverse: Optional[Sequence[int]] = None
    else:
        inverse = np.argsort(np.asarray(axes))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(np.transpose(grad, inverse))

    return _make(data, (a,), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor.accumulate_grad(grad[tuple(index)])

    return _make(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.moveaxis(grad, axis, 0)
        for tensor, slab in zip(tensors, slabs):
            if tensor.requires_grad:
                tensor.accumulate_grad(slab)

    return _make(data, tuple(tensors), backward)


def pad2d(a: Tensor, padding: int) -> Tensor:
    """Zero-pad the two trailing (spatial) axes of an NCHW tensor."""
    if padding == 0:
        return a
    p = int(padding)
    data = np.pad(a.data, ((0, 0), (0, 0), (p, p), (p, p)))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad[:, :, p:-p, p:-p])

    return _make(data, (a,), backward)


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------

def sum_(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        if not a.requires_grad:
            return
        g = grad
        if not keepdims and axis is not None:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            axes = tuple(ax % a.data.ndim for ax in axes)
            for ax in sorted(axes):
                g = np.expand_dims(g, ax)
        a.accumulate_grad(np.broadcast_to(g, a.shape).astype(DTYPE))

    return _make(np.asarray(data, dtype=DTYPE), (a,), backward)


def mean(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    if axis is None:
        count = a.data.size
    else:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        count = int(np.prod([a.shape[ax % a.data.ndim] for ax in axes]))
    total = sum_(a, axis=axis, keepdims=keepdims)
    return mul(total, Tensor(np.asarray(1.0 / count, dtype=DTYPE)))


def max_(a: Tensor, axis: int, keepdims: bool = False) -> Tensor:
    """Maximum along one axis; ties share the gradient equally."""
    data = a.data.max(axis=axis, keepdims=True)
    mask = (a.data == data).astype(DTYPE)
    mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
    out = data if keepdims else np.squeeze(data, axis=axis)

    def backward(grad: np.ndarray) -> None:
        if not a.requires_grad:
            return
        g = grad if keepdims else np.expand_dims(grad, axis)
        a.accumulate_grad(mask * g)

    return _make(out, (a,), backward)


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------

def matmul(a: Tensor, b: Tensor) -> Tensor:
    if a.data.ndim != 2 or b.data.ndim != 2:
        raise ShapeError(
            f"matmul expects 2-D operands, got {a.shape} and {b.shape}"
        )
    data = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad @ b.data.T)
        if b.requires_grad:
            b.accumulate_grad(a.data.T @ grad)

    return _make(data, (a, b), backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` for ``x``: (N, in), ``weight``: (out, in)."""
    out = matmul(x, transpose(weight))
    if bias is not None:
        out = add(out, bias)
    return out


# ---------------------------------------------------------------------------
# Convolution (im2col) and pooling
# ---------------------------------------------------------------------------

def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: int, padding: int
) -> np.ndarray:
    """Unfold NCHW ``x`` into columns of shape (N, C*kh*kw, OH*OW)."""
    n, c, h, w = x.shape
    kh, kw = kernel
    oh = _conv_output_size(h, kh, stride, padding)
    ow = _conv_output_size(w, kw, stride, padding)
    if oh <= 0 or ow <= 0:
        raise ShapeError(
            f"convolution output would be empty for input {x.shape}, "
            f"kernel {kernel}, stride {stride}, padding {padding}"
        )
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            cols[:, :, i, j, :, :] = x[:, :, i:i_end:stride, j:j_end:stride]
    return cols.reshape(n, c * kh * kw, oh * ow)


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold columns back (adjoint of :func:`im2col`; overlaps accumulate)."""
    n, c, h, w = input_shape
    kh, kw = kernel
    oh = _conv_output_size(h, kh, stride, padding)
    ow = _conv_output_size(w, kw, stride, padding)
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j, :, :]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation over NCHW input.

    Args:
        x: input of shape (N, Cin, H, W).
        weight: filters of shape (Cout, Cin, KH, KW).
        bias: optional per-output-channel bias of shape (Cout,).
    """
    n, cin, h, w = x.shape
    cout, cin_w, kh, kw = weight.shape
    if cin != cin_w:
        raise ShapeError(
            f"conv2d channel mismatch: input has {cin}, weight expects {cin_w}"
        )
    oh = _conv_output_size(h, kh, stride, padding)
    ow = _conv_output_size(w, kw, stride, padding)
    cols = im2col(x.data, (kh, kw), stride, padding)  # (N, Cin*KH*KW, OH*OW)
    wmat = weight.data.reshape(cout, -1)  # (Cout, Cin*KH*KW)
    out = np.einsum("ok,nkp->nop", wmat, cols, optimize=True)
    out = out.reshape(n, cout, oh, ow)
    if bias is not None:
        out = out + bias.data.reshape(1, cout, 1, 1)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(n, cout, oh * ow)  # (N, Cout, P)
        if weight.requires_grad:
            grad_w = np.einsum("nop,nkp->ok", grad_mat, cols, optimize=True)
            weight.accumulate_grad(grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            grad_cols = np.einsum("ok,nop->nkp", wmat, grad_mat, optimize=True)
            x.accumulate_grad(
                col2im(grad_cols, (n, cin, h, w), (kh, kw), stride, padding)
            )

    parents = (x, weight) if bias is None else (x, weight, bias)
    return _make(_as_dtype(out), parents, backward)


def maxpool2d(x: Tensor, window: int = 2) -> Tensor:
    """Non-overlapping max pooling with a square window.

    On binary spike maps this equals the paper's OR-gate pooling (sec IV-B).
    Ties (common with spikes) split the gradient evenly, keeping the total
    gradient magnitude conserved.
    """
    n, c, h, w = x.shape
    if h % window or w % window:
        raise ShapeError(
            f"maxpool2d window {window} must evenly divide spatial dims {(h, w)}"
        )
    oh, ow = h // window, w // window
    tiles = x.data.reshape(n, c, oh, window, ow, window)
    out = tiles.max(axis=(3, 5))
    mask = (tiles == out[:, :, :, None, :, None]).astype(DTYPE)
    mask /= np.maximum(mask.sum(axis=(3, 5), keepdims=True), 1.0)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g = mask * grad[:, :, :, None, :, None]
            x.accumulate_grad(g.reshape(n, c, h, w))

    return _make(out, (x,), backward)


def avgpool2d(x: Tensor, window: int = 2) -> Tensor:
    """Non-overlapping average pooling (provided for ablation baselines)."""
    n, c, h, w = x.shape
    if h % window or w % window:
        raise ShapeError(
            f"avgpool2d window {window} must evenly divide spatial dims {(h, w)}"
        )
    oh, ow = h // window, w // window
    tiles = x.data.reshape(n, c, oh, window, ow, window)
    out = tiles.mean(axis=(3, 5))
    scale = 1.0 / (window * window)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g = np.broadcast_to(
                grad[:, :, :, None, :, None] * scale,
                (n, c, oh, window, ow, window),
            )
            x.accumulate_grad(np.ascontiguousarray(g).reshape(n, c, h, w))

    return _make(_as_dtype(out), (x,), backward)


# ---------------------------------------------------------------------------
# Custom-gradient ops (spikes, straight-through estimators)
# ---------------------------------------------------------------------------

def heaviside_surrogate(
    v: Tensor, surrogate_derivative: Callable[[np.ndarray], np.ndarray]
) -> Tensor:
    """Forward: Heaviside step of ``v``. Backward: the supplied surrogate.

    This is the core trick of surrogate-gradient SNN training (Neftci et
    al. 2019): the true derivative of the spike function is zero almost
    everywhere, so a smooth stand-in is used on the backward pass.
    """
    data = (v.data > 0).astype(DTYPE)

    def backward(grad: np.ndarray) -> None:
        if v.requires_grad:
            v.accumulate_grad(grad * surrogate_derivative(v.data))

    return _make(data, (v,), backward)


def straight_through(
    x: Tensor,
    forward_value: np.ndarray,
    pass_mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Return ``forward_value`` while passing gradients straight to ``x``.

    Used by fake-quantization: the forward value is the quantize-dequantize
    result, the gradient flows through unchanged (optionally masked to the
    non-saturated region, the standard QAT clipping rule).
    """
    if forward_value.shape != x.shape:
        raise ShapeError(
            f"straight_through value shape {forward_value.shape} "
            f"must match input shape {x.shape}"
        )

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            if pass_mask is None:
                x.accumulate_grad(grad)
            else:
                x.accumulate_grad(grad * pass_mask)

    return _make(_as_dtype(forward_value), (x,), backward)


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------

def log_softmax(logits: Tensor, axis: int = 1) -> Tensor:
    shifted = logits.data - logits.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - log_z
    softmax = np.exp(data)

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            g = grad - softmax * grad.sum(axis=axis, keepdims=True)
            logits.accumulate_grad(g)

    return _make(_as_dtype(data), (logits,), backward)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy of (N, C) logits against integer labels (N,)."""
    labels = np.asarray(labels)
    n = logits.shape[0]
    if labels.shape != (n,):
        raise ShapeError(
            f"labels shape {labels.shape} does not match batch size {n}"
        )
    log_probs = log_softmax(logits, axis=1)
    rows = np.arange(n)
    picked = log_probs.data[rows, labels]
    data = np.asarray(-picked.mean(), dtype=DTYPE)

    def backward(grad: np.ndarray) -> None:
        if log_probs.requires_grad:
            g = np.zeros_like(log_probs.data)
            g[rows, labels] = -1.0 / n
            log_probs.accumulate_grad(g * grad)

    return _make(data, (log_probs,), backward)


def mse(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    target = np.asarray(target, dtype=DTYPE)
    diff = prediction.data - target
    data = np.asarray((diff**2).mean(), dtype=DTYPE)
    scale = 2.0 / prediction.data.size

    def backward(grad: np.ndarray) -> None:
        if prediction.requires_grad:
            prediction.accumulate_grad(grad * scale * diff)

    return _make(data, (prediction,), backward)
