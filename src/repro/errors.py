"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything from this package with one ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ShapeError(ReproError):
    """An operand had an incompatible shape."""


class GraphError(ReproError):
    """The autograd graph was used incorrectly (e.g. backward twice)."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class ArchitectureError(ReproError):
    """A network architecture string or spec could not be interpreted."""


class QuantizationError(ReproError):
    """Quantization parameters or state were invalid."""


class HardwareModelError(ReproError):
    """The hardware model was configured or driven incorrectly."""


class CapacityError(HardwareModelError):
    """A design exceeded the capacity of the modelled FPGA device."""


class RuntimeUnsupportedError(ReproError):
    """A network cannot be lowered to an inference-runtime plan."""


class WorkloadError(ReproError):
    """The workload model or partitioner received invalid input."""


class ParallelError(ReproError):
    """Sharded or pooled execution was configured or driven incorrectly."""


class WorkerCrashError(ParallelError):
    """A pool worker process died while tasks were in flight.

    Raised instead of letting ``Pool.map`` wait forever on results the
    dead worker will never deliver. The pool that lost the worker is
    torn down; the next pooled call restarts it lazily."""


class WorkerTimeoutError(ParallelError):
    """A pooled call exceeded its caller-supplied wall-clock budget."""


class DatasetError(ReproError):
    """A dataset generator or loader received invalid parameters."""


class ExperimentError(ReproError):
    """An experiment harness failed or was misconfigured."""


class ServingError(ReproError):
    """The online inference serving layer failed or was misused."""


class QueueFullError(ServingError):
    """A request was rejected at admission: the model queue is full.

    The bounded-queue backpressure signal -- callers should shed load or
    retry later; the server never buffers unboundedly."""


class RequestTimeoutError(ServingError):
    """A request missed its deadline before a result was produced.

    Raised both when the batcher drops an already-expired request
    instead of wasting a batch slot on it, and when a client's wait on
    the pending result reaches the deadline first."""


class ServerClosedError(ServingError):
    """A request arrived at (or was pending on) a draining/stopped server."""
