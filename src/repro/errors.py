"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything from this package with one ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ShapeError(ReproError):
    """An operand had an incompatible shape."""


class GraphError(ReproError):
    """The autograd graph was used incorrectly (e.g. backward twice)."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class ArchitectureError(ReproError):
    """A network architecture string or spec could not be interpreted."""


class QuantizationError(ReproError):
    """Quantization parameters or state were invalid."""


class HardwareModelError(ReproError):
    """The hardware model was configured or driven incorrectly."""


class CapacityError(HardwareModelError):
    """A design exceeded the capacity of the modelled FPGA device."""


class RuntimeUnsupportedError(ReproError):
    """A network cannot be lowered to an inference-runtime plan."""


class WorkloadError(ReproError):
    """The workload model or partitioner received invalid input."""


class ParallelError(ReproError):
    """Sharded or pooled execution was configured or driven incorrectly."""


class DatasetError(ReproError):
    """A dataset generator or loader received invalid parameters."""


class ExperimentError(ReproError):
    """An experiment harness failed or was misconfigured."""
