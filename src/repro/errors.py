"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything from this package with one ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ShapeError(ReproError):
    """An operand had an incompatible shape."""


class GraphError(ReproError):
    """The autograd graph was used incorrectly (e.g. backward twice)."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class ArchitectureError(ReproError):
    """A network architecture string or spec could not be interpreted."""


class QuantizationError(ReproError):
    """Quantization parameters or state were invalid."""


class HardwareModelError(ReproError):
    """The hardware model was configured or driven incorrectly."""


class CapacityError(HardwareModelError):
    """A design exceeded the capacity of the modelled FPGA device."""


class RuntimeUnsupportedError(ReproError):
    """A network cannot be lowered to an inference-runtime plan."""


class WorkloadError(ReproError):
    """The workload model or partitioner received invalid input."""


class ParallelError(ReproError):
    """Sharded or pooled execution was configured or driven incorrectly."""


class WorkerCrashError(ParallelError):
    """A pool worker process died while tasks were in flight.

    Raised instead of letting ``Pool.map`` wait forever on results the
    dead worker will never deliver. The pool that lost the worker is
    torn down; the next pooled call restarts it lazily."""


class WorkerTimeoutError(ParallelError):
    """A pooled call exceeded its caller-supplied wall-clock budget."""


class PoisonTaskError(ParallelError):
    """One or more tasks killed their worker on every allowed attempt.

    Raised by the retry layer after a task has been quarantined: it
    crashed (or wedged) the pool on ``max_attempts`` consecutive
    attempts, so retrying it further would only prolong the restart
    storm. The error carries everything the caller needs to degrade
    gracefully instead of losing the whole call:

    * ``results`` -- the per-task results in payload order, with ``None``
      at every quarantined index (the surviving partial results);
    * ``quarantined`` -- the sorted task indices that were quarantined;
    * ``fingerprints`` -- ``{index: sha256-hexdigest-of-pickled-payload}``
      so the poison payload can be identified across runs/logs;
    * ``attempts`` -- ``{index: attempts consumed}`` for the quarantined
      tasks.
    """

    def __init__(
        self,
        message: str,
        results=None,
        quarantined=(),
        fingerprints=None,
        attempts=None,
    ) -> None:
        super().__init__(message)
        self.results = list(results) if results is not None else []
        self.quarantined = sorted(quarantined)
        self.fingerprints = dict(fingerprints or {})
        self.attempts = dict(attempts or {})


class FaultPlanError(ParallelError):
    """A ``REPRO_FAULT_PLAN`` spec could not be parsed or applied."""


class StaticAnalysisError(ReproError):
    """The ``repro lint`` framework was misconfigured or fed bad input
    (unknown rule selection, unreadable/corrupt baseline file, paths
    outside the lint root)."""


class DatasetError(ReproError):
    """A dataset generator or loader received invalid parameters."""


class ExperimentError(ReproError):
    """An experiment harness failed or was misconfigured."""


class ServingError(ReproError):
    """The online inference serving layer failed or was misused."""


class QueueFullError(ServingError):
    """A request was rejected at admission: the model queue is full.

    The bounded-queue backpressure signal -- callers should shed load or
    retry later; the server never buffers unboundedly."""


class RequestTimeoutError(ServingError):
    """A request missed its deadline before a result was produced.

    Raised both when the batcher drops an already-expired request
    instead of wasting a batch slot on it, and when a client's wait on
    the pending result reaches the deadline first."""


class ServerClosedError(ServingError):
    """A request arrived at (or was pending on) a draining/stopped server."""
