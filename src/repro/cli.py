"""Command-line interface (``snn-hybrid``).

Subcommands:

* ``info``        -- package, device and preset summary
* ``train``       -- train one (dataset, scheme, coding) model into the cache
* ``evaluate``    -- accuracy + spike statistics of a cached model
* ``simulate``    -- run a cached model on a hardware configuration
* ``partition``   -- derive a balanced NC allocation from measured workloads
* ``experiment``  -- regenerate paper tables/figures (fig1 table1 fig4
                     table2 table3 | all), optionally writing EXPERIMENTS.md
* ``serve``       -- online inference serving with dynamic batching:
                     stand up an InferenceServer on a cached model,
                     replay a synthetic request load against it and
                     report latency percentiles + admission accounting
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.version import __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="snn-hybrid",
        description=(
            "Reproduction of the DATE 2025 hybrid SNN event-driven "
            "architecture paper"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def worker_count(value: str) -> int:
        try:
            count = int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(f"not an integer: {value!r}")
        if count < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {count}")
        return count

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scale", default="small", help="tiny | small | paper")
        p.add_argument("--workspace", default="artifacts")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--encoder-seed",
            type=int,
            default=None,
            metavar="N",
            help=(
                "base seed of the counter-based stochastic encoding "
                "streams (rate coding); default: derived from --seed. "
                "Every (sample, timestep) draw is a pure function of "
                "(this seed, global sample index, timestep), so results "
                "are identical at any shard/worker geometry"
            ),
        )
        p.add_argument("--quiet", action="store_true")
        p.add_argument(
            "--workers",
            type=worker_count,
            default=None,
            metavar="N",
            help=(
                "worker processes for sharded evaluation and sweep cells "
                "(default: REPRO_WORKERS env var, then cpu count; 1 = serial)"
            ),
        )
        cache = p.add_mutually_exclusive_group()
        cache.add_argument(
            "--eval-cache",
            dest="eval_cache",
            action="store_true",
            default=None,
            help=(
                "persist test-set evaluations as .eval.json entries in the "
                "workspace and reuse them across runs/workers (default: on, "
                "governed by REPRO_EVAL_CACHE)"
            ),
        )
        cache.add_argument(
            "--no-eval-cache",
            dest="eval_cache",
            action="store_false",
            help="disable the disk-backed evaluation cache for this run",
        )
        p.add_argument(
            "--int-kernels",
            choices=["off", "auto", "on"],
            default=None,
            metavar="MODE",
            help=(
                "integer datapath for quantized models: off = always "
                "float; auto (default) = int32-accumulating kernels "
                "wherever they proved bit-exact against float; on = "
                "force the integer path on every int-lowered layer "
                "(logits may differ from float). Default: "
                "REPRO_INT_KERNELS env var, then auto"
            ),
        )
        p.add_argument(
            "--retries",
            type=worker_count,
            default=None,
            metavar="N",
            help=(
                "total attempts per shard before a worker-killing task "
                "is quarantined as poison (self-healing retry; 1 = fail "
                "on the first crash, no retry). Default: "
                "REPRO_RETRY_MAX_ATTEMPTS env var, then 3"
            ),
        )
        p.add_argument(
            "--on-shard-failure",
            choices=["raise", "skip"],
            default=None,
            metavar="MODE",
            help=(
                "what to do when a shard is quarantined as poison after "
                "all retries: raise (default) fails the run; skip "
                "degrades -- surviving shards are merged, the failure "
                "is recorded, and the degraded result is never cached. "
                "Default: REPRO_ON_SHARD_FAILURE env var, then raise"
            ),
        )

    sub.add_parser("info", help="package / device / preset summary")

    train = sub.add_parser("train", help="train one model into the cache")
    add_common(train)
    train.add_argument("dataset", choices=["svhn", "cifar10", "cifar100"])
    train.add_argument("--scheme", default="int4", help="fp32 | int4 | int8")
    train.add_argument("--coding", default="direct", choices=["direct", "rate"])

    evaluate = sub.add_parser("evaluate", help="accuracy + spike stats")
    add_common(evaluate)
    evaluate.add_argument("dataset", choices=["svhn", "cifar10", "cifar100"])
    evaluate.add_argument("--scheme", default="int4")
    evaluate.add_argument("--coding", default="direct", choices=["direct", "rate"])

    simulate = sub.add_parser("simulate", help="hardware simulation")
    add_common(simulate)
    simulate.add_argument("dataset", choices=["svhn", "cifar10", "cifar100"])
    simulate.add_argument("--scheme", default="int4")
    simulate.add_argument("--coding", default="direct", choices=["direct", "rate"])
    simulate.add_argument(
        "--config", default="lw", help="lw | perf2 | perf4"
    )

    partition = sub.add_parser(
        "partition", help="derive a balanced NC allocation"
    )
    add_common(partition)
    partition.add_argument("dataset", choices=["svhn", "cifar10", "cifar100"])
    partition.add_argument("--scheme", default="int4")
    partition.add_argument("--budget", type=int, default=60)

    experiment = sub.add_parser(
        "experiment", help="regenerate paper tables/figures"
    )
    add_common(experiment)
    experiment.add_argument(
        "which",
        choices=["fig1", "table1", "fig4", "table2", "table3", "all"],
    )
    experiment.add_argument(
        "--write-md",
        metavar="PATH",
        default=None,
        help="write EXPERIMENTS.md-style output to PATH (only with 'all')",
    )

    serve = sub.add_parser(
        "serve",
        help="online inference serving with dynamic batching",
        description=(
            "Stand up an InferenceServer on a cached model (training it "
            "first if the cache is cold), replay a synthetic load "
            "against it, then drain gracefully and print latency "
            "percentiles plus admission accounting. Served logits are "
            "byte-identical to offline evaluation of the same samples."
        ),
    )
    add_common(serve)
    serve.add_argument("dataset", choices=["svhn", "cifar10", "cifar100"])
    serve.add_argument("--scheme", default="int4", help="fp32 | int4 | int8")
    serve.add_argument("--coding", default="direct", choices=["direct", "rate"])
    serve.add_argument(
        "--max-batch",
        type=int,
        default=None,
        metavar="N",
        help=(
            "most requests one dynamic batch may coalesce "
            "(default: REPRO_SERVE_MAX_BATCH, then 8)"
        ),
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "longest the batcher holds the oldest request open for "
            "companions (default: REPRO_SERVE_MAX_WAIT_MS, then 2)"
        ),
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        metavar="N",
        help=(
            "bounded per-model queue; admissions beyond it are rejected "
            "(default: REPRO_SERVE_QUEUE_DEPTH, then 64)"
        ),
    )
    serve.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "per-request deadline from admission; 0 disables "
            "(default: REPRO_SERVE_TIMEOUT_MS, then 1000)"
        ),
    )
    serve.add_argument(
        "--drain-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "graceful-drain budget at shutdown "
            "(default: REPRO_SERVE_DRAIN_MS, then 2000)"
        ),
    )
    serve.add_argument(
        "--mode",
        choices=["open", "closed"],
        default="open",
        help=(
            "load shape: open = fixed arrival rate regardless of server "
            "health (exercises admission control); closed = each client "
            "waits for its previous response"
        ),
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=20.0,
        metavar="RPS",
        help="open-loop offered arrival rate, requests/second",
    )
    serve.add_argument(
        "--requests",
        type=int,
        default=32,
        metavar="N",
        help="total requests to replay",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=4,
        metavar="N",
        help="closed-loop client count (requests are split across them)",
    )

    lint = sub.add_parser(
        "lint",
        help="static invariant checker (determinism, worker safety, "
        "typed errors, registry drift)",
        description=(
            "AST-based checks that the runtime's invariants hold "
            "statically: no ambient RNG or wall-clock reads outside "
            "blessed modules, no mutable module state reachable from "
            "pool workers, no swallowed or untyped errors in the "
            "resilience layers, and no REPRO_* env var or CLI flag "
            "missing from the configuration registry. See "
            "docs/LINTING.md."
        ),
    )
    from repro.analysis import add_lint_arguments

    add_lint_arguments(lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "evaluate":
        return _cmd_evaluate(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "partition":
        return _cmd_partition(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "lint":
        from repro.analysis import run_lint_from_args

        return run_lint_from_args(args)
    return 1  # pragma: no cover - argparse enforces choices


def _make_context(args):
    import os

    from repro.experiments.context import ExperimentContext
    from repro.experiments.config import EVAL_CACHE_ENV

    if getattr(args, "workers", None) is not None:
        # Process-scoped: every parallel entry point resolves through
        # REPRO_WORKERS (see repro.parallel.config).
        os.environ["REPRO_WORKERS"] = str(args.workers)
    eval_cache = getattr(args, "eval_cache", None)
    if eval_cache is not None:
        # Exported so worker processes (which resolve the env default
        # when a spec carries no explicit setting) agree with the flag.
        os.environ[EVAL_CACHE_ENV] = "1" if eval_cache else "0"
    int_kernels = getattr(args, "int_kernels", None)
    if int_kernels is not None:
        # Exported (not just configured in-process) so sharded-eval
        # worker processes resolve the same integer-kernel mode.
        from repro.runtime import configure

        os.environ["REPRO_INT_KERNELS"] = int_kernels
        configure(int_kernels=int_kernels)
    if getattr(args, "retries", None) is not None:
        # Process-scoped like --workers: sharded_forward resolves its
        # default RetryPolicy from REPRO_RETRY_MAX_ATTEMPTS.
        from repro.parallel.retry import RETRY_MAX_ATTEMPTS_ENV

        os.environ[RETRY_MAX_ATTEMPTS_ENV] = str(args.retries)
    if getattr(args, "on_shard_failure", None) is not None:
        from repro.parallel.config import ON_SHARD_FAILURE_ENV

        os.environ[ON_SHARD_FAILURE_ENV] = args.on_shard_failure
    return ExperimentContext(
        scale=args.scale,
        workspace=args.workspace,
        seed=args.seed,
        verbose=not args.quiet,
        eval_cache=eval_cache,
        encoder_seed=getattr(args, "encoder_seed", None),
    )


def _cmd_info() -> int:
    from repro.experiments.presets import PRESETS
    from repro.hw.device import XCVU13P

    print(f"repro {__version__}")
    print(
        f"device {XCVU13P.name}: {XCVU13P.luts} LUT, {XCVU13P.ffs} FF, "
        f"{XCVU13P.bram36} BRAM36, {XCVU13P.uram} URAM"
    )
    for preset in PRESETS.values():
        print(
            f"preset {preset.name}: {preset.image_size}x{preset.image_size}, "
            f"channels x{preset.channel_scale}, {preset.epochs} epochs"
        )
    return 0


def _cmd_train(args) -> int:
    ctx = _make_context(args)
    model = ctx.trained(args.dataset, args.scheme, args.coding)
    print(model.describe())
    print(f"cached at {ctx.model_path(ctx.model_key(args.dataset, args.scheme, args.coding))}")
    return 0


def _cmd_evaluate(args) -> int:
    ctx = _make_context(args)
    result = ctx.evaluate(args.dataset, args.scheme, args.coding)
    print(
        f"{args.dataset} {args.scheme} {args.coding}: "
        f"accuracy {result.accuracy * 100:.2f}%, "
        f"{result.spikes_per_image:.0f} spikes/image over {result.samples} images"
    )
    for layer, spikes in sorted(result.per_layer_spikes.items()):
        print(f"  {layer}: {spikes:.1f} spikes/image")
    return 0


def _cmd_simulate(args) -> int:
    from repro.baselines.rate_coded import rate_coded_config
    from repro.hw.config import lw_config, perf_config
    from repro.hw.simulator import HybridSimulator
    from repro.quant.schemes import scheme_by_name
    from repro.snn import make_encoder

    ctx = _make_context(args)
    scheme = scheme_by_name(args.scheme)
    model = ctx.trained(args.dataset, args.scheme, args.coding)
    if args.config == "lw":
        config = lw_config(args.dataset, scheme=scheme)
    else:
        factor = int(args.config.replace("perf", ""))
        config = perf_config(args.dataset, factor, scheme=scheme)
    if args.coding == "rate":
        config = rate_coded_config(config)
    images, labels = ctx.sim_images(args.dataset)
    encoder_seed = (
        args.encoder_seed if args.encoder_seed is not None else args.seed + 7
    )
    encoder = make_encoder(args.coding, seed=encoder_seed)
    report = HybridSimulator(model, config).run(
        images, ctx.timesteps_for(args.coding), encoder, labels
    )
    print(report.summary())
    return 0


def _cmd_partition(args) -> int:
    from repro.workload.model import workloads_from_network
    from repro.workload.partition import (
        balanced_allocation,
        proportional_allocation,
    )

    ctx = _make_context(args)
    model = ctx.trained(args.dataset, args.scheme)
    evaluation = ctx.evaluate(args.dataset, args.scheme)
    workloads = workloads_from_network(
        model,
        evaluation.input_events_per_image,
        ctx.timesteps_for("direct"),
    )
    lw = proportional_allocation(workloads)
    balanced = balanced_allocation(workloads, args.budget)
    print(f"workloads ({args.dataset}, {args.scheme}):")
    for wl in workloads:
        print(f"  {wl.name:<10s} {wl.kind:<6s} work {wl.work:,.0f}")
    print(f"LW (proportional):   {lw.allocation}  imbalance {lw.imbalance:.2f}")
    print(
        f"balanced (budget {args.budget}): {balanced.allocation}  "
        f"imbalance {balanced.imbalance:.2f}"
    )
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments.runall import RUNNERS, render_experiments_md, run_all

    ctx = _make_context(args)
    if args.which == "all":
        results = run_all(ctx)
        for result in results:
            print(result.render())
            print()
        if args.write_md:
            with open(args.write_md, "w", encoding="utf-8") as handle:
                handle.write(render_experiments_md(results, ctx))
            print(f"wrote {args.write_md}")
    else:
        result = RUNNERS[args.which](ctx)
        print(result.render())
    return 0


def _cmd_serve(args) -> int:
    import os

    from repro.serving import (
        InferenceServer,
        resolve_serve_config,
        run_closed_loop,
        run_open_loop,
    )
    from repro.snn import make_encoder

    ctx = _make_context(args)
    model = ctx.trained(args.dataset, args.scheme, args.coding)
    images, _labels = ctx.sim_images(args.dataset)
    encoder_seed = (
        args.encoder_seed if args.encoder_seed is not None else args.seed + 7
    )
    encoder = make_encoder(args.coding, seed=encoder_seed)
    model_path = ctx.model_path(
        ctx.model_key(args.dataset, args.scheme, args.coding)
    )
    config = resolve_serve_config(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_depth=args.queue_depth,
        timeout_ms=args.timeout_ms,
        drain_ms=args.drain_ms,
    )
    name = f"{args.dataset}-{args.scheme}-{args.coding}"
    server = InferenceServer(config)
    server.register(
        name,
        model,
        ctx.timesteps_for(args.coding),
        encoder=encoder,
        model_path=model_path if os.path.exists(model_path) else None,
        workers=args.workers,
    )
    if not args.quiet:
        print(
            f"serving {name}: max_batch={config.max_batch} "
            f"max_wait={config.max_wait_ms:g}ms "
            f"queue_depth={config.queue_depth} "
            f"timeout={config.timeout_ms:g}ms"
        )
    try:
        if args.mode == "open":
            report = run_open_loop(
                server, name, images, rate_rps=args.rate, count=args.requests
            )
        else:
            per_client = max(1, args.requests // max(1, args.clients))
            report = run_closed_loop(
                server, name, images,
                clients=args.clients,
                requests_per_client=per_client,
            )
        drained = server.drain()
    finally:
        server.shutdown()
    summary = report.as_dict()
    print(
        f"{name}: offered {summary['offered']} "
        f"({args.mode} loop), completed {summary['completed']}, "
        f"rejected {summary['rejected']}, timed out {summary['timed_out']}"
    )
    print(
        f"latency p50 {summary['p50_ms']:.1f} ms, "
        f"p99 {summary['p99_ms']:.1f} ms, "
        f"throughput {summary['achieved_rps']:.1f} req/s, "
        f"mean batch {summary['mean_batch']:.2f}"
    )
    print(f"drained {'cleanly' if drained else 'with work abandoned'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
