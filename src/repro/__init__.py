"""Reproduction of the DATE 2025 paper on a hybrid SNN event-driven architecture.

This package reproduces, in pure Python/NumPy, the complete system described
in "Exploring the Sparsity-Quantization Interplay on a Novel Hybrid SNN
Event-Driven Architecture" (Aliyev, Lopez, Adegbija; DATE 2025):

* ``repro.tensor`` -- a reverse-mode autograd engine (the training substrate),
* ``repro.snn`` -- LIF neurons, surrogate gradients, spiking layers, direct
  and rate input coding, and a BPTT trainer,
* ``repro.quant`` -- quantization-aware training and integer conversion,
* ``repro.datasets`` -- deterministic synthetic stand-ins for SVHN/CIFAR,
* ``repro.hw`` -- a transaction/cycle-level model of the paper's hybrid
  accelerator (dense systolic core + sparse event-driven cores, memory,
  resource, power and energy models),
* ``repro.workload`` -- the layer-wise workload model (Eq. 3) and the
  neural-core partitioning design-space exploration,
* ``repro.baselines`` -- analytic models of the prior works compared against,
* ``repro.experiments`` -- one harness per paper table/figure.

See ``examples/quickstart.py`` for a complete end-to-end walk-through.
"""

from repro.version import __version__

__all__ = ["__version__"]
