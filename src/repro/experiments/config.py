"""Environment resolution for the experiments layer.

The single module in this package allowed to read ``os.environ`` (rule
P101, see ``docs/LINTING.md``): every ambient knob the experiment
machinery honours resolves here, so the full configuration surface of
the layer is auditable in one place and registered in
:mod:`repro.analysis.registry`.
"""

from __future__ import annotations

import os

EVAL_CACHE_ENV = "REPRO_EVAL_CACHE"


def eval_cache_enabled() -> bool:
    """Whether evaluations are persisted/looked up on disk by default.

    On unless ``REPRO_EVAL_CACHE=0``; ``ExperimentContext`` resolves its
    ``eval_cache=None`` constructor default through this, so worker
    processes (which inherit the environment) agree with their parent.
    """
    return os.environ.get(EVAL_CACHE_ENV, "1") != "0"
