"""Experiment harnesses: one module per paper table / figure.

Each module exposes ``run(ctx) -> ExperimentResult``; the shared
:class:`~repro.experiments.context.ExperimentContext` trains (and disk-
caches) the models, so running several experiments reuses work. See
DESIGN.md section 3 for the experiment-to-module index.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.experiments.presets import PRESETS, ScalePreset

__all__ = ["ExperimentContext", "ExperimentResult", "PRESETS", "ScalePreset"]
