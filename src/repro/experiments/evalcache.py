"""Disk-backed evaluation cache: ``EvaluationResult`` sidecars.

The in-memory ``ExperimentContext._evaluations`` memo dies with its
process, so pooled ``run_all`` workers used to re-run test-set
evaluations that fig1's cells had already computed in a sibling worker.
This module persists each :class:`EvaluationResult` as a small JSON
sidecar next to the model artifacts -- ``<workspace>/models/
<cache_key>.eval.json``, sibling to the ``.npz`` weights and the
``.plan.npz`` plan sidecars from :mod:`repro.runtime.plan_io` -- keyed
by the exact in-memory cache key ``ExperimentContext.evaluate`` already
uses, so any process that shares the workspace shares the work.

Staleness and corruption guards mirror the plan sidecar's:

* every entry records the ``weights_digest`` of the model it was
  evaluated against; a retrain changes the digest and the entry is
  ignored (then overwritten by the recompute);
* every entry records the *encoding stream signature*
  (:meth:`repro.snn.encoding.Encoder.stream_signature`: scheme + seed
  + gain) the evaluation encoded its inputs with; a different stream
  -- another ``--encoder-seed``, a changed scheme -- misses instead of
  silently serving numbers drawn from the wrong spike trains;
* every entry records the *numeric path* it was computed on:
  ``"float32"`` for the (default, exactness-preserving) float datapath,
  or a forced integer-kernel signature (scheme + scale fingerprint) for
  ``int_kernels='on'`` runs, whose logits may legitimately differ from
  float. Entries written before this guard (stored ``None``) are all
  float results and match only an expected ``"float32"`` -- a forced
  integer run never gets served float numbers, and vice versa;
* the format tag is ``evaluation-result-v2``: v1 entries were written
  under the snapshot-per-shard rate semantics (results depended on the
  shard geometry) and are *auto-invalidated* -- the format check
  rejects them, the caller recomputes under the counter-stream
  semantics and overwrites;
* a missing, truncated, corrupt, foreign-format or stale entry makes
  :func:`try_load_evaluation` return ``None`` -- the caller recomputes,
  which is always correct, just slower;
* writes are atomic (temp file + ``os.replace``), so a crash can never
  leave a half-written entry that a later run would trust.

Bit-identity: entries round-trip through :func:`json.dumps` /
:func:`json.loads`, whose float encoding is the shortest repr that
parses back to the identical IEEE-754 double -- a cache hit returns
exactly the values the original evaluation produced (values are
normalised to builtin ``float``/``int`` on save; NumPy scalars compare
exactly equal to them).

``REPRO_EVAL_CACHE=0`` (or ``--no-eval-cache`` on the CLI) disables the
cache; :func:`invalidate_evaluations` is the explicit invalidation path.
Per-process hit/miss/store counters are kept in
:func:`eval_cache_stats` for logging and the runtime bench's
``eval_cache`` section.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ExperimentError

# Historical home of these names; the definitions moved to the layer's
# env-reading module (rule P101) and stay importable from here.
from repro.experiments.config import (  # noqa: F401
    EVAL_CACHE_ENV,
    eval_cache_enabled,
)

EVAL_CACHE_SUFFIX = ".eval.json"

#: v1 entries predate counter-stream rate coding: their rate-coded
#: results were a function of the shard geometry that produced them, so
#: the format bump deliberately invalidates every v1 entry on load.
_FORMAT = "evaluation-result-v2"


@dataclass
class EvaluationResult:
    """Test-set evaluation of one deployed model."""

    accuracy: float
    spikes_per_image: float
    per_layer_spikes: Dict[str, float]
    input_events_per_image: Dict[str, float]
    samples: int


@dataclass
class CacheStats:
    """Per-process evaluation-cache counters."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0
    corrupt: int = 0  # entries quarantined to <entry>.corrupt on load

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "corrupt": self.corrupt,
        }


_STATS = CacheStats()  # repro: lint-ok[P102] per-process hit/miss counters; merged only for reporting, never for results


def eval_cache_stats() -> CacheStats:
    """This process's cache counters (workers each count their own)."""
    return _STATS


def reset_eval_cache_stats() -> None:
    global _STATS
    _STATS = CacheStats()


def eval_cache_path(models_dir: str, cache_key: str) -> str:
    """``<models_dir>/<cache_key>.eval.json`` next to the model ``.npz``."""
    return os.path.join(models_dir, cache_key + EVAL_CACHE_SUFFIX)


def save_evaluation(
    path: str,
    result: EvaluationResult,
    model_digest: Optional[str] = None,
    encoding: Optional[str] = None,
    numeric: Optional[str] = None,
) -> None:
    """Atomically persist ``result`` (and its staleness guards) to ``path``.

    ``model_digest`` ties the entry to the exact stored parameters of the
    evaluated model (:meth:`DeployableNetwork.weights_digest`);
    ``encoding`` ties it to the exact encoding stream
    (:meth:`Encoder.stream_signature`); ``numeric`` ties it to the
    numeric path the evaluation ran on (``"float32"``, or a forced
    integer-kernel signature carrying the quantization scheme and a
    scale fingerprint -- see ``ExperimentContext``). Loaders passing the
    same values will reject entries left behind by a retrain or produced
    under a different stream or numeric path.
    """
    payload = {
        "format": _FORMAT,
        "model_digest": model_digest,
        "encoding": encoding,
        "numeric": numeric,
        "result": {
            "accuracy": float(result.accuracy),
            "spikes_per_image": float(result.spikes_per_image),
            "per_layer_spikes": {
                str(name): float(value)
                for name, value in result.per_layer_spikes.items()
            },
            "input_events_per_image": {
                str(name): float(value)
                for name, value in result.input_events_per_image.items()
            },
            "samples": int(result.samples),
        },
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".eval.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)
        raise
    _STATS.stores += 1


def load_evaluation(
    path: str,
    model_digest: Optional[str] = None,
    encoding: Optional[str] = None,
    numeric: Optional[str] = None,
) -> EvaluationResult:
    """Load an entry written by :func:`save_evaluation`, strictly.

    Raises :class:`ExperimentError` on a foreign (or superseded v1)
    format, a digest mismatch (the model was retrained under the
    entry), an encoding-stream mismatch (the entry was evaluated under
    a different encoder seed/scheme), or a numeric-path mismatch (the
    entry's numbers came from a different datapath than the caller is
    running). Entries written before the ``numeric`` guard existed
    (stored ``None``) all came from the float path, so they match an
    expected ``"float32"`` and *only* that -- a forced integer run never
    gets served legacy float numbers. Malformed JSON or missing keys
    raise their native exceptions. Most callers want
    :func:`try_load_evaluation` instead.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != _FORMAT:
        raise ExperimentError(
            f"{path!r} is not a current serialized evaluation result "
            "(foreign format, or a stale v1 entry written under "
            "snapshot-per-shard encoding semantics)"
        )
    stored_digest = payload.get("model_digest")
    if (
        model_digest is not None
        and stored_digest is not None
        and stored_digest != model_digest
    ):
        raise ExperimentError(
            f"evaluation cache entry {path!r} belongs to a different model "
            "(digest mismatch; retrain left a stale entry)"
        )
    stored_encoding = payload.get("encoding")
    if (
        encoding is not None
        and stored_encoding is not None
        and stored_encoding != encoding
    ):
        raise ExperimentError(
            f"evaluation cache entry {path!r} was evaluated under encoding "
            f"stream {stored_encoding!r}, not {encoding!r}"
        )
    if numeric is not None:
        # Pre-guard entries (stored None) were all float-path results.
        stored_numeric = payload.get("numeric") or "float32"
        if stored_numeric != numeric:
            raise ExperimentError(
                f"evaluation cache entry {path!r} was computed on numeric "
                f"path {stored_numeric!r}, not {numeric!r}"
            )
    result = payload["result"]
    return EvaluationResult(
        accuracy=float(result["accuracy"]),
        spikes_per_image=float(result["spikes_per_image"]),
        per_layer_spikes={
            str(name): float(value)
            for name, value in result["per_layer_spikes"].items()
        },
        input_events_per_image={
            str(name): float(value)
            for name, value in result["input_events_per_image"].items()
        },
        samples=int(result["samples"]),
    )


def try_load_evaluation(
    path: str,
    model_digest: Optional[str] = None,
    encoding: Optional[str] = None,
    numeric: Optional[str] = None,
) -> Optional[EvaluationResult]:
    """:func:`load_evaluation`, returning ``None`` instead of raising.

    The one loader cache consumers should use: a missing, stale (digest,
    encoding-stream or numeric-path mismatch), foreign-format (including
    superseded v1), truncated or otherwise corrupt entry yields ``None``
    -- recompute and overwrite. Counts a hit or a miss in
    :func:`eval_cache_stats` either way.

    Stale and corrupt entries part ways on disk: a *stale* entry (valid
    JSON that fails a guard) is left in place to be overwritten by the
    recompute, but a *corrupt* one -- undecodable bytes, malformed JSON,
    a payload missing its keys -- is quarantined to ``<entry>.corrupt``
    (counted in :attr:`CacheStats.corrupt`) rather than silently
    recomputed over. Repeated corruption therefore stays visible, and
    the bad bytes survive for diagnosis instead of being destroyed by
    the next atomic store.
    """
    result = None
    if os.path.exists(path):
        try:
            result = load_evaluation(
                path,
                model_digest=model_digest,
                encoding=encoding,
                numeric=numeric,
            )
        except ExperimentError:
            # Stale or foreign-format, but well-formed: the recompute
            # overwrites it in place.
            result = None
        except (KeyError, TypeError, ValueError, OSError):
            quarantine_corrupt_entry(path)
            result = None
    if result is None:
        _STATS.misses += 1
    else:
        _STATS.hits += 1
    return result


def quarantine_corrupt_entry(path: str) -> bool:
    """Move a corrupt entry aside to ``<entry>.corrupt``; ``True`` on move.

    ``os.replace`` keeps the quarantine atomic (a crashed quarantine
    leaves either the corrupt entry or its renamed twin, never both);
    an entry that vanished or cannot be renamed is simply left to the
    recompute path.
    """
    try:
        os.replace(path, path + ".corrupt")
    except OSError:
        return False
    _STATS.corrupt += 1
    return True


def invalidate_evaluation(path: str) -> bool:
    """Drop one cache entry; ``True`` if something was removed."""
    if not os.path.exists(path):
        return False
    os.remove(path)
    _STATS.invalidations += 1
    return True


def invalidate_evaluations(models_dir: str) -> int:
    """Drop every ``*.eval.json`` entry under ``models_dir``.

    The explicit invalidation path -- e.g. after editing evaluation code
    in ways the (model digest, cache key) guards cannot see. Returns the
    number of entries removed; a missing directory removes zero.
    """
    if not os.path.isdir(models_dir):
        return 0
    removed = 0
    for name in sorted(os.listdir(models_dir)):
        if name.endswith(EVAL_CACHE_SUFFIX):
            if invalidate_evaluation(os.path.join(models_dir, name)):
                removed += 1
    return removed
