"""Table III -- comparison to previous work.

The paper lines its perf2/perf4 points against SyncNN [15] (SVHN,
CIFAR10; ZCU102) and Gerlinghoff et al. [7] (CIFAR100; same XCVU13P),
claiming 51x the throughput at half the power versus [7]. Baseline rows
are the published numbers (exactly as the paper uses them); our rows
come from the hybrid simulator.

Throughput/power at *paper scale* come from the analytic path (layer
shapes + measured sparsity profile); accuracy comes from the trained
reduced-scale models and is reported with that caveat.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.baselines.prior_work import (
    GERLINGHOFF_DATE22,
    SYNCNN_CIFAR10,
    SYNCNN_SVHN,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.experiments.table1 import paper_scale_network
from repro.hw.config import perf_config
from repro.hw.simulator import HybridSimulator
from repro.quant.schemes import INT4
from repro.reporting.comparison import PaperComparison
from repro.reporting.tables import Table
from repro.snn import build_vgg9
from repro.quant import convert
from repro.workload.model import estimate_input_events, measured_input_density

#: The paper's own rows: dataset -> (config, power W, latency ms,
#: energy mJ, throughput FPS, accuracy %).
PAPER_OURS = {
    "svhn": ("perf4", 0.89, 61.0, 6.4, 110.0, 93.9),
    "cifar10": ("perf2", 0.73, 59.0, 4.9, 120.0, 86.6),
    "cifar100": ("perf4", 2.35, 37.0, 16.1, 218.0, 56.9),
}
_BASELINES = {
    "svhn": SYNCNN_SVHN,
    "cifar10": SYNCNN_CIFAR10,
    "cifar100": GERLINGHOFF_DATE22,
}
_POPULATIONS = {"svhn": 1000, "cifar10": 1000, "cifar100": 5000}


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table3",
        title="Comparison to previous work",
    )
    table = Table(
        title="Table III (measured)",
        columns=[
            "dataset",
            "study",
            "network",
            "acc %",
            "platform",
            "power W",
            "latency ms",
            "energy mJ",
            "throughput FPS",
        ],
    )
    ratios = PaperComparison(name="Table III headline ratios (paper-activity rows)")
    activity_scale = _paper_activity_scale(ctx)
    for dataset, (config_name, *_paper) in PAPER_OURS.items():
        baseline = _BASELINES[dataset]
        table.add_row(
            dataset,
            baseline.study,
            baseline.network,
            baseline.accuracy_percent,
            baseline.platform,
            baseline.power_w,
            baseline.latency_ms,
            baseline.energy_mj,
            baseline.throughput_fps,
        )
        for label, scale in (
            ("measured activity", 1.0),
            ("paper activity", activity_scale),
        ):
            ours = _simulate_ours(ctx, dataset, config_name, scale)
            if ours is None:
                continue
            power, latency, energy, throughput, accuracy = ours
            table.add_row(
                dataset,
                f"this work ({config_name}, {label})",
                "VGG9",
                accuracy,
                "XCVU13P (simulated)",
                power,
                latency,
                energy,
                throughput,
            )
            if label != "paper activity":
                continue
            if dataset == "cifar100":
                ratios.add(
                    "throughput vs [7]",
                    51.0,
                    throughput / baseline.throughput_fps,
                    "x",
                )
                ratios.add(
                    "power vs [7] (lower better)",
                    0.5,
                    power / baseline.power_w,
                    "x",
                )
            else:
                ratios.add(
                    f"throughput vs [15] ({dataset})",
                    2.0,
                    throughput / baseline.throughput_fps,
                    "x",
                )
    result.tables.append(table)
    ratios.verdict = (
        "shape target: this work clearly faster than [7], power about "
        "half of [7]'s and above SyncNN's small-board point"
    )
    result.comparisons.append(ratios)
    result.notes.append(
        "our rows are computed at paper-scale layer dimensions via the "
        "analytic simulator: 'measured activity' uses the per-layer input "
        "densities of the trained reduced-scale models (which fire ~3-6x "
        "denser than the paper's full-scale networks), 'paper activity' "
        "rescales that profile so the CIFAR10 total matches the paper's "
        "reported 41K spikes/image (Table II) -- i.e. the timing model "
        "driven by the paper's own workload; accuracy is the "
        f"{ctx.preset.name}-scale synthetic-data accuracy"
    )
    return result


def _paper_activity_scale(ctx: ExperimentContext) -> float:
    """Global activity rescale aligning our profile to the paper's.

    The paper reports 41K total spikes/image for direct-coded CIFAR10
    (Table II); projecting our measured per-layer densities onto the
    paper-scale network gives the event total our models *would* produce.
    The ratio is applied to all datasets' density profiles.
    """
    evaluation = ctx.evaluate("cifar10", "int4")
    small = ctx.trained("cifar10", "int4")
    timesteps = ctx.timesteps_for("direct")
    density = measured_input_density(
        evaluation.input_events_per_image, small, timesteps
    )
    network = _paper_network("cifar10")
    events = estimate_input_events(network, density, timesteps)
    # Input events of the sparse layers ~ spikes emitted by the network.
    projected = sum(
        count for name, count in events.items() if name != "conv1_1"
    )
    paper_spikes = 41_000.0
    if projected <= 0:
        return 1.0
    return min(1.0, paper_spikes / projected)


def _simulate_ours(
    ctx: ExperimentContext,
    dataset: str,
    config_name: str,
    activity_scale: float = 1.0,
) -> Optional[Tuple[float, float, float, float, float]]:
    """(power, latency ms, energy mJ, throughput, accuracy %) at paper scale."""
    factor = int(config_name.replace("perf", ""))
    evaluation = ctx.evaluate(dataset, "int4")
    small = ctx.trained(dataset, "int4")
    timesteps = ctx.timesteps_for("direct")
    density = measured_input_density(
        evaluation.input_events_per_image, small, timesteps
    )
    density = {
        name: min(1.0, value * activity_scale)
        for name, value in density.items()
    }
    network = _paper_network(dataset)
    # Map layer densities by name (same nine layers at both scales).
    events = estimate_input_events(network, density, timesteps)
    config = perf_config(dataset, factor, scheme=INT4)
    report = HybridSimulator(network, config).run_from_counts(events, timesteps)
    return (
        report.dynamic_power_w,
        report.latency_ms,
        report.energy_mj,
        report.throughput_fps,
        100.0 * evaluation.accuracy,
    )


def _paper_network(dataset: str):
    if dataset == "cifar100":
        return paper_scale_network(INT4)
    network = build_vgg9(
        num_classes=10,
        population=_POPULATIONS[dataset],
        input_shape=(3, 32, 32),
        channel_scale=1.0,
        seed=0,
    )
    network.eval()
    return convert(network, INT4)
