"""Shared experiment context: datasets, trained models, disk cache.

Training is the expensive step, so deployed models are cached on disk
keyed by (scale, dataset, scheme, coding, seed); every harness that needs
"the int4 CIFAR10 model" gets the same artifact. Test-set evaluation
results are memoised in this process *and* persisted as ``.eval.json``
sidecars next to the model artifacts (:mod:`repro.experiments.evalcache`),
so pooled workers and later runs share evaluations instead of redoing
them.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, Optional, Tuple

import numpy as np

from repro.datasets import Dataset, make_dataset, train_test_split
from repro.errors import ExperimentError, PoisonTaskError, ReproError
from repro.experiments.evalcache import (
    EvaluationResult,
    eval_cache_enabled,
    eval_cache_path,
    invalidate_evaluations,
    save_evaluation,
    try_load_evaluation,
)
from repro.experiments.presets import ScalePreset, get_preset
from repro.parallel import merge_outputs, shard_slices, sharded_forward
from repro.parallel.config import resolve_on_shard_failure
from repro.quant import DeployableNetwork, convert, prepare_qat
from repro.quant.schemes import QuantScheme, scheme_by_name
from repro.runtime import (
    plan_deployable,
    plan_sidecar_path,
    runtime_config,
    save_plan,
    try_load_plan,
)
from repro.snn import (
    Trainer,
    TrainingConfig,
    build_vgg9,
    make_encoder,
)
from repro.snn.metrics import SpikeStats

_DATASET_CLASSES = {"svhn": 10, "cifar10": 10, "cifar100": 100}

__all__ = ["EvaluationResult", "ExperimentContext"]


class ExperimentContext:
    """Caches datasets and trained models across experiment harnesses.

    Args:
        scale: preset name ('tiny' | 'small' | 'paper').
        workspace: directory for cached artifacts.
        seed: master seed; every derived model/dataset is deterministic
            in (scale, seed).
        verbose: print progress (training epochs etc.).
        eval_cache: persist test-set evaluations as ``.eval.json``
            sidecars in the workspace and reuse them across processes;
            ``None`` resolves the ``REPRO_EVAL_CACHE`` environment
            default (on).
        encoder_seed: base seed of the counter-based stochastic encoding
            streams used for test-set evaluation (rate coding); ``None``
            derives the historical default ``seed + 99``. Every
            (sample, timestep) draw is a pure function of
            ``(encoder_seed, global sample index, timestep)``, so the
            same value reproduces the same spike trains at any shard or
            worker geometry -- the CLI exposes it as ``--encoder-seed``.
    """

    def __init__(
        self,
        scale: str = "small",
        workspace: str = "artifacts",
        seed: int = 0,
        verbose: bool = False,
        eval_cache: Optional[bool] = None,
        encoder_seed: Optional[int] = None,
    ) -> None:
        self.preset: ScalePreset = get_preset(scale)
        self.workspace = workspace
        self.seed = seed
        self.verbose = verbose
        self.encoder_seed = encoder_seed
        self.eval_cache = (
            eval_cache_enabled() if eval_cache is None else bool(eval_cache)
        )
        self._datasets: Dict[str, Tuple[Dataset, Dataset]] = {}
        self._models: Dict[str, DeployableNetwork] = {}
        # Keyed (cache_key, numeric signature): forced-integer and float
        # evaluations of the same model never alias in the memo.
        self._evaluations: Dict[Tuple[str, str], EvaluationResult] = {}
        # Cells that degraded under REPRO_ON_SHARD_FAILURE=skip: one
        # record per evaluation that lost quarantined shards (cache key,
        # shard indices, payload fingerprints, samples lost). A sweep
        # that completes with this non-empty completed *degraded*.
        self.failed_cells: list = []
        # Shard granularity of test-set evaluation: the historical
        # serial loop's 128-sample batches. Results are invariant to it
        # (counter-stream encoding); tests shrink it to exercise
        # multi-shard behaviour on tiny test sets.
        self.eval_batch = 128

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------
    def dataset(self, name: str) -> Tuple[Dataset, Dataset]:
        """(train, test) splits for a dataset name, memoised."""
        if name not in _DATASET_CLASSES:
            raise ExperimentError(f"unknown dataset {name!r}")
        if name not in self._datasets:
            classes = _DATASET_CLASSES[name]
            preset = self.preset
            total = preset.train_samples_for(classes) + preset.test_samples
            data = make_dataset(
                name, total, image_size=preset.image_size, seed=self.seed
            )
            test_fraction = preset.test_samples / total
            self._datasets[name] = train_test_split(
                data, test_fraction, seed=self.seed + 1
            )
        return self._datasets[name]

    def num_classes(self, name: str) -> int:
        return _DATASET_CLASSES[name]

    # ------------------------------------------------------------------
    # Models
    # ------------------------------------------------------------------
    def model_key(self, dataset: str, scheme: str, coding: str) -> str:
        return f"{self.preset.name}_{dataset}_{scheme}_{coding}_s{self.seed}"

    def model_path(self, key: str) -> str:
        return os.path.join(self.workspace, "models", f"{key}.npz")

    def trained(
        self, dataset: str, scheme: str = "fp32", coding: str = "direct"
    ) -> DeployableNetwork:
        """A trained, converted model (loaded from cache when possible)."""
        key = self.model_key(dataset, scheme, coding)
        if key in self._models:
            return self._models[key]
        path = self.model_path(key)
        if os.path.exists(path):
            model = DeployableNetwork.load(path)
        else:
            model = self._train(dataset, scheme_by_name(scheme), coding)
            model.save(path)
        self._ensure_plan_sidecar(model, path)
        self._models[key] = model
        return model

    def _ensure_plan_sidecar(self, model: DeployableNetwork, path: str) -> None:
        """Attach (and persist) the lowered runtime plan next to ``path``.

        Cold-started worker processes load the ``.plan.npz`` sidecar and
        skip lowering + BLAS-fold calibration; a stale or mismatched
        sidecar (digest of the stored parameters differs -- e.g. a
        retrain under an old sidecar) is silently rebuilt from the model.
        """
        if not runtime_config().enabled:
            return
        sidecar = plan_sidecar_path(path)
        digest = model.weights_digest()
        loaded = try_load_plan(sidecar, model_digest=digest)
        if loaded is not None and self._plan_serves_numeric_path(model, loaded):
            try:
                model.attach_plan(loaded)
                return
            except ReproError:
                pass  # stale artifact from an older model: rebuild below
        plan = plan_deployable(model)
        model.attach_plan(plan)
        save_plan(plan, sidecar, model_digest=digest)

    @staticmethod
    def _plan_serves_numeric_path(model: DeployableNetwork, plan) -> bool:
        """Whether a loaded sidecar plan carries the datapath we need.

        A quantized model running with integer kernels enabled needs the
        integer lowering a pre-v4 (or foreign) sidecar does not carry;
        such a plan would silently pin the run to the float path, so it
        is rebuilt -- and re-saved as v4 -- instead.
        """
        if model.scheme.is_float or runtime_config().int_kernels == "off":
            return True
        return any(
            layer.has_int_lowering
            for layer in plan.layers
            if layer.kind == "conv"
        )

    def _train(
        self, dataset: str, scheme: QuantScheme, coding: str
    ) -> DeployableNetwork:
        preset = self.preset
        train, _test = self.dataset(dataset)
        classes = self.num_classes(dataset)
        if self.verbose:
            print(
                f"[ctx] training {dataset} {scheme.name} {coding} "
                f"({preset.name} scale, {len(train)} samples)"
            )
        network = build_vgg9(
            num_classes=classes,
            population=preset.population(classes),
            input_shape=(3, preset.image_size, preset.image_size),
            channel_scale=preset.channel_scale,
            seed=self.seed,
        )
        if not scheme.is_float:
            prepare_qat(network, scheme)
        timesteps = (
            preset.direct_timesteps
            if coding == "direct"
            else preset.rate_timesteps
        )
        epochs = (
            preset.epochs_for(classes)
            if coding == "direct"
            else preset.rate_epochs
        )
        # 100-way classification needs a gentler step to avoid the
        # uniform-logits collapse mode of deep SNN training.
        lr = preset.lr * (0.5 if classes >= 100 else 1.0)
        config = TrainingConfig(
            epochs=epochs,
            batch_size=preset.batch_size,
            lr=lr,
            timesteps=timesteps,
            encoder=coding,
            seed=self.seed,
            verbose=self.verbose,
        )
        Trainer(network, config).fit(train.images, train.labels)
        network.eval()
        return convert(network, scheme)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    @staticmethod
    def numeric_signature(model: DeployableNetwork) -> str:
        """Identity of the numeric path an evaluation of ``model`` runs on.

        ``"float32"`` for float models and for ``int_kernels`` 'off' or
        'auto' -- 'auto' only takes the integer path where it proved
        bit-exact against float, so its numbers *are* float numbers.
        Forced integer runs (``int_kernels='on'``) may legitimately
        differ, so they are signed with the quantization scheme and a
        fingerprint of the dequantization scales: cache entries from
        either path are never served to the other.
        """
        if model.scheme.is_float or runtime_config().int_kernels != "on":
            return "float32"
        digest = hashlib.sha256()
        for layer in model.layers:
            if layer.weight_scale is not None:
                scale = np.ascontiguousarray(
                    np.asarray(layer.weight_scale, dtype=np.float32)
                )
                digest.update(scale.tobytes())
        return (
            f"int-forced/{model.scheme.name}/"
            f"scales={digest.hexdigest()[:16]}"
        )

    def timesteps_for(self, coding: str) -> int:
        return (
            self.preset.direct_timesteps
            if coding == "direct"
            else self.preset.rate_timesteps
        )

    def evaluation_encoder(self, coding: str):
        """The encoder every test-set evaluation of this context uses.

        Stochastic schemes key their counter streams on the resolved
        encoder seed (``encoder_seed`` or the historical ``seed + 99``
        default), so two contexts with equal (seed, encoder_seed)
        produce byte-identical encoded trains -- in any process, at any
        shard geometry.
        """
        resolved = (
            self.seed + 99 if self.encoder_seed is None else self.encoder_seed
        )
        return make_encoder(coding, seed=resolved)

    def evaluate(
        self,
        dataset: str,
        scheme: str = "fp32",
        coding: str = "direct",
        max_samples: Optional[int] = None,
        timesteps: Optional[int] = None,
    ) -> EvaluationResult:
        """Test-set accuracy + spike statistics of a cached model.

        Results are memoised in-process and -- unless the evaluation
        cache is disabled -- persisted as a ``.eval.json`` sidecar next
        to the model artifact, guarded by the model's weights digest
        (a retrain invalidates the entry) and the encoding stream
        signature (a different ``encoder_seed`` or scheme invalidates
        it). A warm entry is returned bit-identically without touching
        the test set.
        """
        # An explicit encoder seed gets its own entry (default-seed runs
        # keep the historical key, so existing warm workspaces stay
        # warm): alternating --encoder-seed values coexist on disk
        # instead of thrashing one file through the signature guard.
        encoder_part = (
            "" if self.encoder_seed is None else f"_e{self.encoder_seed}"
        )
        cache_key = (
            f"{self.model_key(dataset, scheme, coding)}"
            f"{encoder_part}_n{max_samples}_t{timesteps}"
        )
        # Forced-integer runs produce (legitimately) different numbers
        # than the float/auto path, so they memoise and guard under
        # their own numeric signature -- a float entry is never served
        # to an integer run, and vice versa. The common float path skips
        # materialising the model for pure memo hits.
        forced_int = (
            runtime_config().int_kernels == "on"
            and not scheme_by_name(scheme).is_float
        )
        model = self.trained(dataset, scheme, coding) if forced_int else None
        numeric = (
            self.numeric_signature(model) if forced_int else "float32"
        )
        memo_key = (cache_key, numeric)
        if memo_key in self._evaluations:
            return self._evaluations[memo_key]
        if model is None:
            model = self.trained(dataset, scheme, coding)
        encoder = self.evaluation_encoder(coding)
        if self.eval_cache:
            cached = try_load_evaluation(
                self.eval_cache_file(cache_key),
                model_digest=model.weights_digest(),
                encoding=encoder.stream_signature(),
                numeric=numeric,
            )
            if cached is not None:
                if self.verbose:
                    print(f"[ctx] eval cache hit: {cache_key}")
                self._evaluations[memo_key] = cached
                return cached
        _train, test = self.dataset(dataset)
        images, labels = test.images, test.labels
        if max_samples is not None:
            images, labels = images[:max_samples], labels[:max_samples]
        steps = timesteps or self.timesteps_for(coding)
        batch = self.eval_batch
        if getattr(encoder, "deterministic", False) and len(images):
            # Deterministic encodings -- direct, TTFS *and* counter-
            # stream rate coding -- split freely: shard at the same
            # 128-sample granularity the serial loop always used (the
            # merge is bit-identical to it) and let REPRO_WORKERS decide
            # how many processes serve the shards. Workers cold-start
            # from the cached .npz + .plan.npz sidecar.
            model_path = self.model_path(self.model_key(dataset, scheme, coding))
            degraded = None
            try:
                out = sharded_forward(
                    model,
                    images,
                    steps,
                    encoder,
                    shard_size=batch,
                    model_path=model_path if os.path.exists(model_path) else None,
                )
                eval_labels = labels
            except PoisonTaskError as exc:
                # Self-healing already retried the lost shards; landing
                # here means some shard killed its worker on every
                # allowed attempt. Under REPRO_ON_SHARD_FAILURE=skip the
                # sweep degrades instead of dying: the surviving shards
                # (pure functions of their coordinates, so still
                # byte-exact) are merged, the failure is recorded in
                # ``failed_cells``, and the degraded result is *not*
                # persisted to the eval cache.
                if resolve_on_shard_failure() != "skip":
                    raise
                pieces = shard_slices(len(images), shard_size=batch)
                survivors = [
                    (piece, part)
                    for piece, part in zip(pieces, exc.results)
                    if part is not None
                ]
                if not survivors:
                    raise
                out = merge_outputs([part for _, part in survivors])
                eval_labels = np.concatenate(
                    [labels[piece] for piece, _ in survivors]
                )
                degraded = {
                    "cache_key": cache_key,
                    "quarantined_shards": list(exc.quarantined),
                    "fingerprints": dict(exc.fingerprints),
                    "samples_lost": int(len(images) - len(eval_labels)),
                }
                self.failed_cells.append(degraded)
                if self.verbose:
                    print(
                        f"[ctx] degraded evaluation {cache_key}: shards "
                        f"{degraded['quarantined_shards']} quarantined, "
                        f"{degraded['samples_lost']} samples lost"
                    )
            stats = out.stats
            input_events = dict(out.input_spike_totals)
            correct = int((out.logits.argmax(axis=1) == eval_labels).sum())
            samples = int(out.logits.shape[0])
        else:
            # Leftover stateful encoders (deterministic=False) keep the
            # sequential legacy loop: their spike streams depend on
            # evaluation order. No in-tree encoder takes this branch.
            degraded = None
            samples = len(images)
            stats = SpikeStats()
            input_events = {}
            correct = 0
            for start in range(0, len(images), batch):
                chunk = images[start : start + batch]
                out = model.forward(chunk, steps, encoder)
                stats.merge(out.stats)
                for name, value in out.input_spike_totals.items():
                    input_events[name] = input_events.get(name, 0.0) + value
                correct += int(
                    (
                        out.logits.argmax(axis=1) == labels[start : start + batch]
                    ).sum()
                )
        result = EvaluationResult(
            accuracy=correct / samples if samples else 0.0,
            spikes_per_image=stats.spikes_per_image(),
            per_layer_spikes={
                layer: stats.layer_spikes_per_image(layer)
                for layer in stats.per_layer
            },
            input_events_per_image={
                name: value / samples for name, value in input_events.items()
            },
            samples=samples,
        )
        if self.eval_cache and degraded is None:
            # Degraded (partial-shard) results are never persisted: the
            # cache must only ever serve full-test-set numbers.
            save_evaluation(
                self.eval_cache_file(cache_key),
                result,
                model_digest=model.weights_digest(),
                encoding=encoder.stream_signature(),
                numeric=numeric,
            )
        if degraded is None:
            self._evaluations[memo_key] = result
        return result

    def eval_cache_file(self, cache_key: str) -> str:
        """Disk path of one evaluation-cache entry in this workspace."""
        return eval_cache_path(
            os.path.join(self.workspace, "models"), cache_key
        )

    def invalidate_eval_cache(self) -> int:
        """Drop every persisted evaluation in this workspace (and the
        in-process memo); returns the number of disk entries removed."""
        self._evaluations.clear()
        return invalidate_evaluations(os.path.join(self.workspace, "models"))

    def sim_images(self, dataset: str) -> Tuple[np.ndarray, np.ndarray]:
        """A fixed batch for hardware simulation runs."""
        _train, test = self.dataset(dataset)
        n = min(self.preset.sim_samples, len(test))
        return test.images[:n], test.labels[:n]
