"""Common result container for experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.reporting.comparison import PaperComparison
from repro.reporting.tables import Series, Table


@dataclass
class ExperimentResult:
    """Everything one table/figure harness produces.

    Attributes:
        experiment_id: paper reference ('fig1', 'table2', ...).
        title: human-readable headline.
        tables: regenerated tables (same rows the paper reports).
        series: regenerated figure series.
        comparisons: paper-vs-measured metric pairs with verdicts.
        notes: caveats (scale, substitutions) recorded alongside.
    """

    experiment_id: str
    title: str
    tables: List[Table] = field(default_factory=list)
    series: List[Series] = field(default_factory=list)
    comparisons: List[PaperComparison] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        parts: List[str] = [f"## {self.experiment_id}: {self.title}"]
        for table in self.tables:
            parts.append(table.render())
        for series in self.series:
            parts.append(series.render())
        for comparison in self.comparisons:
            parts.append(comparison.render())
        if self.notes:
            parts.append("\n".join(f"- {note}" for note in self.notes))
        return "\n\n".join(parts)

    def __str__(self) -> str:
        return self.render()
