"""Scale presets (DESIGN.md Sec. 4).

Training the full 32x32 VGG9 in NumPy is possible but slow, so trained-
model experiments run at a reduced scale with identical structure; the
analytic hardware models (Table I / Table III resource and power rows)
always use the paper-scale layer dimensions, which cost nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError


@dataclass(frozen=True)
class ScalePreset:
    """All knobs that shrink an experiment without changing its shape.

    Attributes:
        name: preset key.
        image_size: input frames are 3 x size x size.
        channel_scale: VGG9 channel multiplier.
        pop_per_class: population-layer neurons per class (paper: 100 for
            CIFAR10/SVHN, 50 for CIFAR100).
        train_samples / test_samples: dataset sizes per split.
        epochs / batch_size / lr: training hyper-parameters.
        direct_timesteps: T for direct coding (paper: 2).
        rate_timesteps: T for the rate-coding arm (paper: 25; reduced
            presets scale it down to keep BPTT affordable, preserving the
            rate >> direct timestep ratio).
        rate_epochs: rate-coded training epochs (forward cost is
            rate_timesteps/direct_timesteps higher per epoch).
        sim_samples: images per hardware-simulation batch.
    """

    name: str
    image_size: int
    channel_scale: float
    pop_per_class: int
    train_samples: int
    test_samples: int
    epochs: int
    batch_size: int
    lr: float
    direct_timesteps: int
    rate_timesteps: int
    rate_epochs: int
    sim_samples: int

    def population(self, num_classes: int) -> int:
        return num_classes * self.pop_per_class

    def train_samples_for(self, num_classes: int) -> int:
        """More classes need more samples; keep >= 24 per class."""
        return max(self.train_samples, num_classes * 24)

    def epochs_for(self, num_classes: int) -> int:
        """100-way discrimination converges slower, especially under QAT
        noise; give it extra passes."""
        return self.epochs + (6 if num_classes >= 100 else 0)


PRESETS: Dict[str, ScalePreset] = {
    "tiny": ScalePreset(
        name="tiny",
        image_size=8,
        channel_scale=0.125,
        pop_per_class=4,
        train_samples=240,
        test_samples=120,
        epochs=2,
        batch_size=32,
        lr=3e-3,
        direct_timesteps=2,
        rate_timesteps=6,
        rate_epochs=2,
        sim_samples=32,
    ),
    "small": ScalePreset(
        name="small",
        image_size=16,
        channel_scale=0.25,
        pop_per_class=10,
        train_samples=1280,
        test_samples=400,
        epochs=10,
        batch_size=32,
        lr=2e-3,
        direct_timesteps=2,
        rate_timesteps=12,
        rate_epochs=4,
        sim_samples=64,
    ),
    "paper": ScalePreset(
        name="paper",
        image_size=32,
        channel_scale=1.0,
        pop_per_class=100,
        train_samples=20000,
        test_samples=4000,
        epochs=30,
        batch_size=64,
        lr=1e-3,
        direct_timesteps=2,
        rate_timesteps=25,
        rate_epochs=10,
        sim_samples=256,
    ),
}


def get_preset(name: str) -> ScalePreset:
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ConfigError(f"unknown scale preset {name!r}; known: {known}") from None
