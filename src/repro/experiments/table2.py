"""Table II -- direct vs rate coding on CIFAR10 (quantized LW hardware).

The paper's second headline: with only 2 timesteps, direct coding beats
rate coding at 25 timesteps by 10 accuracy points while emitting 2.6x
fewer spikes and consuming 26.4x less energy -- contradicting the prior
belief that rate coding is the energy-efficient choice. The rate-coded
network runs with the dense core switched off (sparse cores only), the
direct-coded one on the full hybrid.
"""

from __future__ import annotations

from repro.baselines.rate_coded import rate_coded_config
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.hw.config import lw_config
from repro.hw.simulator import HybridSimulator
from repro.quant.schemes import INT4
from repro.reporting.comparison import PaperComparison
from repro.reporting.tables import Table
from repro.snn import make_encoder

#: Paper Table II: (timesteps, total spikes, acc %, latency ms, energy mJ).
PAPER_RATE = (25, 107_000, 77.37, 340.0, 201.0)
PAPER_DIRECT = (2, 41_000, 87.01, 11.7, 7.6)
PAPER_ENERGY_IMPROVEMENT = 26.4


def run(ctx: ExperimentContext, dataset: str = "cifar10") -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table2",
        title="Direct vs rate coding (quantized LW configuration)",
    )
    images, labels = ctx.sim_images(dataset)

    direct_model = ctx.trained(dataset, "int4", "direct")
    direct_config = lw_config(dataset, scheme=INT4)
    direct_steps = ctx.timesteps_for("direct")
    direct_report = HybridSimulator(direct_model, direct_config).run(
        images, direct_steps, make_encoder("direct"), labels
    )

    rate_model = ctx.trained(dataset, "int4", "rate")
    rate_config = rate_coded_config(lw_config(dataset, scheme=INT4))
    rate_steps = ctx.timesteps_for("rate")
    rate_report = HybridSimulator(rate_model, rate_config).run(
        images,
        rate_steps,
        make_encoder("rate", seed=ctx.seed + 7),
        labels,
    )

    improvement = (
        rate_report.energy_mj / direct_report.energy_mj
        if direct_report.energy_mj
        else 0.0
    )
    table = Table(
        title="Table II (measured)",
        columns=[
            "coding",
            "timesteps",
            "spikes/img",
            "acc %",
            "latency ms",
            "energy mJ",
            "energy imprv",
        ],
    )
    table.add_row(
        "rate",
        rate_steps,
        rate_report.total_spikes_per_image,
        100.0 * (rate_report.accuracy or 0.0),
        rate_report.latency_ms,
        rate_report.energy_mj,
        "--",
    )
    table.add_row(
        "direct",
        direct_steps,
        direct_report.total_spikes_per_image,
        100.0 * (direct_report.accuracy or 0.0),
        direct_report.latency_ms,
        direct_report.energy_mj,
        f"{improvement:.1f}x",
    )
    result.tables.append(table)

    comparison = PaperComparison(name="Table II paper vs measured")
    comparison.add("rate timesteps", PAPER_RATE[0], rate_steps)
    comparison.add("direct timesteps", PAPER_DIRECT[0], direct_steps)
    comparison.add(
        "spike ratio (rate/direct)",
        PAPER_RATE[1] / PAPER_DIRECT[1],
        _safe_ratio(
            rate_report.total_spikes_per_image,
            direct_report.total_spikes_per_image,
        ),
        "x",
    )
    comparison.add(
        "accuracy gain (direct - rate)",
        PAPER_DIRECT[2] - PAPER_RATE[2],
        100.0
        * ((direct_report.accuracy or 0.0) - (rate_report.accuracy or 0.0)),
        "pp",
    )
    comparison.add(
        "latency ratio (rate/direct)",
        PAPER_RATE[3] / PAPER_DIRECT[3],
        _safe_ratio(rate_report.latency_ms, direct_report.latency_ms),
        "x",
    )
    comparison.add(
        "energy improvement (rate/direct)",
        PAPER_ENERGY_IMPROVEMENT,
        improvement,
        "x",
    )
    direct_wins = (
        (direct_report.accuracy or 0.0) >= (rate_report.accuracy or 0.0)
        and improvement > 1.0
    )
    comparison.verdict = (
        "shape holds: direct coding more accurate AND cheaper"
        if direct_wins
        else "shape partially reproduced; see notes"
    )
    result.comparisons.append(comparison)
    result.notes.append(
        f"rate arm uses T={rate_steps} (paper: 25) scaled with the "
        f"{ctx.preset.name} preset to keep NumPy BPTT affordable; the "
        "rate >> direct timestep ratio and the dense-core-off methodology "
        "are preserved"
    )
    return result


def _safe_ratio(a: float, b: float) -> float:
    return a / b if b else 0.0
