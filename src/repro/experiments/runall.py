"""Run every experiment and render an EXPERIMENTS.md document."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.experiments import fig1, fig4, table1, table2, table3
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.parallel import effective_workers, run_tasks, workers_override

RUNNERS: Dict[str, Callable[[ExperimentContext], ExperimentResult]] = {
    "fig1": fig1.run,
    "table1": table1.run,
    "fig4": fig4.run,
    "table2": table2.run,
    "table3": table3.run,
}


def _experiment_cell(spec: Dict) -> ExperimentResult:
    """One experiment harness, worker-process entry point.

    Each worker builds its own context against the shared workspace;
    whatever models fig1 already trained are picked up from the disk
    cache (with their plan sidecars), anything extra an experiment needs
    (e.g. table2's rate-coded arm) is trained deterministically in the
    worker.
    """
    ctx = ExperimentContext(
        scale=spec["scale"],
        workspace=spec["workspace"],
        seed=spec["seed"],
        verbose=spec["verbose"],
        eval_cache=spec.get("eval_cache"),
        encoder_seed=spec.get("encoder_seed"),
    )
    return RUNNERS[spec["which"]](ctx)


def run_all(
    ctx: ExperimentContext, workers: Optional[int] = None
) -> List[ExperimentResult]:
    """All experiments, in paper order (fig1 first trains every model).

    With more than one resolved worker, fig1 runs first (its cells are
    themselves pooled, and it populates the shared model *and*
    evaluation caches -- every ``.eval.json`` its cells write is a
    test-set evaluation the farmed harnesses load instead of redoing),
    then the remaining four independent harnesses are farmed out;
    results always come back in paper order. ``REPRO_WORKERS=1``
    reproduces the sequential shared-context path exactly.
    """
    rest = [name for name in RUNNERS if name != "fig1"]
    if effective_workers(workers, payload_count=len(rest)) <= 1:
        # Pin the whole pass to one worker so the nested entry points
        # (fig1's cells, evaluate's sharding) stay sequential too --
        # run_all(workers=1) means *sequential*, not 'serial here but
        # pooled inside'.
        with workers_override(1):
            return [runner(ctx) for runner in RUNNERS.values()]
    if workers is not None:
        # An explicit cap binds the nested entry points too (fig1's own
        # cell pool, evaluate's sharding), not just the harness fan-out.
        with workers_override(workers):
            first = fig1.run(ctx)
    else:
        first = fig1.run(ctx)
    specs = [
        {
            "which": name,
            "scale": ctx.preset.name,
            "workspace": ctx.workspace,
            "seed": ctx.seed,
            "verbose": ctx.verbose,
            "eval_cache": ctx.eval_cache,
            "encoder_seed": ctx.encoder_seed,
        }
        for name in rest
    ]
    results = run_tasks(_experiment_cell, specs, workers=workers)
    ordered = {"fig1": first}
    ordered.update(dict(zip(rest, results)))
    return [ordered[name] for name in RUNNERS]


def render_experiments_md(
    results: List[ExperimentResult], ctx: ExperimentContext
) -> str:
    """EXPERIMENTS.md body: header + one section per experiment."""
    header = [
        "# EXPERIMENTS -- paper vs measured",
        "",
        "Reproduction of every table and figure of *Exploring the "
        "Sparsity-Quantization Interplay on a Novel Hybrid SNN "
        "Event-Driven Architecture* (DATE 2025).",
        "",
        f"- scale preset: **{ctx.preset.name}** "
        f"({ctx.preset.image_size}x{ctx.preset.image_size} frames, "
        f"channel scale {ctx.preset.channel_scale})",
        f"- master seed: {ctx.seed}",
        "- datasets are deterministic synthetic stand-ins "
        "(see DESIGN.md section 1); hardware numbers come from the "
        "calibrated simulator, not an FPGA",
        "- the reproduction target is the *shape* of each result "
        "(who wins, by roughly what factor); absolute values differ "
        "by construction",
        "",
    ]
    body = [result.render() for result in results]
    return "\n".join(header) + "\n" + "\n\n".join(body) + "\n"
