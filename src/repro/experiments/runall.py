"""Run every experiment and render an EXPERIMENTS.md document."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments import fig1, fig4, table1, table2, table3
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext

RUNNERS: Dict[str, Callable[[ExperimentContext], ExperimentResult]] = {
    "fig1": fig1.run,
    "table1": table1.run,
    "fig4": fig4.run,
    "table2": table2.run,
    "table3": table3.run,
}


def run_all(ctx: ExperimentContext) -> List[ExperimentResult]:
    """All experiments, in paper order (fig1 first trains every model)."""
    return [runner(ctx) for runner in RUNNERS.values()]


def render_experiments_md(
    results: List[ExperimentResult], ctx: ExperimentContext
) -> str:
    """EXPERIMENTS.md body: header + one section per experiment."""
    header = [
        "# EXPERIMENTS -- paper vs measured",
        "",
        "Reproduction of every table and figure of *Exploring the "
        "Sparsity-Quantization Interplay on a Novel Hybrid SNN "
        "Event-Driven Architecture* (DATE 2025).",
        "",
        f"- scale preset: **{ctx.preset.name}** "
        f"({ctx.preset.image_size}x{ctx.preset.image_size} frames, "
        f"channel scale {ctx.preset.channel_scale})",
        f"- master seed: {ctx.seed}",
        "- datasets are deterministic synthetic stand-ins "
        "(see DESIGN.md section 1); hardware numbers come from the "
        "calibrated simulator, not an FPGA",
        "- the reproduction target is the *shape* of each result "
        "(who wins, by roughly what factor); absolute values differ "
        "by construction",
        "",
    ]
    body = [result.render() for result in results]
    return "\n".join(header) + "\n" + "\n\n".join(body) + "\n"
