"""Fig. 4 -- energy per image, fp32 vs int4, across LW/perf2/perf4.

The paper reports int4 cutting average energy by 3.4x (CIFAR10) and 1.7x
(CIFAR100) across configurations, most of it from the power gap, the rest
from the sparsity gap of Fig. 1. This harness simulates every
(dataset, scheme, config) cell on the trained models and regenerates the
three bar groups.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.hw.config import lw_config, perf_config
from repro.hw.simulator import HybridSimulator, SimulationReport
from repro.quant.schemes import FP32, INT4
from repro.reporting.comparison import PaperComparison
from repro.reporting.tables import Series, Table
from repro.snn import make_encoder

DATASETS = ("svhn", "cifar10", "cifar100")
CONFIG_NAMES = ("lw", "perf2", "perf4")

#: Paper-reported average energy improvement of int4 over fp32.
PAPER_AVG_IMPROVEMENT = {"cifar10": 3.4, "cifar100": 1.7}


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig4",
        title="Energy comparison, fp32 vs int4 hardware (LW/perf2/perf4)",
    )
    timesteps = ctx.timesteps_for("direct")
    energies: Dict[Tuple[str, str, str], SimulationReport] = {}
    for dataset in DATASETS:
        table = Table(
            title=f"Fig. 4 ({dataset}): energy per image [mJ]",
            columns=["config", "fp32", "int4", "improvement x"],
        )
        fp32_series = Series(f"{dataset} fp32", "config", "energy mJ")
        int4_series = Series(f"{dataset} int4", "config", "energy mJ")
        images, labels = ctx.sim_images(dataset)
        for config_name in CONFIG_NAMES:
            row = [config_name]
            for scheme in (FP32, INT4):
                model = ctx.trained(dataset, scheme.name)
                config = _make_config(dataset, config_name, scheme)
                simulator = HybridSimulator(model, config)
                encoder = make_encoder("direct")
                report = simulator.run(images, timesteps, encoder, labels)
                energies[(dataset, scheme.name, config_name)] = report
                row.append(report.energy_mj)
            improvement = row[1] / row[2] if row[2] else 0.0
            table.add_row(row[0], row[1], row[2], improvement)
            fp32_series.add_point(config_name, row[1])
            int4_series.add_point(config_name, row[2])
        result.tables.append(table)
        result.series.extend([fp32_series, int4_series])

        if dataset in PAPER_AVG_IMPROVEMENT:
            measured = _average_improvement(energies, dataset)
            comparison = PaperComparison(name=f"Fig. 4 / {dataset}")
            comparison.add(
                "avg energy improvement (fp32/int4)",
                PAPER_AVG_IMPROVEMENT[dataset],
                measured,
                "x",
            )
            comparison.verdict = (
                "shape holds: int4 cheaper in every configuration"
                if measured > 1.0
                else "shape NOT reproduced"
            )
            result.comparisons.append(comparison)

    result.notes.append(
        "energies from the hybrid simulator on the trained "
        f"{ctx.preset.name}-scale models; paper LW allocations and their "
        "2x/4x scalings; absolute mJ differ from the paper (smaller "
        "frames, synthetic data), improvement factors are the target"
    )
    return result


def _make_config(dataset: str, config_name: str, scheme):
    if config_name == "lw":
        return lw_config(dataset, scheme=scheme)
    factor = int(config_name.replace("perf", ""))
    return perf_config(dataset, factor, scheme=scheme)


def _average_improvement(
    energies: Dict[Tuple[str, str, str], SimulationReport], dataset: str
) -> float:
    ratios = []
    for config_name in CONFIG_NAMES:
        fp32 = energies[(dataset, "fp32", config_name)].energy_mj
        int4 = energies[(dataset, "int4", config_name)].energy_mj
        if int4 > 0:
            ratios.append(fp32 / int4)
    return sum(ratios) / len(ratios) if ratios else 0.0
