"""Fig. 1 -- quantization's effect on total spike count.

The paper's first headline result: int4 QAT models spike *less* than
their fp32 counterparts at near-equal accuracy -- 6.1% / 10.1% / 15.2%
fewer spikes on SVHN / CIFAR10 / CIFAR100, with accuracy deltas of only
0.5 / 0.4 / 3.1 points. This harness trains both arms per dataset,
counts spikes over the test set, and compares.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.parallel import effective_workers, run_tasks
from repro.reporting.comparison import PaperComparison
from repro.reporting.tables import Series, Table

#: Paper-reported values: dataset -> (fp32 acc, int4 acc, spike reduction %).
PAPER_FIG1 = {
    "svhn": (94.3, 93.8, 6.1),
    "cifar10": (86.6, 86.2, 10.1),
    "cifar100": (57.3, 54.2, 15.2),
}

DATASETS = ("svhn", "cifar10", "cifar100")

SCHEMES = ("fp32", "int4")


def _evaluation_row(evaluation) -> Dict[str, float]:
    """The per-cell projection both execution paths must agree on."""
    return {
        "accuracy": evaluation.accuracy,
        "spikes_per_image": evaluation.spikes_per_image,
    }


def _evaluate_cell(spec: Dict) -> Dict[str, float]:
    """One (dataset, scheme) design-space cell, worker-process entry.

    Builds a fresh context against the shared workspace -- trained
    models and plan sidecars are disk artifacts, so a cold worker either
    loads them or (first run) trains them deterministically from the
    same seed the parent would use.
    """
    ctx = ExperimentContext(
        scale=spec["scale"],
        workspace=spec["workspace"],
        seed=spec["seed"],
        verbose=spec["verbose"],
        eval_cache=spec.get("eval_cache"),
        encoder_seed=spec.get("encoder_seed"),
    )
    return _evaluation_row(ctx.evaluate(spec["dataset"], spec["scheme"]))


def _evaluate_cells(
    ctx: ExperimentContext, datasets: Sequence[str]
) -> Dict[Tuple[str, str], Dict[str, float]]:
    """All (dataset, scheme) cells, pooled when workers allow.

    Cell ordering (dataset-major, scheme-minor) is fixed, so the merged
    mapping -- and every table assembled from it -- is identical whether
    the cells ran pooled or through the serial fallback.
    """
    cells = [(d, s) for d in datasets for s in SCHEMES]
    if effective_workers(payload_count=len(cells)) > 1:
        specs = [
            {
                "scale": ctx.preset.name,
                "workspace": ctx.workspace,
                "seed": ctx.seed,
                "verbose": ctx.verbose,
                "eval_cache": ctx.eval_cache,
                "encoder_seed": ctx.encoder_seed,
                "dataset": dataset,
                "scheme": scheme,
            }
            for dataset, scheme in cells
        ]
        rows = run_tasks(_evaluate_cell, specs)
        return {cell: row for cell, row in zip(cells, rows)}
    return {
        (dataset, scheme): _evaluation_row(ctx.evaluate(dataset, scheme))
        for dataset, scheme in cells
    }


def run(
    ctx: ExperimentContext, datasets: Sequence[str] = DATASETS
) -> ExperimentResult:
    """Train fp32 and int4 arms on all three datasets; compare spikes."""
    result = ExperimentResult(
        experiment_id="fig1",
        title="Quantization effect on the total number of spikes",
    )
    table = Table(
        title="Fig. 1 data (measured)",
        columns=[
            "dataset",
            "fp32 acc %",
            "int4 acc %",
            "fp32 spikes/img",
            "int4 spikes/img",
            "spike reduction %",
        ],
    )
    fp32_series = Series("fp32 spikes", "dataset", "spikes/image")
    int4_series = Series("int4 spikes", "dataset", "spikes/image")

    evaluations = _evaluate_cells(ctx, datasets)
    for dataset in datasets:
        fp32_eval = evaluations[(dataset, "fp32")]
        int4_eval = evaluations[(dataset, "int4")]
        reduction = _reduction_percent(
            fp32_eval["spikes_per_image"], int4_eval["spikes_per_image"]
        )
        table.add_row(
            dataset,
            100.0 * fp32_eval["accuracy"],
            100.0 * int4_eval["accuracy"],
            fp32_eval["spikes_per_image"],
            int4_eval["spikes_per_image"],
            reduction,
        )
        fp32_series.add_point(dataset, fp32_eval["spikes_per_image"])
        int4_series.add_point(dataset, int4_eval["spikes_per_image"])

        paper_fp32, paper_int4, paper_reduction = PAPER_FIG1[dataset]
        comparison = PaperComparison(name=f"Fig. 1 / {dataset}")
        comparison.add(
            "fp32 accuracy", paper_fp32, 100.0 * fp32_eval["accuracy"], "%"
        )
        comparison.add(
            "int4 accuracy", paper_int4, 100.0 * int4_eval["accuracy"], "%"
        )
        comparison.add(
            "accuracy drop (fp32 - int4)",
            paper_fp32 - paper_int4,
            100.0 * (fp32_eval["accuracy"] - int4_eval["accuracy"]),
            "pp",
        )
        comparison.add("spike reduction", paper_reduction, reduction, "%")
        comparison.verdict = _verdict(reduction)
        result.comparisons.append(comparison)

    result.tables.append(table)
    result.series.extend([fp32_series, int4_series])
    result.notes.append(
        f"measured at {ctx.preset.name} scale "
        f"({ctx.preset.image_size}x{ctx.preset.image_size} synthetic data, "
        f"channel scale {ctx.preset.channel_scale}); paper trains full VGG9 "
        "on the real datasets"
    )
    return result


def _reduction_percent(fp32_spikes: float, int4_spikes: float) -> float:
    if fp32_spikes <= 0:
        return 0.0
    return 100.0 * (fp32_spikes - int4_spikes) / fp32_spikes


def _verdict(reduction: float) -> str:
    if reduction > 0:
        return (
            "shape holds: quantization reduces spiking "
            f"({reduction:.1f}% fewer spikes)"
        )
    return (
        "shape NOT reproduced at this scale: int4 spiked "
        f"{-reduction:.1f}% more than fp32"
    )
