"""Table I -- area utilization and power of the CIFAR100 hardware.

Resources and power depend only on layer *dimensions* and core
allocation, never on trained weight values, so this harness always runs
at full paper scale: it instantiates the exact VGG9 (population 5000),
applies the paper's published Table I allocation
(1, 28, 12, 54, 16, 72, 70, 19, 4), and prints per-layer LUT/FF/BRAM/
URAM/power for both precisions next to the paper's numbers. The layer
overhead balance (Sec. V-B in-text) is regenerated from the Eq. 3
workload model using input densities measured on the trained small-scale
model.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.hw.config import (
    AcceleratorConfig,
    PAPER_TABLE1_ALLOCATION,
    PAPER_TABLE1_OVERHEADS,
)
from repro.hw.power import PowerModel
from repro.hw.resources import ResourceEstimator
from repro.hw.simulator import HybridSimulator
from repro.quant import convert
from repro.quant.schemes import FP32, INT4, QuantScheme
from repro.reporting.comparison import PaperComparison
from repro.reporting.tables import Table
from repro.snn import build_vgg9
from repro.workload.model import estimate_input_events, measured_input_density

#: Paper Table I rows: layer -> (LUT, FF, BRAM, URAM, dyn power W).
PAPER_TABLE1_INT4 = {
    "conv1_1": (1_900, 1_900, 0, 0, 0.048),
    "conv1_2": (11_700, 14_600, 32, 0, 0.205),
    "conv2_1": (1_700, 2_100, 44, 0, 0.054),
    "conv2_2": (5_100, 5_100, 164, 0, 0.170),
    "conv3_1": (1_600, 1_300, 144, 0, 0.100),
    "conv3_2": (5_700, 5_200, 216, 0, 0.293),
    "conv3_3": (5_800, 5_100, 211, 0, 0.284),
    "fc": (6_000, 2_100, 168, 0, 0.125),
}
PAPER_TABLE1_FP32 = {
    "conv1_1": (11_600, 1_900, 0, 0, 0.051),
    "conv1_2": (670_300, 15_200, 32, 0, 0.251),
    "conv2_1": (11_400, 5_300, 212, 0, 0.152),
    "conv2_2": (34_400, 10_100, 272, 54, 0.561),
    "conv3_1": (11_600, 2_900, 464, 129, 0.405),
    "conv3_2": (45_600, 12_500, 648, 145, 0.960),
    "conv3_3": (39_200, 8_400, 631, 140, 0.634),
    "fc": (7_600, 2_800, 607, 368, 0.508),
}
PAPER_TOTALS = {
    "int4": (109_700, 37_600, 979, 0, 1.231, 3.13),
    "fp32": (821_600, 58_700, 2_466, 836, 3.471, 3.22),
}


def paper_scale_network(scheme: QuantScheme, seed: int = 0):
    """The full CIFAR100 VGG9 (random weights -- shapes are what matter)."""
    network = build_vgg9(
        num_classes=100,
        population=5000,
        input_shape=(3, 32, 32),
        channel_scale=1.0,
        seed=seed,
    )
    network.eval()
    return convert(network, scheme)


def run(ctx: ExperimentContext, timesteps: int = 2) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table1",
        title="Area utilization and power (CIFAR100 hardware, paper scale)",
    )
    per_scheme = {}
    for scheme, paper_rows in ((INT4, PAPER_TABLE1_INT4), (FP32, PAPER_TABLE1_FP32)):
        network = paper_scale_network(scheme)
        config = AcceleratorConfig(
            name="table1", allocation=PAPER_TABLE1_ALLOCATION, scheme=scheme
        )
        estimator = ResourceEstimator(config)
        estimate = estimator.estimate(network, timesteps)
        power = PowerModel(config).estimate(estimate)
        per_scheme[scheme.name] = (network, config, estimate, power)

        table = Table(
            title=f"Table I ({scheme.name} hardware, measured)",
            columns=["layer", "LUT", "FF", "BRAM", "URAM", "power W"],
        )
        merged = _merge_fc(estimate, power)
        for name, (lut, ff, bram, uram, watt) in merged.items():
            table.add_row(name, round(lut), round(ff), round(bram), round(uram), watt)
        total = (
            estimate.total_luts,
            estimate.total_ffs,
            estimate.total_bram,
            estimate.total_uram,
            power.dynamic_w,
        )
        table.add_row("total", *(round(v) for v in total[:4]), total[4])
        util = estimator.utilization(estimate)
        table.add_note(
            f"utilization: LUT {util['lut'] * 100:.2f}%, "
            f"BRAM {util['bram'] * 100:.2f}%, URAM {util['uram'] * 100:.2f}%; "
            f"static power {power.static_w:.2f} W"
        )
        result.tables.append(table)

        paper_total = PAPER_TOTALS[scheme.name]
        comparison = PaperComparison(name=f"Table I totals ({scheme.name})")
        comparison.add("total LUT", paper_total[0], total[0])
        comparison.add("total FF", paper_total[1], total[1])
        comparison.add("total BRAM", paper_total[2], total[2])
        comparison.add("total URAM", paper_total[3], total[3])
        comparison.add("dynamic power", paper_total[4], total[4], "W")
        comparison.add("static power", paper_total[5], power.static_w, "W")
        result.comparisons.append(comparison)

    # Headline ratios (Sec. V-B): int4 ~8x fewer LUTs, ~3.4x fewer
    # BRAM/URAM-equivalents, 2.82x less dynamic power.
    int4_est, int4_pow = per_scheme["int4"][2], per_scheme["int4"][3]
    fp32_est, fp32_pow = per_scheme["fp32"][2], per_scheme["fp32"][3]
    ratios = PaperComparison(name="Table I headline ratios (fp32 / int4)")
    ratios.add("LUT ratio", 8.0, fp32_est.total_luts / int4_est.total_luts, "x")
    bram_eq_fp32 = fp32_est.total_bram + fp32_est.total_uram * 8
    bram_eq_int4 = int4_est.total_bram + int4_est.total_uram * 8
    ratios.add("BRAM+URAM ratio", 3.4, bram_eq_fp32 / bram_eq_int4, "x")
    ratios.add("dynamic power ratio", 2.82, fp32_pow.dynamic_w / int4_pow.dynamic_w, "x")
    result.comparisons.append(ratios)

    # Layer overhead balance, from measured small-scale input densities
    # extrapolated to paper dimensions.
    overheads = _layer_overheads(ctx, per_scheme["int4"][0], per_scheme["int4"][1], timesteps)
    if overheads is not None:
        table = Table(
            title="Layer execution overheads (balanced allocation, int4)",
            columns=["layer", "measured %", "paper %"],
        )
        for (name, measured), paper in zip(
            overheads.items(), PAPER_TABLE1_OVERHEADS
        ):
            table.add_row(name, measured, paper)
        result.tables.append(table)

    result.notes.append(
        "resource/power rows computed at full paper scale (layer shapes "
        "only); the paper's FC rows under-report full on-chip fp32 FC "
        "storage (475 Mb of weights vs ~106 Mb of URAM listed), so our "
        "honest storage model shows larger FC memory"
    )
    return result


def _merge_fc(estimate, power) -> Dict[str, tuple]:
    """Collapse fc1+fc2 into one 'fc' row, matching the paper's table."""
    merged: Dict[str, list] = {}
    power_by_name = power.by_name()
    for layer in estimate.layers:
        key = "fc" if layer.name.startswith("fc") else layer.name
        row = merged.setdefault(key, [0.0, 0.0, 0.0, 0.0, 0.0])
        row[0] += layer.luts
        row[1] += layer.ffs
        row[2] += layer.bram
        row[3] += layer.uram
        row[4] += power_by_name[layer.name].total_w
    return {key: tuple(values) for key, values in merged.items()}


def _layer_overheads(
    ctx: ExperimentContext, network, config, timesteps: int
) -> Optional[Dict[str, float]]:
    """Regenerate the Sec. V-B overhead balance from measured densities."""
    try:
        evaluation = ctx.evaluate("cifar100", "int4")
    except Exception:  # pragma: no cover - defensive: table still useful
        return None
    small = ctx.trained("cifar100", "int4")
    density = measured_input_density(
        evaluation.input_events_per_image, small, ctx.timesteps_for("direct")
    )
    events = estimate_input_events(network, density, timesteps)
    simulator = HybridSimulator(network, config)
    report = simulator.run_from_counts(events, timesteps)
    return report.energy.layer_overheads()
