"""Mapping a custom SNN architecture onto the hybrid accelerator.

The paper's design is parameterised, not VGG9-specific (Sec. IV): this
example defines a different architecture with the compact string
notation, maps it at *paper-class* dimensions through the analytic
resource / power / timing models (no training needed -- shapes drive
everything), and checks it fits the XCVU13P.

Run:  python examples/custom_network_mapping.py    (seconds)
"""

import numpy as np

from repro.hw.config import AcceleratorConfig
from repro.hw.power import PowerModel
from repro.hw.resources import ResourceEstimator
from repro.hw.simulator import HybridSimulator
from repro.quant import INT4, convert
from repro.reporting import Table
from repro.snn import build_network
from repro.workload import balanced_allocation, workloads_from_network
from repro.workload.model import estimate_input_events

#: A deeper, thinner custom network (not the paper's VGG9).
ARCH = "32C3-64C3-MP2-96C3-96C3-MP2-128C3-MP2-512-P"


def main() -> None:
    network = build_network(
        ARCH, input_shape=(3, 32, 32), num_classes=10,
        population=500, seed=0,
    )
    print(network.describe())
    network.eval()
    deployable = convert(network, INT4)

    # Assume a uniform 90% input sparsity for sizing (a design-time
    # estimate; measured profiles refine this later).
    density = {layer.name: 0.10 for layer in deployable.layers}
    events = estimate_input_events(deployable, density, timesteps=2)
    workloads = workloads_from_network(deployable, events, timesteps=2)

    allocation = balanced_allocation(workloads, budget=96)
    print(f"\nbalanced allocation @ budget 96: {allocation.allocation}")

    config = AcceleratorConfig(
        name="custom", allocation=allocation.allocation, scheme=INT4
    )
    estimator = ResourceEstimator(config)
    estimate = estimator.estimate(deployable, timesteps=2)
    estimator.check_fit(estimate)  # raises CapacityError if too big
    util = estimator.utilization(estimate)
    power = PowerModel(config).estimate(estimate)

    table = Table(
        title="Per-layer implementation estimate (int4)",
        columns=["layer", "cores", "LUT", "BRAM", "URAM", "power W"],
    )
    power_by_name = power.by_name()
    for layer in estimate.layers:
        table.add_row(
            layer.name, layer.cores, round(layer.luts),
            round(layer.bram), round(layer.uram),
            power_by_name[layer.name].total_w,
        )
    print()
    print(table.render())
    print(
        f"\nfits XCVU13P: LUT {util['lut'] * 100:.1f}%, "
        f"BRAM {util['bram'] * 100:.1f}%, URAM {util['uram'] * 100:.1f}% | "
        f"dynamic power {power.dynamic_w:.2f} W"
    )

    report = HybridSimulator(deployable, config).run_from_counts(events, 2)
    print(
        f"analytic timing: latency {report.latency_ms:.2f} ms/img, "
        f"throughput {report.throughput_fps:.0f} FPS, "
        f"energy {report.energy_mj:.2f} mJ/img"
    )


if __name__ == "__main__":
    main()
