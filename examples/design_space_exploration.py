"""Design-time workload modelling and neural-core partitioning (Sec. V-A).

Shows the paper's hardware-sizing flow:

1. train a network and *measure* its per-layer input spike counts
   ('acquired empirically by running the network once'),
2. build the Eq. 3 workload model from those counts,
3. derive the LW allocation (proportional, minimal) and balanced
   allocations at growing budgets,
4. compare against a naive uniform split, and print the layer-overhead
   balance the paper reports for its Table I configuration.

Run:  python examples/design_space_exploration.py   (~2 minutes)
"""

from repro.datasets import make_dataset, train_test_split
from repro.hw.config import AcceleratorConfig
from repro.hw.simulator import HybridSimulator
from repro.quant import INT4, convert, prepare_qat
from repro.reporting import Table
from repro.snn import Trainer, TrainingConfig, build_vgg9
from repro.workload import (
    analytic_sweep_reports,
    balanced_allocation,
    proportional_allocation,
    sweep_budgets,
    uniform_allocation,
    workloads_from_network,
)


def main() -> None:
    data = make_dataset("cifar10", 1000, image_size=16, seed=0)
    train, test = train_test_split(data, 0.2, seed=1)
    net = build_vgg9(10, population=100, input_shape=(3, 16, 16),
                     channel_scale=0.25, seed=0)
    prepare_qat(net, INT4)
    print("training (measures realistic per-layer sparsity)...")
    Trainer(net, TrainingConfig(epochs=5, lr=2e-3, seed=0)).fit(
        train.images, train.labels
    )
    net.eval()
    deployable = convert(net, INT4)

    # Step 1-2: measured input events -> Eq. 3 workloads.
    out = deployable.forward(test.images[:128], 2)
    events = {k: v / 128 for k, v in out.input_spike_totals.items()}
    workloads = workloads_from_network(deployable, events, timesteps=2)
    table = Table(title="Measured workloads (Eq. 3)",
                  columns=["layer", "kind", "events/img", "work"])
    for wl in workloads:
        table.add_row(wl.name, wl.kind, wl.input_events, wl.work)
    print(table.render())

    # Step 3: LW and balanced allocations.
    lw = proportional_allocation(workloads)
    print(f"\nLW allocation (proportional):      {lw.allocation}  "
          f"imbalance {lw.imbalance:.2f}")
    for budget in (24, 48, 96):
        balanced = balanced_allocation(workloads, budget)
        uniform = uniform_allocation(workloads, budget)
        gain = uniform.bottleneck_cycles / balanced.bottleneck_cycles
        print(f"budget {budget:>3}: balanced {balanced.allocation} "
              f"bottleneck {balanced.bottleneck_cycles:,.0f} cyc "
              f"({gain:.2f}x better than uniform)")

    # Step 4: simulate the LW point and print its layer-overhead balance.
    config = AcceleratorConfig(name="lw-derived", allocation=lw.allocation,
                               scheme=INT4)
    report = HybridSimulator(deployable, config).run(test.images[:64], 2)
    overheads = report.energy.layer_overheads()
    print("\nlayer overheads on the derived LW point (balanced target):")
    print("  " + ", ".join(f"{k} {v:.1f}%" for k, v in overheads.items()))
    print("  paper's Table I balance: 0.9, 13.4, 13.6, 13.8, 12.8, 12.3, "
          "12.9, 15.6, 4.8 (%)")

    # Bonus: the budget/latency Pareto curve behind LW -> perf2 -> perf4.
    points = sweep_budgets(workloads, [16, 32, 64, 128, 256])
    curve = Table(title="Budget sweep", columns=["budget", "cores used",
                                                 "bottleneck cycles"])
    for point in points:
        curve.add_row(point.budget, point.total_cores, point.bottleneck_cycles)
    print()
    print(curve.render())

    # Bonus 2: the sparsity axis of the design space -- time the LW
    # point across scaled activity profiles in ONE batched analytic
    # pass (resources/power are estimated once for the whole sweep).
    scales = (0.25, 0.5, 1.0, 1.5, 2.0)
    reports = analytic_sweep_reports(
        HybridSimulator(deployable, config),
        [{k: v * s for k, v in events.items()} for s in scales],
        timesteps=2,
    )
    activity = Table(title="Activity sweep on the LW point (batched)",
                     columns=["activity x", "latency ms", "energy mJ/img"])
    for scale, point_report in zip(scales, reports):
        activity.add_row(scale, point_report.latency_ms,
                         point_report.energy_mj)
    print()
    print(activity.render())


if __name__ == "__main__":
    main()
