"""Input-encoding zoo: direct vs rate vs time-to-first-spike.

Compares the three encoders on identical frames *without any training*:
input event counts, information timing, and the hardware implication
(which cores the first layer needs). TTFS is this reproduction's
extension beyond the paper's direct/rate pair (Sec. VI future work).

Run:  python examples/encoding_zoo.py     (seconds)
"""

import numpy as np

from repro.datasets import make_dataset
from repro.reporting import Table
from repro.snn import make_encoder


def main() -> None:
    data = make_dataset("cifar10", 64, image_size=16, seed=0)
    images = data.images
    timesteps = 8

    table = Table(
        title="Input encodings on identical frames (T=8)",
        columns=[
            "encoder", "analog input?", "input events/img",
            "events std/img", "first layer runs on",
        ],
    )
    for name in ("direct", "rate", "ttfs"):
        encoder = make_encoder(name, seed=3, timesteps=timesteps)
        per_image = np.zeros(len(images))
        analog = encoder.analog_input
        for t in range(timesteps):
            frame = encoder.encode(images, t).data
            if analog:
                # Dense core: every pixel is touched whether or not it is
                # zero; count pixel-timesteps as 'events'.
                per_image += frame[:, 0].size / len(images)
            else:
                per_image += frame.reshape(len(images), -1).sum(axis=1)
        table.add_row(
            name,
            "yes" if analog else "no",
            float(per_image.mean()),
            float(per_image.std()),
            "dense core" if analog else "sparse cores",
        )
    print(table.render())
    print(
        "\ndirect coding floods the input layer (hence the paper's dense "
        "core); rate coding trades timesteps for binary sparsity; TTFS "
        "emits exactly one spike per pixel -- the sparsest code, but it "
        "needs enough timesteps to resolve intensity."
    )


if __name__ == "__main__":
    main()
