"""The sparsity-quantization interplay (a scripted mini Fig. 1).

Trains the same VGG9-style network twice -- full precision and int4 QAT --
on two synthetic datasets and reports accuracy and total spike counts,
reproducing the paper's central observation that quantization *increases*
sparsity at near-equal accuracy.

Run:  python examples/sparsity_quantization_study.py    (~5 minutes)
"""

from repro.datasets import make_dataset, train_test_split
from repro.quant import FP32, INT4, convert, prepare_qat
from repro.reporting import Table
from repro.snn import Trainer, TrainingConfig, build_vgg9


def train_arm(dataset, scheme, seed=0):
    """Train one (dataset, precision) arm and return (accuracy, spikes)."""
    train, test = dataset
    classes = train.num_classes
    net = build_vgg9(
        num_classes=classes,
        population=classes * 10,
        input_shape=(3, 16, 16),
        channel_scale=0.25,
        seed=seed,
    )
    if not scheme.is_float:
        prepare_qat(net, scheme)
    config = TrainingConfig(epochs=8, batch_size=32, lr=2e-3, timesteps=2, seed=seed)
    Trainer(net, config).fit(train.images, train.labels)
    net.eval()
    deployable = convert(net, scheme)
    out = deployable.forward(test.images, 2)
    accuracy = (out.logits.argmax(axis=1) == test.labels).mean()
    return accuracy, out.stats.spikes_per_image()


def main() -> None:
    table = Table(
        title="Quantization effect on spikes (mini Fig. 1)",
        columns=[
            "dataset", "fp32 acc %", "int4 acc %",
            "fp32 spikes", "int4 spikes", "spike reduction %",
        ],
    )
    for name in ("svhn", "cifar10"):
        data = make_dataset(name, 1200, image_size=16, seed=0)
        split = train_test_split(data, 0.2, seed=1)
        fp32_acc, fp32_spikes = train_arm(split, FP32)
        int4_acc, int4_spikes = train_arm(split, INT4)
        reduction = 100.0 * (fp32_spikes - int4_spikes) / fp32_spikes
        table.add_row(
            name, 100 * fp32_acc, 100 * int4_acc,
            fp32_spikes, int4_spikes, reduction,
        )
        print(f"done: {name}")
    print()
    print(table.render())
    print(
        "\npaper (full scale): SVHN -6.1%, CIFAR10 -10.1%, CIFAR100 -15.2% "
        "spikes at <=3.1pp accuracy cost"
    )


if __name__ == "__main__":
    main()
