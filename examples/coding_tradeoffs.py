"""Direct vs rate coding on the hybrid accelerator (a mini Table II).

Trains a direct-coded network (T=2, hybrid dense+sparse hardware) and a
rate-coded network (T=10, sparse cores only -- dense core gated off, the
paper's Table II methodology) and compares accuracy, spikes, latency and
energy on the simulated hardware.

Run:  python examples/coding_tradeoffs.py    (~4 minutes)
"""

from repro.baselines import rate_coded_config
from repro.datasets import make_dataset, train_test_split
from repro.hw.config import AcceleratorConfig
from repro.hw.simulator import HybridSimulator
from repro.quant import INT4, convert, prepare_qat
from repro.reporting import Table
from repro.snn import Trainer, TrainingConfig, build_network, make_encoder

ARCH = "16C3-MP2-32C3-MP2-64C3-MP2-100"
ALLOCATION = (1, 4, 8, 2)


def train_model(split, coding, timesteps, epochs):
    train, _test = split
    net = build_network(ARCH, (3, 16, 16), num_classes=10, seed=0)
    prepare_qat(net, INT4)
    config = TrainingConfig(
        epochs=epochs, batch_size=32, lr=2e-3,
        timesteps=timesteps, encoder=coding, seed=0,
    )
    Trainer(net, config).fit(train.images, train.labels)
    net.eval()
    return convert(net, INT4)


def main() -> None:
    data = make_dataset("cifar10", 1200, image_size=16, seed=0)
    split = train_test_split(data, 0.2, seed=1)
    _, test = split
    images, labels = test.images[:96], test.labels[:96]

    print("training direct-coded arm (T=2)...")
    direct = train_model(split, "direct", timesteps=2, epochs=6)
    print("training rate-coded arm (T=10)...")
    rate = train_model(split, "rate", timesteps=10, epochs=3)

    base = AcceleratorConfig(name="lw", allocation=ALLOCATION, scheme=INT4)
    direct_report = HybridSimulator(direct, base).run(
        images, 2, make_encoder("direct"), labels
    )
    rate_report = HybridSimulator(rate, rate_coded_config(base)).run(
        images, 10, make_encoder("rate", seed=7), labels
    )

    table = Table(
        title="Direct vs rate coding (mini Table II)",
        columns=["coding", "T", "spikes/img", "acc %", "latency ms", "energy mJ"],
    )
    for name, report, steps in (
        ("rate", rate_report, 10),
        ("direct", direct_report, 2),
    ):
        table.add_row(
            name, steps,
            report.total_spikes_per_image,
            100.0 * (report.accuracy or 0.0),
            report.latency_ms,
            report.energy_mj,
        )
    improvement = rate_report.energy_mj / direct_report.energy_mj
    print()
    print(table.render())
    print(f"\nenergy improvement direct vs rate: {improvement:.1f}x "
          "(paper: 26.4x at T=25 vs T=2, full scale)")


if __name__ == "__main__":
    main()
