"""Quickstart: the complete paper workflow in one script.

Train a small direct-coded SNN with quantization-aware training, deploy
it to integer weights, and simulate it on the hybrid dense/sparse
accelerator -- printing accuracy, spikes, latency, throughput and energy.

Run:  python examples/quickstart.py          (~1 minute, CPU only)
"""

from repro.datasets import make_dataset, train_test_split
from repro.hw.config import AcceleratorConfig
from repro.hw.simulator import HybridSimulator
from repro.quant import INT4, convert, prepare_qat
from repro.snn import Trainer, TrainingConfig, build_network


def main() -> None:
    # 1. Data: a deterministic synthetic stand-in for CIFAR-10
    #    (3x16x16 frames in [0, 1]; see repro.datasets for the tiers).
    data = make_dataset("cifar10", num_samples=1000, image_size=16, seed=0)
    train, test = train_test_split(data, test_fraction=0.2, seed=1)
    print(f"dataset: {len(train)} train / {len(test)} test frames")

    # 2. Network: a reduced VGG-style direct-coded SNN. The first conv
    #    layer consumes the analog frame (the dense-core layer); the rest
    #    are event-driven. LIF defaults are the paper's beta=0.15,
    #    theta=0.5.
    net = build_network(
        "16C3-MP2-32C3-MP2-64C3-MP2-100",
        input_shape=(3, 16, 16),
        num_classes=10,
        seed=0,
    )
    print(net.describe())

    # 3. Quantization-aware training at int4 (the paper's deployment
    #    precision): fake-quant wrappers inject quantization noise so the
    #    network adapts during training.
    prepare_qat(net, INT4)
    config = TrainingConfig(epochs=6, batch_size=32, lr=2e-3, timesteps=2, verbose=True)
    Trainer(net, config).fit(train.images, train.labels, test.images, test.labels)

    # 4. Deployment: fold batch norm, quantize weights/biases to int4
    #    with per-channel scales -- the exact functional model the
    #    accelerator executes.
    net.eval()
    deployable = convert(net, INT4)
    print(deployable.describe())

    # 5. Hardware simulation: allocate 1 dense-core row and a few neural
    #    cores per sparse layer, then replay the test set through the
    #    cycle-accurate models.
    hw = AcceleratorConfig(
        name="demo", allocation=(1, 4, 8, 2), scheme=INT4
    )
    simulator = HybridSimulator(deployable, hw)
    report = simulator.run(test.images[:64], timesteps=2, labels=test.labels[:64])
    print()
    print(report.summary())


if __name__ == "__main__":
    main()
