"""SpikingNetwork construction, execution and recording tests."""

import numpy as np
import pytest

from repro.errors import ArchitectureError, ShapeError
from repro.snn import build_network, build_vgg9
from repro.snn.encoding import DirectEncoder, RateEncoder
from repro.tensor import no_grad

ARCH = "8C3-MP2-16C3-MP2-40"


@pytest.fixture
def net():
    return build_network(ARCH, (3, 8, 8), num_classes=10, seed=3)


@pytest.fixture
def images(rng):
    return rng.random((4, 3, 8, 8)).astype(np.float32)


class TestConstruction:
    def test_stage_shapes(self, net):
        shapes = [s.output_shape for s in net.compute_stages()]
        assert shapes == [(8, 8, 8), (16, 4, 4), (40,)]

    def test_population_grouping(self, net):
        assert net.population_size == 40
        assert net.population_group == 4

    def test_rejects_indivisible_population(self):
        with pytest.raises(ArchitectureError, match="divisible"):
            build_network("8C3-33", (3, 8, 8), num_classes=10)

    def test_rejects_conv_after_fc(self):
        with pytest.raises(ArchitectureError):
            build_network("10-8C3", (3, 8, 8), num_classes=2)

    def test_rejects_pool_mismatch(self):
        with pytest.raises(ArchitectureError):
            build_network("8C3-MP3-10", (3, 8, 8), num_classes=2)

    def test_vgg9_builder(self):
        net = build_vgg9(10, population=100, input_shape=(3, 16, 16), channel_scale=0.125)
        names = [s.name for s in net.compute_stages()]
        assert names == [
            "conv1_1", "conv1_2", "conv2_1", "conv2_2",
            "conv3_1", "conv3_2", "conv3_3", "fc1", "fc2",
        ]

    def test_describe_contains_layers(self, net):
        text = net.describe()
        assert "conv1_1" in text and "fc1" in text


class TestForward:
    def test_logit_shape(self, net, images):
        out = net.forward(images, timesteps=2)
        assert out.logits.shape == (4, 10)

    def test_rejects_bad_timesteps(self, net, images):
        with pytest.raises(ShapeError):
            net.forward(images, timesteps=0)

    def test_rejects_bad_shape(self, net, rng):
        with pytest.raises(ShapeError):
            net.forward(rng.random((4, 3, 9, 9)).astype(np.float32), 2)

    def test_spike_stats_populated(self, net, images):
        out = net.forward(images, timesteps=2)
        assert set(out.stats.per_layer) == {"conv1_1", "conv2_1", "fc1"}
        assert out.stats.samples == 4
        assert out.stats.timesteps == 2

    def test_more_timesteps_more_spikes(self, net, images):
        with no_grad():
            short = net.forward(images, timesteps=1)
            long = net.forward(images, timesteps=4)
        assert long.stats.total_spikes > short.stats.total_spikes

    def test_deterministic_under_direct_coding(self, net, images):
        with no_grad():
            a = net.forward(images, 2).logits.data
            b = net.forward(images, 2).logits.data
        np.testing.assert_array_equal(a, b)

    def test_recording_trains(self, net, images):
        out = net.forward(images, 2, record=True)
        assert set(out.spike_trains) == {"conv1_1", "conv2_1", "fc1"}
        assert len(out.spike_trains["conv2_1"]) == 2  # one per timestep
        # conv2_1's input is post-pool: 8 channels at 4x4.
        assert out.spike_trains["conv2_1"][0].shape == (4, 8, 4, 4)

    def test_recorded_sparse_inputs_are_binary(self, net, images):
        out = net.forward(images, 2, record=True)
        values = np.unique(out.spike_trains["conv2_1"][0])
        assert set(values).issubset({0.0, 1.0})

    def test_input_totals_match_trains(self, net, images):
        out = net.forward(images, 2, record=True)
        for name, trains in out.spike_trains.items():
            total = sum(float(t.sum()) for t in trains)
            assert out.input_spike_totals[name] == pytest.approx(total)

    def test_output_spike_counts_shape(self, net, images):
        out = net.forward(images, 2)
        assert out.output_spike_counts.shape == (4, 40)

    def test_logits_are_group_sums(self, net, images):
        out = net.forward(images, 2)
        counts = out.output_spike_counts.reshape(4, 10, 4).sum(axis=2)
        np.testing.assert_allclose(out.logits.data, counts, rtol=1e-5)


class TestEncoders:
    def test_rate_encoding_changes_inputs(self, net, images):
        with no_grad():
            out1 = net.forward(images, 4, RateEncoder(seed=1), record=True)
            out2 = net.forward(images, 4, RateEncoder(seed=2), record=True)
        t1 = out1.spike_trains["conv1_1"][0]
        t2 = out2.spike_trains["conv1_1"][0]
        assert not np.array_equal(t1, t2)

    def test_rate_input_is_binary(self, net, images):
        out = net.forward(images, 2, RateEncoder(seed=0), record=True)
        values = np.unique(out.spike_trains["conv1_1"][0])
        assert set(values).issubset({0.0, 1.0})

    def test_direct_input_is_analog(self, net, images):
        out = net.forward(images, 2, DirectEncoder(), record=True)
        train = out.spike_trains["conv1_1"][0]
        np.testing.assert_array_equal(train, images)


class TestStateDict:
    def test_roundtrip_preserves_outputs(self, net, images):
        clone = build_network(ARCH, (3, 8, 8), num_classes=10, seed=99)
        clone.load_state_dict(net.state_dict())
        net.eval()
        clone.eval()
        with no_grad():
            a = net.forward(images, 2).logits.data
            b = clone.forward(images, 2).logits.data
        np.testing.assert_allclose(a, b, atol=1e-6)

    def test_parameters_count(self, net):
        # conv(w+b) + bn(gamma+beta) per conv, fc(w+b): 2*2+2*2... explicit:
        # conv1_1: 2 + 2(bn), conv2_1: 2 + 2(bn), fc1: 2 -> 10 tensors.
        assert len(net.parameters()) == 10

    def test_train_eval_propagates(self, net):
        net.eval()
        assert all(
            not stage.bn.training
            for stage in net.compute_stages()
            if stage.bn is not None
        )


class TestPredict:
    def test_prediction_shape_and_range(self, net, images):
        preds = net.predict(images, 2, batch_size=2)
        assert preds.shape == (4,)
        assert preds.min() >= 0 and preds.max() < 10

    def test_restores_training_mode(self, net, images):
        net.train(True)
        net.predict(images, 2)
        assert net.training
