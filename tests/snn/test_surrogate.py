"""Surrogate gradient function tests."""

import numpy as np
import pytest

from repro.snn.surrogate import (
    ATanSurrogate,
    BoxcarSurrogate,
    FastSigmoidSurrogate,
    make_surrogate,
)


class TestFastSigmoid:
    def test_peak_at_zero(self):
        s = FastSigmoidSurrogate(slope=25.0)
        v = np.linspace(-1, 1, 101)
        out = s(v)
        assert out.argmax() == 50  # centre

    def test_value_at_zero_is_one(self):
        assert FastSigmoidSurrogate(25.0)(np.zeros(1))[0] == pytest.approx(1.0)

    def test_symmetric(self):
        s = FastSigmoidSurrogate(10.0)
        v = np.array([0.3, -0.3])
        out = s(v)
        assert out[0] == pytest.approx(out[1])

    def test_steeper_slope_narrower(self):
        v = np.array([0.5])
        assert FastSigmoidSurrogate(50.0)(v)[0] < FastSigmoidSurrogate(5.0)(v)[0]

    def test_rejects_bad_slope(self):
        with pytest.raises(ValueError):
            FastSigmoidSurrogate(slope=0.0)


class TestATan:
    def test_peak_at_zero(self):
        s = ATanSurrogate(alpha=2.0)
        assert s(np.zeros(1))[0] == pytest.approx(1.0)

    def test_positive_everywhere(self):
        s = ATanSurrogate()
        v = np.linspace(-5, 5, 50)
        assert np.all(s(v) > 0)

    def test_decays_in_tails(self):
        s = ATanSurrogate()
        assert s(np.array([3.0]))[0] < s(np.array([0.5]))[0]

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            ATanSurrogate(alpha=-1.0)


class TestBoxcar:
    def test_inside_window(self):
        s = BoxcarSurrogate(width=0.5)
        assert s(np.array([0.2]))[0] == pytest.approx(1.0)

    def test_outside_window_zero(self):
        s = BoxcarSurrogate(width=0.5)
        assert s(np.array([0.7]))[0] == 0.0

    def test_integrates_to_one(self):
        s = BoxcarSurrogate(width=0.4)
        v = np.linspace(-1, 1, 20001)
        integral = np.trapezoid(s(v), v)
        assert integral == pytest.approx(1.0, rel=1e-2)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            BoxcarSurrogate(width=0.0)


class TestRegistry:
    def test_make_by_name(self):
        assert isinstance(make_surrogate("fast_sigmoid"), FastSigmoidSurrogate)
        assert isinstance(make_surrogate("atan"), ATanSurrogate)
        assert isinstance(make_surrogate("boxcar"), BoxcarSurrogate)

    def test_kwargs_forwarded(self):
        s = make_surrogate("fast_sigmoid", slope=7.0)
        assert s.slope == 7.0

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown surrogate"):
            make_surrogate("relu")
