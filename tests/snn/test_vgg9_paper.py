"""Paper-fidelity checks of the full-scale VGG9 (structure only -- no
training; these assert the network we map to hardware *is* the paper's)."""

import numpy as np
import pytest

from repro.snn import build_vgg9
from repro.snn.neuron import PAPER_BETA, PAPER_THETA


@pytest.fixture(scope="module")
def vgg9():
    return build_vgg9(
        num_classes=100, population=5000, input_shape=(3, 32, 32), seed=0
    )


class TestPaperStructure:
    def test_nine_compute_layers(self, vgg9):
        assert len(vgg9.compute_stages()) == 9

    def test_channel_progression(self, vgg9):
        convs = [
            s.output_shape[0]
            for s in vgg9.compute_stages()
            if s.spec.kind == "conv"
        ]
        assert convs == [64, 112, 192, 216, 480, 504, 560]

    def test_spatial_progression(self, vgg9):
        # 32 -> (block1) 32 -> pool 16 -> (block2) 16 -> pool 8 ->
        # (block3) 8 -> pool 4.
        shapes = {
            s.name: s.output_shape for s in vgg9.compute_stages()
        }
        assert shapes["conv1_2"][1:] == (32, 32)
        assert shapes["conv2_2"][1:] == (16, 16)
        assert shapes["conv3_3"][1:] == (8, 8)

    def test_fc_sizes(self, vgg9):
        shapes = {s.name: s for s in vgg9.compute_stages()}
        assert shapes["fc1"].input_shape == (560 * 4 * 4,)
        assert shapes["fc1"].output_shape == (1064,)
        assert shapes["fc2"].output_shape == (5000,)

    def test_population_grouping_cifar100(self, vgg9):
        assert vgg9.population_group == 50  # 5000 / 100 classes

    def test_paper_lif_defaults(self, vgg9):
        assert vgg9.lif_config.beta == PAPER_BETA
        assert vgg9.lif_config.threshold == PAPER_THETA

    def test_parameter_count_matches_architecture(self, vgg9):
        expected_weights = (
            3 * 64 * 9 + 64 * 112 * 9 + 112 * 192 * 9 + 192 * 216 * 9
            + 216 * 480 * 9 + 480 * 504 * 9 + 504 * 560 * 9
            + 8960 * 1064 + 1064 * 5000
        )
        weights = sum(
            s.layer.weight.size for s in vgg9.compute_stages()
        )
        assert weights == expected_weights

    def test_dense_core_pe_match(self, vgg9):
        """The input layer's 3 channels x 3x3 taps == the paper's fixed
        27-PE dense-core column."""
        first = vgg9.compute_stages()[0]
        cin = first.input_shape[0]
        taps = cin * first.spec.kernel * first.spec.kernel
        assert taps == 27

    def test_svhn_cifar10_population(self):
        net = build_vgg9(num_classes=10, population=1000,
                         input_shape=(3, 32, 32), seed=0)
        assert net.population_group == 100
