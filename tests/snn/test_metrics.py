"""SpikeStats and accuracy metric tests."""

import numpy as np
import pytest

from repro.snn.metrics import SpikeStats, accuracy


class TestSpikeStats:
    def test_record_accumulates(self):
        stats = SpikeStats(samples=2, timesteps=2)
        stats.record("conv1", 0, np.ones((2, 4)))
        stats.record("conv1", 1, np.ones((2, 4)))
        assert stats.per_layer["conv1"] == 16.0
        assert stats.per_layer_timestep["conv1"] == [8.0, 8.0]

    def test_total_and_per_image(self):
        stats = SpikeStats(samples=4, timesteps=1)
        stats.record("a", 0, np.ones((4, 3)))
        stats.record("b", 0, np.ones((4, 2)))
        assert stats.total_spikes == 20.0
        assert stats.spikes_per_image() == 5.0

    def test_spikes_per_image_empty(self):
        assert SpikeStats().spikes_per_image() == 0.0

    def test_sparsity(self):
        stats = SpikeStats(samples=1, timesteps=1)
        spikes = np.zeros((1, 10))
        spikes[0, :3] = 1.0
        stats.record("layer", 0, spikes)
        assert stats.sparsity("layer") == pytest.approx(0.7)

    def test_sparsity_unknown_layer(self):
        assert SpikeStats().sparsity("nope") == 0.0

    def test_merge(self):
        a = SpikeStats(samples=1, timesteps=1)
        a.record("x", 0, np.ones((1, 2)))
        b = SpikeStats(samples=1, timesteps=1)
        b.record("x", 0, np.ones((1, 2)))
        b.record("y", 0, np.ones((1, 3)))
        a.merge(b)
        assert a.per_layer["x"] == 4.0
        assert a.per_layer["y"] == 3.0
        assert a.samples == 2

    def test_merge_extends_timestep_series(self):
        a = SpikeStats(samples=1, timesteps=1)
        a.record("x", 0, np.ones((1, 1)))
        b = SpikeStats(samples=1, timesteps=3)
        for t in range(3):
            b.record("x", t, np.ones((1, 1)))
        a.merge(b)
        assert a.per_layer_timestep["x"] == [2.0, 1.0, 1.0]
        assert a.timesteps == 3

    def test_summary_mentions_layers(self):
        stats = SpikeStats(samples=1, timesteps=1)
        stats.record("conv1", 0, np.ones((1, 4)))
        assert "conv1" in stats.summary()


class TestAccuracy:
    def test_perfect(self):
        logits = np.eye(3)
        assert accuracy(logits, np.array([0, 1, 2])) == 1.0

    def test_none_correct(self):
        logits = np.eye(3)
        assert accuracy(logits, np.array([1, 2, 0])) == 0.0

    def test_partial(self):
        logits = np.array([[1, 0], [1, 0], [0, 1], [0, 1]])
        assert accuracy(logits, np.array([0, 1, 1, 0])) == 0.5

    def test_empty(self):
        assert accuracy(np.zeros((0, 3)), np.zeros(0)) == 0.0
