"""Input-encoder tests (direct vs rate coding semantics)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.snn.encoding import DirectEncoder, RateEncoder, make_encoder


class TestDirectEncoder:
    def test_identity_every_timestep(self, rng):
        encoder = DirectEncoder()
        images = rng.random((2, 3, 4, 4)).astype(np.float32)
        for t in range(3):
            np.testing.assert_array_equal(encoder.encode(images, t).data, images)

    def test_is_analog(self):
        assert DirectEncoder().analog_input

    def test_name(self):
        assert DirectEncoder().name == "direct"


class TestRateEncoder:
    def test_binary_output(self, rng):
        encoder = RateEncoder(seed=0)
        images = rng.random((2, 3, 4, 4)).astype(np.float32)
        out = encoder.encode(images, 0).data
        assert set(np.unique(out)).issubset({0.0, 1.0})

    def test_rate_tracks_intensity(self):
        encoder = RateEncoder(seed=0)
        images = np.full((1, 1, 50, 50), 0.7, dtype=np.float32)
        total = sum(encoder.encode(images, t).data.mean() for t in range(40))
        assert total / 40 == pytest.approx(0.7, abs=0.05)

    def test_zero_intensity_never_spikes(self):
        encoder = RateEncoder(seed=0)
        images = np.zeros((1, 1, 10, 10), dtype=np.float32)
        assert encoder.encode(images, 0).data.sum() == 0.0

    def test_full_intensity_always_spikes(self):
        encoder = RateEncoder(seed=0)
        images = np.ones((1, 1, 10, 10), dtype=np.float32)
        assert encoder.encode(images, 0).data.sum() == 100.0

    def test_gain_scales_rate(self):
        images = np.ones((1, 1, 40, 40), dtype=np.float32)
        low = RateEncoder(gain=0.25, seed=0)
        total = np.mean([low.encode(images, t).data.mean() for t in range(20)])
        assert total == pytest.approx(0.25, abs=0.06)

    def test_not_analog(self):
        assert not RateEncoder(seed=0).analog_input

    def test_intensities_above_one_clipped(self):
        encoder = RateEncoder(seed=0)
        images = np.full((1, 1, 4, 4), 3.0, dtype=np.float32)
        out = encoder.encode(images, 0).data
        assert out.max() <= 1.0

    def test_rejects_bad_gain(self):
        with pytest.raises(ConfigError):
            RateEncoder(gain=0.0)
        with pytest.raises(ConfigError):
            RateEncoder(gain=1.5)

    def test_seeded_reproducibility(self, rng):
        images = rng.random((2, 3, 4, 4)).astype(np.float32)
        a = RateEncoder(seed=5).encode(images, 0).data
        b = RateEncoder(seed=5).encode(images, 0).data
        np.testing.assert_array_equal(a, b)

    def test_is_deterministic_counter_stream(self):
        """Counter streams are pure functions of (seed, sample, t):
        the encoder declares itself shardable."""
        assert RateEncoder(seed=0).deterministic

    def test_batch_split_invariant(self, rng):
        images = rng.random((6, 3, 4, 4)).astype(np.float32)
        encoder = RateEncoder(seed=8)
        whole = encoder.encode(images, 2).data
        head = encoder.for_samples(0).encode(images[:2], 2).data
        tail = encoder.for_samples(2).encode(images[2:], 2).data
        np.testing.assert_array_equal(
            np.concatenate([head, tail], axis=0), whole
        )

    def test_draw_history_does_not_leak(self, rng):
        """Unlike the old sequential stream, earlier encodes cannot
        shift later ones -- each (sample, t) block is re-keyed."""
        images = rng.random((2, 3, 4, 4)).astype(np.float32)
        fresh = RateEncoder(seed=5).encode(images, 3).data
        used = RateEncoder(seed=5)
        for t in range(3):
            used.encode(images, t)
        np.testing.assert_array_equal(used.encode(images, 3).data, fresh)

    def test_timesteps_draw_distinct_blocks(self):
        images = np.full((1, 1, 16, 16), 0.5, dtype=np.float32)
        encoder = RateEncoder(seed=5)
        a = encoder.encode(images, 0).data
        b = encoder.encode(images, 1).data
        assert not np.array_equal(a, b)

    def test_generator_seed_canonicalised_once(self, rng):
        """A Generator seed contributes one draw at construction; the
        resulting encoder is then purely counter-based."""
        gen = np.random.default_rng(13)
        encoder = RateEncoder(seed=gen)
        images = rng.random((2, 3, 4, 4)).astype(np.float32)
        a = encoder.encode(images, 0).data
        clone = RateEncoder(seed=encoder.seed)
        np.testing.assert_array_equal(clone.encode(images, 0).data, a)

    def test_rejects_negative_offset(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            RateEncoder(seed=0, sample_offset=-1)

    def test_unseeded_encoders_stay_entropic(self, rng):
        """seed=None keeps its historical meaning: fresh OS entropy per
        encoder (drawn once at construction), so two unseeded encoders
        are uncorrelated -- only explicit seeds pin the stream."""
        images = rng.random((4, 3, 8, 8)).astype(np.float32)
        a = RateEncoder()
        b = RateEncoder()
        assert a.seed != b.seed
        assert not np.array_equal(
            a.encode(images, 0).data, b.encode(images, 0).data
        )
        # ...but each is internally reproducible once constructed.
        np.testing.assert_array_equal(
            a.encode(images, 0).data,
            RateEncoder(seed=a.seed).encode(images, 0).data,
        )


class TestTtfsEncoder:
    def _collect(self, images, timesteps):
        from repro.snn.encoding import TtfsEncoder

        encoder = TtfsEncoder(timesteps)
        return np.stack(
            [encoder.encode(images, t).data for t in range(timesteps)]
        )

    def test_exactly_one_spike_per_pixel(self, rng):
        images = rng.random((2, 3, 4, 4)).astype(np.float32)
        trains = self._collect(images, 8)
        np.testing.assert_array_equal(
            trains.sum(axis=0), np.ones_like(images)
        )

    def test_bright_fires_before_dark(self):
        images = np.array([[[[0.9, 0.1]]]], dtype=np.float32)
        trains = self._collect(images, 10)
        bright_t = trains[:, 0, 0, 0, 0].argmax()
        dark_t = trains[:, 0, 0, 0, 1].argmax()
        assert bright_t < dark_t

    def test_binary_output(self, rng):
        images = rng.random((1, 1, 5, 5)).astype(np.float32)
        trains = self._collect(images, 4)
        assert set(np.unique(trains)).issubset({0.0, 1.0})

    def test_deterministic(self, rng):
        from repro.snn.encoding import TtfsEncoder

        images = rng.random((1, 1, 3, 3)).astype(np.float32)
        a = TtfsEncoder(6).encode(images, 2).data
        b = TtfsEncoder(6).encode(images, 2).data
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_timesteps(self):
        from repro.snn.encoding import TtfsEncoder

        with pytest.raises(ConfigError):
            TtfsEncoder(0)

    def test_sparser_than_rate(self, rng):
        """One spike per pixel total vs one expected spike per timestep
        at full intensity -- TTFS is the sparsest binary code."""
        images = np.full((1, 1, 10, 10), 0.9, dtype=np.float32)
        ttfs_total = self._collect(images, 8).sum()
        rate = RateEncoder(seed=0)
        rate_total = sum(
            rate.encode(images, t).data.sum() for t in range(8)
        )
        assert ttfs_total < rate_total


class TestStreamSignatures:
    def test_direct_signature(self):
        assert DirectEncoder().stream_signature() == "direct"

    def test_rate_signature_carries_seed_and_gain(self):
        sig = RateEncoder(seed=5, gain=0.5).stream_signature()
        assert sig != RateEncoder(seed=6, gain=0.5).stream_signature()
        assert sig != RateEncoder(seed=5, gain=0.25).stream_signature()
        assert sig == RateEncoder(seed=5, gain=0.5).stream_signature()

    def test_ttfs_signature_carries_timesteps(self):
        from repro.snn.encoding import TtfsEncoder

        assert (
            TtfsEncoder(4).stream_signature()
            != TtfsEncoder(8).stream_signature()
        )

    def test_base_for_samples_is_identity(self):
        encoder = DirectEncoder()
        assert encoder.for_samples(100) is encoder


class TestFactory:
    def test_make_direct(self):
        assert isinstance(make_encoder("direct"), DirectEncoder)

    def test_make_rate(self):
        assert isinstance(make_encoder("rate", seed=0), RateEncoder)

    def test_make_ttfs(self):
        from repro.snn.encoding import TtfsEncoder

        encoder = make_encoder("ttfs", timesteps=12)
        assert isinstance(encoder, TtfsEncoder)
        assert encoder.timesteps == 12

    def test_unknown(self):
        with pytest.raises(ConfigError):
            make_encoder("temporal")
