"""Architecture-string parser tests."""

import pytest

from repro.errors import ArchitectureError
from repro.snn.arch import (
    VGG9_ARCH,
    compute_layer_names,
    describe,
    parse_architecture,
)


class TestParsing:
    def test_paper_vgg9_layer_count(self):
        specs = parse_architecture(VGG9_ARCH, population=1000)
        compute = [s for s in specs if s.is_compute]
        # 7 convs + FC(1064) + FC(population) = 9 compute layers.
        assert len(compute) == 9
        pools = [s for s in specs if s.kind == "pool"]
        assert len(pools) == 3

    def test_paper_vgg9_channels(self):
        specs = parse_architecture(VGG9_ARCH, population=1000)
        convs = [s.units for s in specs if s.kind == "conv"]
        assert convs == [64, 112, 192, 216, 480, 504, 560]

    def test_names_follow_paper_convention(self):
        specs = parse_architecture(VGG9_ARCH, population=1000)
        names = compute_layer_names(specs)
        assert names == [
            "conv1_1", "conv1_2", "conv2_1", "conv2_2",
            "conv3_1", "conv3_2", "conv3_3", "fc1", "fc2",
        ]

    def test_population_units(self):
        specs = parse_architecture(VGG9_ARCH, population=5000)
        assert specs[-1].kind == "population"
        assert specs[-1].units == 5000

    def test_conv_kernel_parsed(self):
        specs = parse_architecture("32C5-10", population=None)
        assert specs[0].kernel == 5

    def test_pool_window_parsed(self):
        specs = parse_architecture("8C3-MP4-10")
        assert specs[1].kernel == 4

    def test_fc_only_network(self):
        specs = parse_architecture("100-50-10")
        assert [s.kind for s in specs] == ["fc", "fc", "fc"]
        assert compute_layer_names(specs) == ["fc1", "fc2", "fc3"]


class TestScaling:
    def test_channel_scale_quarters(self):
        specs = parse_architecture(VGG9_ARCH, population=1000, channel_scale=0.25)
        convs = [s.units for s in specs if s.kind == "conv"]
        assert convs == [16, 28, 48, 54, 120, 126, 140]

    def test_scale_floor_of_four(self):
        specs = parse_architecture("8C3-10", channel_scale=0.01)
        assert specs[0].units == 4

    def test_population_not_scaled(self):
        specs = parse_architecture(VGG9_ARCH, population=1000, channel_scale=0.25)
        assert specs[-1].units == 1000

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ArchitectureError):
            parse_architecture("8C3-10", channel_scale=0.0)


class TestErrors:
    def test_empty_string(self):
        with pytest.raises(ArchitectureError):
            parse_architecture("")

    def test_unknown_token(self):
        with pytest.raises(ArchitectureError, match="unrecognised"):
            parse_architecture("64Q3-10")

    def test_population_without_size(self):
        with pytest.raises(ArchitectureError, match="population"):
            parse_architecture("64C3-P")

    def test_pool_only_network(self):
        with pytest.raises(ArchitectureError, match="no compute layers"):
            parse_architecture("MP2-MP2")


class TestDescribe:
    def test_roundtrip(self):
        arch = "64C3-MP2-128C3-100"
        specs = parse_architecture(arch)
        assert describe(specs) == arch

    def test_population_rendering(self):
        specs = parse_architecture("8C3-P", population=40)
        assert describe(specs) == "8C3-P40"
