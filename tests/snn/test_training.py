"""Trainer tests: learning on separable data, config validation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.snn import Trainer, TrainingConfig, build_network


class TestTrainingConfig:
    def test_defaults(self):
        config = TrainingConfig()
        assert config.timesteps == 2
        assert config.encoder == "direct"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"batch_size": 0},
            {"timesteps": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            TrainingConfig(**kwargs)


class TestTrainer:
    def test_loss_decreases(self, tiny_dataset):
        train, _ = tiny_dataset
        net = build_network("8C3-MP2-20", (3, 8, 8), num_classes=10, seed=0)
        config = TrainingConfig(epochs=4, batch_size=32, lr=3e-3, seed=0)
        result = Trainer(net, config).fit(train.images, train.labels)
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_learns_above_chance(self, tiny_dataset):
        train, test = tiny_dataset
        net = build_network("8C3-MP2-16C3-MP2-40", (3, 8, 8), num_classes=10, seed=0)
        config = TrainingConfig(epochs=8, batch_size=32, lr=4e-3, seed=0)
        result = Trainer(net, config).fit(
            train.images, train.labels, test.images, test.labels
        )
        best = max(result.epoch_test_accuracy)
        assert best > 0.14  # chance = 0.10; tiny 8x8 data is noisy

    def test_history_lengths(self, tiny_dataset):
        train, test = tiny_dataset
        net = build_network("8C3-10", (3, 8, 8), num_classes=10, seed=0)
        config = TrainingConfig(epochs=3, seed=0)
        result = Trainer(net, config).fit(
            train.images[:64], train.labels[:64], test.images[:32], test.labels[:32]
        )
        assert len(result.epoch_losses) == 3
        assert len(result.epoch_test_accuracy) == 3
        assert result.wall_seconds > 0

    def test_no_test_set(self, tiny_dataset):
        train, _ = tiny_dataset
        net = build_network("8C3-10", (3, 8, 8), num_classes=10, seed=0)
        result = Trainer(net, TrainingConfig(epochs=1, seed=0)).fit(
            train.images[:64], train.labels[:64]
        )
        assert result.epoch_test_accuracy == []
        assert result.final_test_accuracy == 0.0

    def test_grad_clip_path(self, tiny_dataset):
        train, _ = tiny_dataset
        net = build_network("8C3-10", (3, 8, 8), num_classes=10, seed=0)
        config = TrainingConfig(epochs=1, grad_clip=0.01, seed=0)
        result = Trainer(net, config).fit(train.images[:64], train.labels[:64])
        assert np.isfinite(result.final_loss)

    def test_deterministic_given_seed(self, tiny_dataset):
        train, _ = tiny_dataset
        losses = []
        for _ in range(2):
            net = build_network("8C3-10", (3, 8, 8), num_classes=10, seed=0)
            result = Trainer(net, TrainingConfig(epochs=1, seed=5)).fit(
                train.images[:64], train.labels[:64]
            )
            losses.append(result.final_loss)
        assert losses[0] == pytest.approx(losses[1], rel=1e-5)

    def test_rate_encoder_training_runs(self, tiny_dataset):
        train, _ = tiny_dataset
        net = build_network("8C3-10", (3, 8, 8), num_classes=10, seed=0)
        config = TrainingConfig(epochs=1, encoder="rate", timesteps=4, seed=0)
        result = Trainer(net, config).fit(train.images[:64], train.labels[:64])
        assert np.isfinite(result.final_loss)

    def test_evaluate_method(self, tiny_dataset):
        train, test = tiny_dataset
        net = build_network("8C3-10", (3, 8, 8), num_classes=10, seed=0)
        trainer = Trainer(net, TrainingConfig(epochs=1, seed=0))
        trainer.fit(train.images[:64], train.labels[:64])
        acc = trainer.evaluate(test.images[:32], test.labels[:32])
        assert 0.0 <= acc <= 1.0
