"""LIF neuron dynamics tests (Eq. 1-2 of the paper)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.snn.neuron import LIFConfig, LIFNeuron, PAPER_BETA, PAPER_THETA
from repro.tensor import Tensor


class TestLIFConfig:
    def test_paper_defaults(self):
        config = LIFConfig()
        assert config.beta == PAPER_BETA == 0.15
        assert config.threshold == PAPER_THETA == 0.5

    def test_rejects_beta_out_of_range(self):
        with pytest.raises(ConfigError):
            LIFConfig(beta=1.5)
        with pytest.raises(ConfigError):
            LIFConfig(beta=-0.1)

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ConfigError):
            LIFConfig(threshold=0.0)


class TestLIFStep:
    def test_subthreshold_no_spike(self):
        neuron = LIFNeuron(LIFConfig(beta=0.5, threshold=1.0))
        current = Tensor(np.array([0.4], dtype=np.float32))
        spikes, membrane = neuron.step(current, None)
        assert spikes.data[0] == 0.0
        assert membrane.data[0] == pytest.approx(0.4)

    def test_suprathreshold_spikes_and_resets_by_subtraction(self):
        neuron = LIFNeuron(LIFConfig(beta=0.5, threshold=1.0))
        current = Tensor(np.array([1.7], dtype=np.float32))
        spikes, membrane = neuron.step(current, None)
        assert spikes.data[0] == 1.0
        assert membrane.data[0] == pytest.approx(0.7)

    def test_exact_threshold_does_not_spike(self):
        # Eq. 2 uses strict inequality: u > theta.
        neuron = LIFNeuron(LIFConfig(beta=0.5, threshold=1.0))
        spikes, _ = neuron.step(Tensor(np.array([1.0], dtype=np.float32)), None)
        assert spikes.data[0] == 0.0

    def test_leak_decays_membrane(self):
        neuron = LIFNeuron(LIFConfig(beta=0.25, threshold=10.0))
        zero = Tensor(np.zeros(1, dtype=np.float32))
        _, m1 = neuron.step(Tensor(np.array([4.0], dtype=np.float32)), None)
        _, m2 = neuron.step(zero, m1)
        assert m2.data[0] == pytest.approx(1.0)  # 4 * 0.25

    def test_integration_across_steps(self):
        # Repeated 0.3 input with beta=1 (no leak), theta=0.5: spikes on
        # the second step (0.6 > 0.5) then resets to 0.1.
        neuron = LIFNeuron(LIFConfig(beta=1.0, threshold=0.5))
        current = Tensor(np.array([0.3], dtype=np.float32))
        s1, m1 = neuron.step(current, None)
        s2, m2 = neuron.step(current, m1)
        assert s1.data[0] == 0.0
        assert s2.data[0] == 1.0
        assert m2.data[0] == pytest.approx(0.1, abs=1e-6)

    def test_higher_beta_retains_more(self):
        lo = LIFNeuron(LIFConfig(beta=0.1, threshold=5.0))
        hi = LIFNeuron(LIFConfig(beta=0.9, threshold=5.0))
        start = Tensor(np.array([2.0], dtype=np.float32))
        zero = Tensor(np.zeros(1, dtype=np.float32))
        _, m_lo = lo.step(zero, start)
        _, m_hi = hi.step(zero, start)
        assert m_hi.data[0] > m_lo.data[0]

    def test_lower_threshold_fires_more(self, rng):
        current = Tensor(rng.uniform(0, 1, size=100).astype(np.float32))
        low = LIFNeuron(LIFConfig(beta=0.15, threshold=0.2))
        high = LIFNeuron(LIFConfig(beta=0.15, threshold=0.8))
        s_low, _ = low.step(current, None)
        s_high, _ = high.step(current, None)
        assert s_low.data.sum() > s_high.data.sum()

    def test_spikes_are_binary(self, rng):
        neuron = LIFNeuron()
        current = Tensor(rng.normal(size=(4, 8)).astype(np.float32))
        spikes, _ = neuron.step(current, None)
        assert set(np.unique(spikes.data)).issubset({0.0, 1.0})

    def test_initial_state_zeros(self):
        neuron = LIFNeuron()
        current = Tensor(np.ones((2, 3), dtype=np.float32))
        state = neuron.initial_state(current)
        np.testing.assert_array_equal(state.data, np.zeros((2, 3)))

    def test_gradient_flows_through_surrogate(self):
        from repro.tensor import parameter

        neuron = LIFNeuron()
        current = parameter(np.array([0.4, 0.6], dtype=np.float32))
        spikes, _ = neuron.step(current, None)
        spikes.backward(np.ones(2, dtype=np.float32))
        assert current.grad is not None
        assert np.all(current.grad > 0)  # surrogate derivative positive

    def test_repr(self):
        text = repr(LIFNeuron())
        assert "beta=0.15" in text
        assert "threshold=0.5" in text
