"""Spiking layer tests: conv, linear, batch norm, pooling."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.snn.layers import (
    BatchNorm2d,
    SpikeMaxPool2d,
    SpikingConv2d,
    SpikingLinear,
)
from repro.tensor import Tensor, ops


class TestSpikingConv2d:
    def test_output_shape_same_padding(self, rng):
        layer = SpikingConv2d(3, 8, kernel_size=3, seed=rng)
        out = layer(Tensor(np.zeros((2, 3, 6, 6), dtype=np.float32)))
        assert out.shape == (2, 8, 6, 6)

    def test_parameters(self, rng):
        layer = SpikingConv2d(3, 8, seed=rng)
        params = layer.parameters()
        assert len(params) == 2  # weight + bias
        assert params[0].shape == (8, 3, 3, 3)

    def test_no_bias_option(self, rng):
        layer = SpikingConv2d(3, 8, bias=False, seed=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_state_dict_roundtrip(self, rng):
        layer = SpikingConv2d(2, 4, seed=1)
        other = SpikingConv2d(2, 4, seed=2)
        other.load_state_dict(layer.state_dict())
        np.testing.assert_array_equal(layer.weight.data, other.weight.data)

    def test_state_dict_shape_mismatch(self, rng):
        layer = SpikingConv2d(2, 4, seed=1)
        state = layer.state_dict()
        state["weight"] = np.zeros((1, 1, 3, 3), dtype=np.float32)
        with pytest.raises(ShapeError):
            layer.load_state_dict(state)

    def test_missing_key_raises(self, rng):
        layer = SpikingConv2d(2, 4, seed=1)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": layer.weight.data})

    def test_rejects_bad_channels(self):
        with pytest.raises(ShapeError):
            SpikingConv2d(0, 4)

    def test_deterministic_init(self):
        a = SpikingConv2d(3, 8, seed=42)
        b = SpikingConv2d(3, 8, seed=42)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestSpikingLinear:
    def test_output_shape(self, rng):
        layer = SpikingLinear(12, 5, seed=rng)
        out = layer(Tensor(np.zeros((3, 12), dtype=np.float32)))
        assert out.shape == (3, 5)

    def test_flattens_4d_input(self, rng):
        layer = SpikingLinear(12, 5, seed=rng)
        out = layer(Tensor(np.zeros((3, 3, 2, 2), dtype=np.float32)))
        assert out.shape == (3, 5)

    def test_feature_mismatch(self, rng):
        layer = SpikingLinear(12, 5, seed=rng)
        with pytest.raises(ShapeError):
            layer(Tensor(np.zeros((3, 13), dtype=np.float32)))

    def test_state_dict_roundtrip(self):
        a = SpikingLinear(6, 4, seed=1)
        b = SpikingLinear(6, 4, seed=2)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
        np.testing.assert_array_equal(a.bias.data, b.bias.data)


class TestBatchNorm2d:
    def test_normalises_in_training(self, rng):
        bn = BatchNorm2d(4)
        x = Tensor(rng.normal(3.0, 2.0, size=(8, 4, 5, 5)).astype(np.float32))
        out = bn(x)
        mean = out.data.mean(axis=(0, 2, 3))
        std = out.data.std(axis=(0, 2, 3))
        np.testing.assert_allclose(mean, np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(std, np.ones(4), atol=1e-2)

    def test_running_stats_update(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.normal(5.0, 1.0, size=(16, 2, 4, 4)).astype(np.float32))
        bn(x)
        assert np.all(bn.running_mean > 0)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        for _ in range(50):
            bn(Tensor(rng.normal(2.0, 1.0, size=(16, 2, 4, 4)).astype(np.float32)))
        bn.eval()
        x = Tensor(np.full((4, 2, 4, 4), 2.0, dtype=np.float32))
        out = bn(x)
        # Input at the running mean -> output near zero.
        assert abs(out.data.mean()) < 0.2

    def test_gamma_beta_trainable(self):
        bn = BatchNorm2d(3)
        assert len(bn.parameters()) == 2

    def test_shape_validation(self):
        bn = BatchNorm2d(3)
        with pytest.raises(ShapeError):
            bn(Tensor(np.zeros((2, 4, 3, 3), dtype=np.float32)))

    def test_state_dict_roundtrip(self, rng):
        a = BatchNorm2d(3)
        a.running_mean = rng.normal(size=3).astype(np.float32)
        b = BatchNorm2d(3)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.running_mean, b.running_mean)

    def test_gradient_through_bn(self, rng):
        from repro.tensor import gradient_error, parameter

        bn = BatchNorm2d(2)
        x = parameter(rng.normal(size=(4, 2, 3, 3)))
        err = gradient_error(lambda t: bn(t), [x])
        assert err < 2e-2


class TestSpikeMaxPool2d:
    def test_or_semantics_on_binary(self, rng):
        pool = SpikeMaxPool2d(2)
        spikes = (rng.random((2, 3, 4, 4)) < 0.3).astype(np.float32)
        out = pool(Tensor(spikes)).data
        tiles = spikes.reshape(2, 3, 2, 2, 2, 2)
        expected = (tiles.max(axis=(3, 5)) > 0).astype(np.float32)
        np.testing.assert_array_equal(out, expected)

    def test_window_one_is_identity(self):
        pool = SpikeMaxPool2d(1)
        x = Tensor(np.ones((1, 1, 3, 3), dtype=np.float32))
        assert pool(x) is x

    def test_rejects_bad_window(self):
        with pytest.raises(ShapeError):
            SpikeMaxPool2d(0)

    def test_downsamples(self):
        pool = SpikeMaxPool2d(2)
        out = pool(Tensor(np.zeros((1, 2, 8, 8), dtype=np.float32)))
        assert out.shape == (1, 2, 4, 4)
