"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_dataset, train_test_split
from repro.snn import Trainer, TrainingConfig, build_network


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small 8x8 texture dataset shared across tests."""
    data = make_dataset("cifar10", 300, image_size=8, seed=7)
    return train_test_split(data, test_fraction=0.2, seed=8)


@pytest.fixture(scope="session")
def tiny_trained_network(tiny_dataset):
    """A briefly trained tiny SNN (deterministic; ~10 s once per session)."""
    train, _test = tiny_dataset
    net = build_network(
        "8C3-MP2-16C3-MP2-40",
        input_shape=(3, 8, 8),
        num_classes=10,
        seed=11,
    )
    config = TrainingConfig(epochs=3, batch_size=32, lr=3e-3, timesteps=2, seed=11)
    Trainer(net, config).fit(train.images, train.labels)
    net.eval()
    return net


@pytest.fixture(scope="session")
def tiny_deployable(tiny_trained_network):
    from repro.quant import FP32, convert

    return convert(tiny_trained_network, FP32)


@pytest.fixture(scope="session")
def tiny_deployable_int4(tiny_trained_network):
    from repro.quant import INT4, convert

    return convert(tiny_trained_network, INT4)
