"""Utility module tests: RNG, serialization, timing."""

import os
import time

import numpy as np
import pytest

from repro.utils.rng import RngMixin, fork_rng, new_rng
from repro.utils.serialization import load_npz, save_npz
from repro.utils.timing import Stopwatch


class TestRng:
    def test_new_rng_from_int(self):
        a = new_rng(42).random()
        b = new_rng(42).random()
        assert a == b

    def test_new_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert new_rng(rng) is rng

    def test_fork_decorrelates(self):
        parent = new_rng(0)
        a = fork_rng(parent, "alpha")
        parent2 = new_rng(0)
        b = fork_rng(parent2, "beta")
        assert a.random() != b.random()

    def test_fork_deterministic(self):
        a = fork_rng(new_rng(0), "x").random()
        b = fork_rng(new_rng(0), "x").random()
        assert a == b

    def test_mixin(self):
        class Thing(RngMixin):
            pass

        thing = Thing()
        thing.reseed(7)
        first = thing.rng.random()
        thing.reseed(7)
        assert thing.rng.random() == first


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        path = os.path.join(tmp_path, "x.npz")
        arrays = {"a": np.arange(5), "b": np.eye(2, dtype=np.float32)}
        save_npz(path, arrays, {"k": 1, "name": "test"})
        loaded, meta = load_npz(path)
        np.testing.assert_array_equal(loaded["a"], arrays["a"])
        np.testing.assert_array_equal(loaded["b"], arrays["b"])
        assert meta == {"k": 1, "name": "test"}

    def test_no_meta(self, tmp_path):
        path = os.path.join(tmp_path, "x.npz")
        save_npz(path, {"a": np.zeros(1)})
        _, meta = load_npz(path)
        assert meta == {}

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_npz(os.path.join(tmp_path, "x.npz"), {"__meta__": np.zeros(1)})

    def test_creates_directories(self, tmp_path):
        path = os.path.join(tmp_path, "deep", "dir", "x.npz")
        save_npz(path, {"a": np.zeros(1)})
        assert os.path.exists(path)

    def test_atomic_overwrite(self, tmp_path):
        path = os.path.join(tmp_path, "x.npz")
        save_npz(path, {"a": np.zeros(1)}, {"v": 1})
        save_npz(path, {"a": np.ones(1)}, {"v": 2})
        arrays, meta = load_npz(path)
        assert meta["v"] == 2
        np.testing.assert_array_equal(arrays["a"], np.ones(1))


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        with watch.section("work"):
            time.sleep(0.01)
        with watch.section("work"):
            time.sleep(0.01)
        assert watch.total("work") >= 0.02
        assert watch.count("work") == 2

    def test_unknown_section_zero(self):
        assert Stopwatch().total("nothing") == 0.0

    def test_summary(self):
        watch = Stopwatch()
        with watch.section("a"):
            pass
        assert "a:" in watch.summary()

    def test_names_sorted(self):
        watch = Stopwatch()
        watch.add("b", 1.0)
        watch.add("a", 1.0)
        assert watch.names() == ["a", "b"]
