"""Smoke tests keeping the example scripts runnable.

Only the fast, training-free example runs in the suite; the training
examples are exercised manually / by the benches (they share the same
code paths through the public API).
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run(script: str, timeout: int = 120) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestCustomNetworkMapping:
    @pytest.fixture(scope="class")
    def completed(self):
        return _run("custom_network_mapping.py")

    def test_exits_cleanly(self, completed):
        assert completed.returncode == 0, completed.stderr

    def test_prints_allocation(self, completed):
        assert "balanced allocation" in completed.stdout

    def test_prints_fit_check(self, completed):
        assert "fits XCVU13P" in completed.stdout

    def test_prints_timing(self, completed):
        assert "throughput" in completed.stdout


class TestExamplesAreImportableScripts:
    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "sparsity_quantization_study.py",
            "coding_tradeoffs.py",
            "design_space_exploration.py",
            "custom_network_mapping.py",
            "encoding_zoo.py",
        ],
    )
    def test_compiles(self, script):
        path = os.path.join(EXAMPLES_DIR, script)
        with open(path, "r", encoding="utf-8") as handle:
            compile(handle.read(), path, "exec")
