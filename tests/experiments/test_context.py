"""Experiment context tests (tiny scale -- fast end-to-end training)."""

import os

import pytest

from repro.errors import ExperimentError
from repro.experiments.context import ExperimentContext
from repro.experiments.presets import PRESETS, get_preset


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    workspace = str(tmp_path_factory.mktemp("artifacts"))
    return ExperimentContext(scale="tiny", workspace=workspace, seed=0)


class TestPresets:
    def test_known_presets(self):
        assert set(PRESETS) == {"tiny", "small", "paper"}

    def test_population_divisible(self):
        preset = get_preset("small")
        assert preset.population(10) % 10 == 0
        assert preset.population(100) % 100 == 0

    def test_unknown_preset(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            get_preset("huge")

    def test_scale_ordering(self):
        assert (
            PRESETS["tiny"].image_size
            < PRESETS["small"].image_size
            < PRESETS["paper"].image_size
        )

    def test_rate_timesteps_exceed_direct(self):
        for preset in PRESETS.values():
            assert preset.rate_timesteps > preset.direct_timesteps


class TestContext:
    def test_dataset_split_sizes(self, ctx):
        train, test = ctx.dataset("cifar10")
        assert len(test) == ctx.preset.test_samples
        assert len(train) >= 10

    def test_dataset_memoised(self, ctx):
        a = ctx.dataset("cifar10")
        b = ctx.dataset("cifar10")
        assert a is b

    def test_unknown_dataset(self, ctx):
        with pytest.raises(ExperimentError):
            ctx.dataset("mnist")

    def test_trained_model_cached_on_disk(self, ctx):
        model = ctx.trained("cifar10", "fp32")
        path = ctx.model_path(ctx.model_key("cifar10", "fp32", "direct"))
        assert os.path.exists(path)
        # Second call loads from memory cache.
        assert ctx.trained("cifar10", "fp32") is model

    def test_disk_cache_survives_new_context(self, ctx):
        ctx.trained("cifar10", "fp32")
        fresh = ExperimentContext(
            scale="tiny", workspace=ctx.workspace, seed=0
        )
        model = fresh.trained("cifar10", "fp32")
        assert model.layers[0].name == "conv1_1"

    def test_evaluate_returns_metrics(self, ctx):
        result = ctx.evaluate("cifar10", "fp32", max_samples=40)
        assert 0.0 <= result.accuracy <= 1.0
        assert result.spikes_per_image > 0
        assert "conv2_1" in result.per_layer_spikes
        assert "conv2_1" in result.input_events_per_image
        assert result.samples == 40

    def test_evaluate_memoised(self, ctx):
        a = ctx.evaluate("cifar10", "fp32", max_samples=40)
        b = ctx.evaluate("cifar10", "fp32", max_samples=40)
        assert a is b

    def test_int4_model_trains(self, ctx):
        model = ctx.trained("cifar10", "int4")
        assert model.scheme.name == "int4"

    def test_sim_images_bounded(self, ctx):
        images, labels = ctx.sim_images("cifar10")
        assert len(images) <= ctx.preset.sim_samples
        assert len(images) == len(labels)

    def test_timesteps_for(self, ctx):
        assert ctx.timesteps_for("direct") == ctx.preset.direct_timesteps
        assert ctx.timesteps_for("rate") == ctx.preset.rate_timesteps
