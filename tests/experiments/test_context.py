"""Experiment context tests (tiny scale -- fast end-to-end training)."""

import os

import pytest

from repro.errors import ExperimentError
from repro.experiments.context import ExperimentContext
from repro.experiments.presets import PRESETS, get_preset


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    workspace = str(tmp_path_factory.mktemp("artifacts"))
    return ExperimentContext(scale="tiny", workspace=workspace, seed=0)


class TestPresets:
    def test_known_presets(self):
        assert set(PRESETS) == {"tiny", "small", "paper"}

    def test_population_divisible(self):
        preset = get_preset("small")
        assert preset.population(10) % 10 == 0
        assert preset.population(100) % 100 == 0

    def test_unknown_preset(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            get_preset("huge")

    def test_scale_ordering(self):
        assert (
            PRESETS["tiny"].image_size
            < PRESETS["small"].image_size
            < PRESETS["paper"].image_size
        )

    def test_rate_timesteps_exceed_direct(self):
        for preset in PRESETS.values():
            assert preset.rate_timesteps > preset.direct_timesteps


class TestContext:
    def test_dataset_split_sizes(self, ctx):
        train, test = ctx.dataset("cifar10")
        assert len(test) == ctx.preset.test_samples
        assert len(train) >= 10

    def test_dataset_memoised(self, ctx):
        a = ctx.dataset("cifar10")
        b = ctx.dataset("cifar10")
        assert a is b

    def test_unknown_dataset(self, ctx):
        with pytest.raises(ExperimentError):
            ctx.dataset("mnist")

    def test_trained_model_cached_on_disk(self, ctx):
        model = ctx.trained("cifar10", "fp32")
        path = ctx.model_path(ctx.model_key("cifar10", "fp32", "direct"))
        assert os.path.exists(path)
        # Second call loads from memory cache.
        assert ctx.trained("cifar10", "fp32") is model

    def test_disk_cache_survives_new_context(self, ctx):
        ctx.trained("cifar10", "fp32")
        fresh = ExperimentContext(
            scale="tiny", workspace=ctx.workspace, seed=0
        )
        model = fresh.trained("cifar10", "fp32")
        assert model.layers[0].name == "conv1_1"

    def test_evaluate_returns_metrics(self, ctx):
        result = ctx.evaluate("cifar10", "fp32", max_samples=40)
        assert 0.0 <= result.accuracy <= 1.0
        assert result.spikes_per_image > 0
        assert "conv2_1" in result.per_layer_spikes
        assert "conv2_1" in result.input_events_per_image
        assert result.samples == 40

    def test_evaluate_memoised(self, ctx):
        a = ctx.evaluate("cifar10", "fp32", max_samples=40)
        b = ctx.evaluate("cifar10", "fp32", max_samples=40)
        assert a is b

    def test_int4_model_trains(self, ctx):
        model = ctx.trained("cifar10", "int4")
        assert model.scheme.name == "int4"

    def test_sim_images_bounded(self, ctx):
        images, labels = ctx.sim_images("cifar10")
        assert len(images) <= ctx.preset.sim_samples
        assert len(images) == len(labels)

    def test_timesteps_for(self, ctx):
        assert ctx.timesteps_for("direct") == ctx.preset.direct_timesteps
        assert ctx.timesteps_for("rate") == ctx.preset.rate_timesteps


class TestDegradedEvaluation:
    """Poison shards under ``REPRO_ON_SHARD_FAILURE``: raise or degrade.

    Real end-to-end: a genuine worker pool, a deterministic fault plan
    SIGKILLing one shard's worker on every allowed attempt, and the
    context either propagating the typed quarantine or completing on
    the surviving shards.
    """

    @pytest.fixture(autouse=True)
    def _fast_recovery(self, monkeypatch):
        """No-sleep retries, damped restarts, breaker pinned shut-proof:
        these tests SIGKILL workers repeatedly and must neither crawl
        through backoff sleeps nor flip to inline execution (where
        injection is off and nothing under test would fire)."""
        from repro.parallel import CircuitBreaker, shared_service
        from repro.parallel import shutdown_worker_service

        monkeypatch.setenv("REPRO_RETRY_BACKOFF_MS", "0")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF_MAX_MS", "0")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        service = shared_service()
        monkeypatch.setattr(service, "breaker", CircuitBreaker(threshold=10000))
        monkeypatch.setattr(service, "_restart_backoff_ms", 1.0)
        shutdown_worker_service()
        yield
        shutdown_worker_service()

    def _fresh(self, ctx):
        """A context sharing ``ctx``'s trained artifacts, 4-shard evals."""
        fresh = ExperimentContext(
            scale="tiny", workspace=ctx.workspace, seed=0, eval_cache=False
        )
        fresh.eval_batch = 30  # 120 test samples -> 4 shards
        return fresh

    def test_poison_shard_raises_typed_by_default(self, ctx, monkeypatch):
        from repro.errors import PoisonTaskError

        ctx.trained("cifar10", "fp32")  # train once outside the fault plan
        monkeypatch.delenv("REPRO_ON_SHARD_FAILURE", raising=False)
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN", "crash@1:0,crash@1:1,crash@1:2"
        )
        with pytest.raises(PoisonTaskError) as excinfo:
            self._fresh(ctx).evaluate("cifar10", "fp32")
        err = excinfo.value
        assert err.quarantined == [1]
        survivors = [part for part in err.results if part is not None]
        assert len(survivors) == 3

    def test_skip_mode_completes_on_survivors(self, ctx, monkeypatch):
        clean = self._fresh(ctx).evaluate("cifar10", "fp32")
        assert clean.samples == 120
        monkeypatch.setenv("REPRO_ON_SHARD_FAILURE", "skip")
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN", "crash@1:0,crash@1:1,crash@1:2"
        )
        fresh = self._fresh(ctx)
        degraded = fresh.evaluate("cifar10", "fp32")
        assert degraded.samples == 90  # one 30-sample shard lost
        (record,) = fresh.failed_cells
        assert record["quarantined_shards"] == [1]
        assert record["samples_lost"] == 30
        assert list(record["fingerprints"]) == [1]
        # Degraded results are never memoised or persisted: with the
        # faults gone, the same context recomputes the full test set.
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        recovered = fresh.evaluate("cifar10", "fp32")
        assert recovered.samples == 120
        assert recovered.accuracy == clean.accuracy

    def test_skip_mode_never_caches_degraded_results(self, ctx, monkeypatch):
        import os as _os

        cached_ctx = ExperimentContext(
            scale="tiny", workspace=ctx.workspace, seed=0, eval_cache=True
        )
        cached_ctx.eval_batch = 30
        monkeypatch.setenv("REPRO_ON_SHARD_FAILURE", "skip")
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN", "crash@0:0,crash@0:1,crash@0:2"
        )
        degraded = cached_ctx.evaluate("cifar10", "fp32", max_samples=119)
        assert degraded.samples == 89
        entry = cached_ctx.eval_cache_file(
            "tiny_cifar10_fp32_direct_s0_n119_tNone"
        )
        assert not _os.path.exists(entry)

    def test_skip_with_no_survivors_still_raises(self, ctx, monkeypatch):
        from repro.errors import PoisonTaskError

        monkeypatch.setenv("REPRO_ON_SHARD_FAILURE", "skip")
        monkeypatch.setenv("REPRO_RETRY_MAX_ATTEMPTS", "2")
        monkeypatch.setenv("REPRO_FAULT_PLAN", "crash%1")  # every coordinate
        with pytest.raises(PoisonTaskError):
            self._fresh(ctx).evaluate("cifar10", "fp32")

    def test_on_shard_failure_env_validated(self, monkeypatch):
        from repro.errors import ConfigError
        from repro.parallel.config import resolve_on_shard_failure

        monkeypatch.setenv("REPRO_ON_SHARD_FAILURE", "shrug")
        with pytest.raises(ConfigError):
            resolve_on_shard_failure()
        monkeypatch.setenv("REPRO_ON_SHARD_FAILURE", "skip")
        assert resolve_on_shard_failure() == "skip"
        monkeypatch.delenv("REPRO_ON_SHARD_FAILURE")
        assert resolve_on_shard_failure() == "raise"
