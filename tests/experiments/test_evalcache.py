"""Disk-backed evaluation cache: round trips, staleness, fallbacks.

Mirrors ``tests/runtime/test_plan_io.py``'s sidecar guarantees for the
``.eval.json`` entries: corrupt, truncated, foreign-format or
stale-digest entries must silently fall back to recompute, and a warm
entry must be bit-identical to the evaluation that produced it.
"""

import json
import multiprocessing as mp
import os

import pytest

from repro.errors import ExperimentError
from repro.experiments.context import ExperimentContext
from repro.experiments.evalcache import (
    EVAL_CACHE_ENV,
    EVAL_CACHE_SUFFIX,
    EvaluationResult,
    eval_cache_enabled,
    eval_cache_path,
    eval_cache_stats,
    invalidate_evaluation,
    invalidate_evaluations,
    load_evaluation,
    quarantine_corrupt_entry,
    save_evaluation,
    try_load_evaluation,
)


@pytest.fixture
def result():
    return EvaluationResult(
        accuracy=0.8125,
        spikes_per_image=1234.5678901234567,
        per_layer_spikes={"conv1_1": 700.25, "fc1": 0.1 + 0.2},
        input_events_per_image={"conv1_1": 96.0625},
        samples=48,
    )


@pytest.fixture
def entry(tmp_path, result):
    path = eval_cache_path(str(tmp_path), "tiny_svhn_fp32_direct_s0_n48_t2")
    save_evaluation(path, result, model_digest="digest-a", encoding="direct")
    return path


class TestRoundTrip:
    def test_exact_float_round_trip(self, entry, result):
        loaded = load_evaluation(entry, model_digest="digest-a")
        assert loaded == result
        # Bit-exact, not approximately equal: 0.1 + 0.2 must survive.
        assert loaded.per_layer_spikes["fc1"] == 0.1 + 0.2
        assert loaded.spikes_per_image == result.spikes_per_image

    def test_path_layout_is_models_sibling(self):
        assert eval_cache_path("/ws/models", "key") == (
            "/ws/models/key" + EVAL_CACHE_SUFFIX
        )

    def test_numpy_scalars_normalised(self, tmp_path):
        import numpy as np

        path = eval_cache_path(str(tmp_path), "np-entry")
        save_evaluation(
            path,
            EvaluationResult(
                accuracy=np.float64(0.5),
                spikes_per_image=np.float64(10.5),
                per_layer_spikes={"conv1_1": np.float64(3.25)},
                input_events_per_image={},
                samples=np.int64(4),
            ),
        )
        loaded = load_evaluation(path)
        assert loaded.accuracy == 0.5
        assert loaded.samples == 4
        assert isinstance(loaded.samples, int)

    def test_without_digest_loads(self, entry):
        assert load_evaluation(entry) is not None
        assert try_load_evaluation(entry) is not None


class TestStalenessGuards:
    def test_digest_mismatch_raises_and_try_load_recovers(self, entry):
        with pytest.raises(ExperimentError):
            load_evaluation(entry, model_digest="digest-RETRAINED")
        assert try_load_evaluation(entry, model_digest="digest-RETRAINED") is None

    def test_missing_entry(self, tmp_path):
        assert try_load_evaluation(str(tmp_path / "nope.eval.json")) is None

    def test_corrupt_entry(self, entry):
        with open(entry, "wb") as handle:
            handle.write(b"\x00not json at all")
        assert try_load_evaluation(entry) is None

    def test_truncated_entry(self, entry):
        with open(entry, "r", encoding="utf-8") as handle:
            text = handle.read()
        with open(entry, "w", encoding="utf-8") as handle:
            handle.write(text[: len(text) // 2])
        assert try_load_evaluation(entry) is None

    def test_foreign_format_rejected(self, tmp_path):
        path = eval_cache_path(str(tmp_path), "foreign")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"format": "something-else", "result": {}}, handle)
        with pytest.raises(ExperimentError):
            load_evaluation(path)
        assert try_load_evaluation(path) is None

    def test_missing_result_fields(self, entry):
        with open(entry, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        del payload["result"]["accuracy"]
        with open(entry, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        assert try_load_evaluation(entry) is None

    def test_stats_count_hits_and_misses(self, entry):
        before = eval_cache_stats().as_dict()
        try_load_evaluation(entry)
        try_load_evaluation(entry + ".missing")
        after = eval_cache_stats().as_dict()
        assert after["hits"] - before["hits"] == 1
        assert after["misses"] - before["misses"] == 1


class TestCorruptQuarantine:
    """Corrupt entries are moved aside to ``<entry>.corrupt``; stale
    (well-formed but guard-failing) entries are left in place for the
    recompute to overwrite."""

    def test_corrupt_entry_moved_aside_with_bytes_preserved(self, entry):
        bad = b"\x00not json at all"
        with open(entry, "wb") as handle:
            handle.write(bad)
        before = eval_cache_stats().corrupt
        assert try_load_evaluation(entry) is None
        assert not os.path.exists(entry)
        with open(entry + ".corrupt", "rb") as handle:
            assert handle.read() == bad
        assert eval_cache_stats().corrupt - before == 1

    def test_truncated_entry_quarantined(self, entry):
        with open(entry, "r", encoding="utf-8") as handle:
            text = handle.read()
        with open(entry, "w", encoding="utf-8") as handle:
            handle.write(text[: len(text) // 2])
        assert try_load_evaluation(entry) is None
        assert os.path.exists(entry + ".corrupt")

    def test_missing_result_fields_quarantined(self, entry):
        with open(entry, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        del payload["result"]["accuracy"]
        with open(entry, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        assert try_load_evaluation(entry) is None
        assert os.path.exists(entry + ".corrupt")

    def test_stale_entry_left_in_place(self, entry):
        """Digest mismatch means the model changed, not that the bytes
        rotted: the entry stays put and the recompute overwrites it."""
        before = eval_cache_stats().corrupt
        assert try_load_evaluation(entry, model_digest="digest-NEW") is None
        assert os.path.exists(entry)
        assert not os.path.exists(entry + ".corrupt")
        assert eval_cache_stats().corrupt == before

    def test_foreign_format_left_in_place(self, tmp_path):
        path = eval_cache_path(str(tmp_path), "foreign")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"format": "something-else", "result": {}}, handle)
        assert try_load_evaluation(path) is None
        assert os.path.exists(path)
        assert not os.path.exists(path + ".corrupt")

    def test_recompute_writes_fresh_entry_beside_quarantined(
        self, entry, result
    ):
        with open(entry, "wb") as handle:
            handle.write(b"garbage")
        assert try_load_evaluation(entry) is None
        save_evaluation(entry, result, model_digest="digest-a")
        assert load_evaluation(entry, model_digest="digest-a") == result
        assert os.path.exists(entry + ".corrupt")  # evidence retained

    def test_quarantine_missing_file_returns_false(self, tmp_path):
        before = eval_cache_stats().corrupt
        assert not quarantine_corrupt_entry(str(tmp_path / "nope.eval.json"))
        assert eval_cache_stats().corrupt == before


class TestEncodingStreamGuard:
    """Entries are tied to the encoding stream that produced them."""

    def test_matching_encoding_loads(self, entry):
        assert (
            load_evaluation(entry, encoding="direct") is not None
        )

    def test_encoding_mismatch_raises_and_try_load_recovers(self, entry):
        other = "rate/counter-philox-v1/seed=42/gain=1.0"
        with pytest.raises(ExperimentError):
            load_evaluation(entry, encoding=other)
        assert try_load_evaluation(entry, encoding=other) is None

    def test_entry_without_encoding_loads_under_any(self, tmp_path, result):
        """Entries saved without a signature (unit-level callers) stay
        loadable -- the guard only fires when both sides declare one."""
        path = eval_cache_path(str(tmp_path), "no-encoding")
        save_evaluation(path, result)
        assert try_load_evaluation(path, encoding="direct") == result

    def test_v1_snapshot_era_entry_auto_invalidated(self, entry):
        """Pre-counter-stream (v1) entries were written under
        snapshot-per-shard rate semantics: their rate-coded numbers
        depended on the shard geometry, so the format bump must reject
        them outright -- no silent stale hits."""
        with open(entry, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["format"] = "evaluation-result-v1"
        payload.pop("encoding", None)
        with open(entry, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(ExperimentError):
            load_evaluation(entry)
        assert try_load_evaluation(entry) is None


class TestNumericPathGuard:
    """Entries are tied to the numeric path that computed them: float
    results must never be served to a forced integer-kernel run, whose
    logits may legitimately differ (and vice versa)."""

    INT_SIG = "int-forced/int8/scales=0123456789abcdef"

    def test_matching_numeric_loads(self, tmp_path, result):
        path = eval_cache_path(str(tmp_path), "int-run")
        save_evaluation(path, result, numeric=self.INT_SIG)
        assert load_evaluation(path, numeric=self.INT_SIG) == result

    def test_float_entry_never_served_to_int_run(self, tmp_path, result):
        path = eval_cache_path(str(tmp_path), "float-run")
        save_evaluation(path, result, numeric="float32")
        with pytest.raises(ExperimentError):
            load_evaluation(path, numeric=self.INT_SIG)
        assert try_load_evaluation(path, numeric=self.INT_SIG) is None

    def test_int_entry_never_served_to_float_run(self, tmp_path, result):
        path = eval_cache_path(str(tmp_path), "int-run")
        save_evaluation(path, result, numeric=self.INT_SIG)
        with pytest.raises(ExperimentError):
            load_evaluation(path, numeric="float32")
        assert try_load_evaluation(path, numeric="float32") is None

    def test_legacy_entry_counts_as_float(self, tmp_path, result):
        """Pre-guard entries (no 'numeric' field) all came from the
        float path: they match "float32" and only "float32"."""
        path = eval_cache_path(str(tmp_path), "legacy")
        save_evaluation(path, result)  # numeric=None, like old writers
        assert try_load_evaluation(path, numeric="float32") == result
        assert try_load_evaluation(path, numeric=self.INT_SIG) is None

    def test_caller_without_expectation_loads_any(self, tmp_path, result):
        path = eval_cache_path(str(tmp_path), "any")
        save_evaluation(path, result, numeric=self.INT_SIG)
        assert load_evaluation(path) == result


def _entry_for(accuracy):
    """A fully-consistent entry whose every field derives from
    ``accuracy`` -- so a reader can tell a whole entry from a blend."""
    return EvaluationResult(
        accuracy=accuracy,
        spikes_per_image=accuracy * 1000.0,
        per_layer_spikes={"conv1_1": accuracy * 10.0},
        input_events_per_image={"conv1_1": accuracy * 2.0},
        samples=48,
    )


def _hammer_saves(path, accuracy, iterations):
    for _ in range(iterations):
        save_evaluation(
            path,
            _entry_for(accuracy),
            model_digest="digest-race",
            encoding="direct",
        )


def _hammer_corrupt(path, iterations):
    # A hostile writer that bypasses the atomic protocol: truncated JSON
    # written straight to the entry path, as a crashed or buggy process
    # would leave behind.
    for _ in range(iterations):
        try:
            with open(path, "wb") as handle:
                handle.write(b'{"format": "evaluation-result-v2", "resu')
        except OSError:
            pass


class TestConcurrentWriters:
    """Two processes racing on one entry path: readers must only ever
    see nothing, or one writer's *whole* entry -- the guarantee the
    mkstemp + ``os.replace`` write protocol exists to provide."""

    def test_racing_writers_never_serve_torn_entries(self, tmp_path):
        path = eval_cache_path(str(tmp_path), "contended")
        valid = {0.25: _entry_for(0.25), 0.75: _entry_for(0.75)}
        writers = [
            mp.Process(target=_hammer_saves, args=(path, accuracy, 150))
            for accuracy in valid
        ]
        for process in writers:
            process.start()
        seen = set()
        try:
            while any(process.is_alive() for process in writers):
                loaded = try_load_evaluation(
                    path, model_digest="digest-race", encoding="direct"
                )
                if loaded is not None:
                    # A whole entry from exactly one writer -- every
                    # field consistent with that writer's accuracy tag.
                    assert loaded == valid[loaded.accuracy]
                    seen.add(loaded.accuracy)
        finally:
            for process in writers:
                process.join()
        assert all(process.exitcode == 0 for process in writers)
        assert seen  # the race was actually observed mid-flight
        final = load_evaluation(path, model_digest="digest-race")
        assert final == valid[final.accuracy]

    def test_atomic_writer_racing_a_corruptor(self, tmp_path):
        """With a non-atomic hostile writer in the mix, readers degrade
        to the corrupt-fallback (``None``) -- never an exception, never
        a half-parsed entry."""
        path = eval_cache_path(str(tmp_path), "hostile")
        writer = mp.Process(target=_hammer_saves, args=(path, 0.5, 150))
        corruptor = mp.Process(target=_hammer_corrupt, args=(path, 150))
        expected = _entry_for(0.5)
        writer.start()
        corruptor.start()
        outcomes = set()
        try:
            while writer.is_alive() or corruptor.is_alive():
                loaded = try_load_evaluation(path, model_digest="digest-race")
                if loaded is None:
                    outcomes.add("fallback")
                else:
                    assert loaded == expected
                    outcomes.add("entry")
        finally:
            writer.join()
            corruptor.join()
        assert writer.exitcode == 0 and corruptor.exitcode == 0
        assert outcomes  # loop observed the race at least once
        # Whatever the interleaving left on disk, the reader's verdict
        # is still binary: the whole entry, or a clean fallback.
        assert try_load_evaluation(path) in (None, expected)


class TestInvalidation:
    def test_invalidate_single_entry(self, entry):
        assert invalidate_evaluation(entry)
        assert not os.path.exists(entry)
        assert not invalidate_evaluation(entry)  # second call is a no-op

    def test_invalidate_workspace(self, tmp_path, result):
        for key in ("a", "b", "c"):
            save_evaluation(eval_cache_path(str(tmp_path), key), result)
        (tmp_path / "model.npz").write_bytes(b"weights, not an entry")
        assert invalidate_evaluations(str(tmp_path)) == 3
        assert sorted(os.listdir(tmp_path)) == ["model.npz"]

    def test_invalidate_missing_directory(self, tmp_path):
        assert invalidate_evaluations(str(tmp_path / "absent")) == 0


class TestEnvironmentDefault:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(EVAL_CACHE_ENV, raising=False)
        assert eval_cache_enabled()

    def test_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv(EVAL_CACHE_ENV, "0")
        assert not eval_cache_enabled()
        ctx = ExperimentContext(scale="tiny", workspace="unused-ws")
        assert not ctx.eval_cache

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(EVAL_CACHE_ENV, "0")
        ctx = ExperimentContext(
            scale="tiny", workspace="unused-ws", eval_cache=True
        )
        assert ctx.eval_cache


class TestContextIntegration:
    """End-to-end through ExperimentContext (tiny scale, one training)."""

    @pytest.fixture(scope="class")
    def workspace(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("evalcache-ws"))

    @pytest.fixture(scope="class")
    def warm_result(self, workspace):
        ctx = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        assert ctx.eval_cache
        return ctx.evaluate("svhn", "fp32", max_samples=24)

    def test_entry_written_next_to_model(self, workspace, warm_result):
        entries = [
            name
            for name in os.listdir(os.path.join(workspace, "models"))
            if name.endswith(EVAL_CACHE_SUFFIX)
        ]
        assert entries == ["tiny_svhn_fp32_direct_s0_n24_tNone.eval.json"]

    def test_fresh_context_hits_without_recompute(
        self, workspace, warm_result, monkeypatch
    ):
        """A warm entry must be served with zero test-set evaluations."""
        monkeypatch.setattr(
            "repro.experiments.context.sharded_forward",
            lambda *a, **k: pytest.fail("evaluation re-ran despite warm cache"),
        )
        fresh = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        cached = fresh.evaluate("svhn", "fp32", max_samples=24)
        assert cached == warm_result  # bit-identical fields

    def test_corrupt_entry_falls_back_to_recompute(
        self, workspace, warm_result
    ):
        fresh = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        entry = fresh.eval_cache_file("tiny_svhn_fp32_direct_s0_n24_tNone")
        with open(entry, "wb") as handle:
            handle.write(b"truncated\x00")
        recomputed = fresh.evaluate("svhn", "fp32", max_samples=24)
        assert recomputed == warm_result
        # The recompute repaired the entry on disk.
        assert try_load_evaluation(entry) == warm_result

    def test_stale_digest_falls_back_to_recompute(
        self, workspace, warm_result
    ):
        fresh = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        entry = fresh.eval_cache_file("tiny_svhn_fp32_direct_s0_n24_tNone")
        with open(entry, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["model_digest"] = "stale-after-retrain"
        payload["result"]["accuracy"] = 0.0  # poisoned value must not leak
        with open(entry, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        recomputed = fresh.evaluate("svhn", "fp32", max_samples=24)
        assert recomputed == warm_result

    def test_snapshot_era_entry_recomputed_through_context(
        self, workspace, warm_result
    ):
        """A v1 entry left in the workspace (written under snapshot
        semantics) must be recomputed and repaired, never served."""
        fresh = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        entry = fresh.eval_cache_file("tiny_svhn_fp32_direct_s0_n24_tNone")
        fresh.evaluate("svhn", "fp32", max_samples=24)  # ensure on disk
        with open(entry, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["format"] = "evaluation-result-v1"
        payload.pop("encoding", None)
        payload["result"]["accuracy"] = 0.0  # poisoned value must not leak
        with open(entry, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        another = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        recomputed = another.evaluate("svhn", "fp32", max_samples=24)
        assert recomputed == warm_result
        # The recompute upgraded the entry on disk to the current format.
        with open(entry, "r", encoding="utf-8") as handle:
            repaired = json.load(handle)
        assert repaired["format"] == "evaluation-result-v2"
        assert repaired["encoding"] == "direct"

    def test_explicit_encoder_seed_gets_own_entry(
        self, workspace, warm_result
    ):
        """An explicit encoder_seed must not thrash the default entry:
        both coexist on disk under distinct cache keys."""
        seeded = ExperimentContext(
            scale="tiny", workspace=workspace, seed=0, encoder_seed=77
        )
        seeded.evaluate("svhn", "fp32", max_samples=24)
        entries = sorted(
            name
            for name in os.listdir(os.path.join(workspace, "models"))
            if name.endswith(EVAL_CACHE_SUFFIX)
        )
        assert "tiny_svhn_fp32_direct_s0_n24_tNone.eval.json" in entries
        assert "tiny_svhn_fp32_direct_s0_e77_n24_tNone.eval.json" in entries
        # The default-key entry is untouched and still warm.
        default = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        assert default.evaluate("svhn", "fp32", max_samples=24) == warm_result

    def test_disabled_context_writes_nothing(self, workspace, warm_result):
        ctx = ExperimentContext(
            scale="tiny", workspace=workspace, seed=0, eval_cache=False
        )
        ctx.invalidate_eval_cache()
        ctx.evaluate("svhn", "fp32", max_samples=24)
        entries = [
            name
            for name in os.listdir(os.path.join(workspace, "models"))
            if name.endswith(EVAL_CACHE_SUFFIX)
        ]
        assert entries == []

    def test_invalidate_eval_cache_counts(self, workspace, warm_result):
        ctx = ExperimentContext(scale="tiny", workspace=workspace, seed=0)
        ctx.evaluate("svhn", "fp32", max_samples=24)  # repopulate
        assert ctx.invalidate_eval_cache() == 1
        assert ctx.invalidate_eval_cache() == 0
