"""Experiment harness tests at tiny scale.

These validate that every table/figure harness runs end to end and emits
well-formed output; scientific shape checks live in the benches, where
the trained small-scale models are available.
"""

import pytest

from repro.experiments import fig1, fig4, table1, table2, table3
from repro.experiments.context import ExperimentContext
from repro.experiments.runall import RUNNERS, render_experiments_md


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    workspace = str(tmp_path_factory.mktemp("artifacts"))
    return ExperimentContext(scale="tiny", workspace=workspace, seed=0)


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig1.run(ctx)

    def test_table_rows(self, result):
        table = result.tables[0]
        assert table.column("dataset") == ["svhn", "cifar10", "cifar100"]

    def test_series_lengths(self, result):
        assert len(result.series) == 2
        assert len(result.series[0].x) == 3

    def test_comparisons_per_dataset(self, result):
        names = [c.name for c in result.comparisons]
        assert len(names) == 3
        assert all("Fig. 1" in n for n in names)

    def test_render(self, result):
        text = result.render()
        assert "fig1" in text
        assert "spike reduction" in text


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return table1.run(ctx)

    def test_two_precision_tables(self, result):
        titles = [t.title for t in result.tables]
        assert any("int4" in t for t in titles)
        assert any("fp32" in t for t in titles)

    def test_fc_rows_merged(self, result):
        table = result.tables[0]
        layers = table.column("layer")
        assert "fc" in layers
        assert "fc1" not in layers

    def test_headline_ratio_comparison(self, result):
        ratios = [c for c in result.comparisons if "ratio" in c.name.lower()]
        assert ratios
        lut_row = ratios[0].rows[0]
        assert lut_row.measured_value > 1.0  # fp32 bigger than int4

    def test_overheads_table_present(self, result):
        titles = [t.title for t in result.tables]
        assert any("overhead" in t.lower() for t in titles)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig4.run(ctx)

    def test_three_dataset_tables(self, result):
        assert len(result.tables) == 3
        for table in result.tables:
            assert table.column("config") == ["lw", "perf2", "perf4"]

    def test_energies_positive(self, result):
        for table in result.tables:
            assert all(v > 0 for v in table.column("fp32"))
            assert all(v > 0 for v in table.column("int4"))

    def test_improvement_comparisons(self, result):
        names = [c.name for c in result.comparisons]
        assert any("cifar10" in n for n in names)
        assert any("cifar100" in n for n in names)


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return table2.run(ctx)

    def test_two_rows(self, result):
        table = result.tables[0]
        assert table.column("coding") == ["rate", "direct"]

    def test_timestep_ratio_preserved(self, result, ctx):
        table = result.tables[0]
        steps = table.column("timesteps")
        assert steps[0] > steps[1]  # rate uses more timesteps

    def test_comparison_includes_energy(self, result):
        metrics = [r.metric for r in result.comparisons[0].rows]
        assert any("energy improvement" in m for m in metrics)


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return table3.run(ctx)

    def test_nine_rows(self, result):
        table = result.tables[0]
        # 3 baselines + 3 measured-activity + 3 paper-activity rows.
        assert len(table.rows) == 9

    def test_baseline_values_verbatim(self, result):
        table = result.tables[0]
        studies = table.column("study")
        assert "SyncNN [15]" in studies
        assert "Gerlinghoff [7]" in studies

    def test_ratio_comparison_present(self, result):
        assert result.comparisons
        metrics = [r.metric for r in result.comparisons[0].rows]
        assert any("throughput vs [7]" in m for m in metrics)


class TestRunAll:
    def test_registry_complete(self):
        assert set(RUNNERS) == {"fig1", "table1", "fig4", "table2", "table3"}

    def test_render_experiments_md(self, ctx):
        results = [fig1.run(ctx), table2.run(ctx)]
        text = render_experiments_md(results, ctx)
        assert text.startswith("# EXPERIMENTS")
        assert "tiny" in text
        assert "## fig1" in text
