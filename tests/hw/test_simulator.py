"""Hybrid simulator integration tests."""

import numpy as np
import pytest

from repro.errors import ConfigError, HardwareModelError
from repro.hw.config import AcceleratorConfig
from repro.hw.simulator import HybridSimulator
from repro.quant.schemes import FP32, INT4
from repro.snn.encoding import RateEncoder


@pytest.fixture
def config():
    return AcceleratorConfig(name="test", allocation=(1, 2, 2), scheme=FP32)


@pytest.fixture
def simulator(tiny_deployable, config):
    return HybridSimulator(tiny_deployable, config)


@pytest.fixture
def images(tiny_dataset):
    _, test = tiny_dataset
    return test.images[:16], test.labels[:16]


class TestRun:
    def test_report_fields(self, simulator, images):
        report = simulator.run(images[0], 2, labels=images[1])
        assert report.latency_ms > 0
        assert report.throughput_fps > 0
        assert report.energy_mj > 0
        assert report.accuracy is not None
        assert report.total_spikes_per_image > 0
        assert len(report.layers) == 3

    def test_input_layer_on_dense_core(self, simulator, images):
        report = simulator.run(images[0], 2)
        assert report.layers[0].engine == "dense"
        assert all(l.engine == "sparse" for l in report.layers[1:])

    def test_dense_core_cycles_activity_independent(
        self, simulator, images, rng
    ):
        bright = np.ones_like(images[0][:4])
        dark = np.zeros_like(images[0][:4])
        r1 = simulator.run(bright, 2)
        r2 = simulator.run(dark, 2)
        assert r1.layers[0].cycles == r2.layers[0].cycles

    def test_sparse_cycles_track_activity(self, simulator, images):
        bright = np.ones_like(images[0][:4])  # drives lots of spikes
        dark = np.zeros_like(images[0][:4])
        busy = simulator.run(bright, 2)
        idle = simulator.run(dark, 2)
        assert busy.layers[1].cycles > idle.layers[1].cycles

    def test_accuracy_matches_deployable(
        self, simulator, tiny_deployable, images
    ):
        report = simulator.run(images[0], 2, labels=images[1])
        expected = (
            tiny_deployable.predict(images[0], 2) == images[1]
        ).mean()
        assert report.accuracy == pytest.approx(expected)

    def test_summary_renders(self, simulator, images):
        report = simulator.run(images[0], 2, labels=images[1])
        text = report.summary()
        assert "latency" in text
        assert "conv2_1" in text

    def test_more_cores_lower_latency(self, tiny_deployable, images):
        small = HybridSimulator(
            tiny_deployable,
            AcceleratorConfig(name="s", allocation=(1, 1, 1), scheme=FP32),
        ).run(images[0], 2)
        big = HybridSimulator(
            tiny_deployable,
            AcceleratorConfig(name="b", allocation=(4, 8, 8), scheme=FP32),
        ).run(images[0], 2)
        assert big.latency_ms < small.latency_ms

    def test_rate_encoder_without_dense_core(self, tiny_deployable, images):
        config = AcceleratorConfig(
            name="rate", allocation=(1, 2, 2), scheme=FP32, use_dense_core=False
        )
        sim = HybridSimulator(tiny_deployable, config)
        report = sim.run(images[0], 4, RateEncoder(seed=0))
        assert report.layers[0].engine == "sparse"

    def test_direct_without_dense_core_rejected(self, tiny_deployable, images):
        config = AcceleratorConfig(
            name="bad", allocation=(1, 2, 2), scheme=FP32, use_dense_core=False
        )
        sim = HybridSimulator(tiny_deployable, config)
        with pytest.raises(HardwareModelError, match="dense core"):
            sim.run(images[0], 2)

    def test_allocation_mismatch_rejected(self, tiny_deployable):
        config = AcceleratorConfig(name="bad", allocation=(1, 2), scheme=FP32)
        with pytest.raises(ConfigError):
            HybridSimulator(tiny_deployable, config)


class TestRunFromCounts:
    def test_analytic_close_to_exact(self, simulator, tiny_deployable, images):
        exact = simulator.run(images[0], 2)
        out = tiny_deployable.forward(images[0], 2)
        events = {
            name: value / len(images[0])
            for name, value in out.input_spike_totals.items()
        }
        analytic = simulator.run_from_counts(events, 2)
        assert analytic.latency_ms == pytest.approx(exact.latency_ms, rel=0.15)

    def test_missing_layer_count_rejected(self, simulator):
        with pytest.raises(HardwareModelError, match="no event count"):
            simulator.run_from_counts({"conv2_1": 10.0}, 2)

    def test_output_spike_totals_optional(self, simulator, tiny_deployable, images):
        out = tiny_deployable.forward(images[0], 2)
        events = {
            name: value / len(images[0])
            for name, value in out.input_spike_totals.items()
        }
        report = simulator.run_from_counts(
            events, 2, output_spikes_per_layer={"conv1_1": 100.0}
        )
        assert report.total_spikes_per_image == 100.0


class TestConfigPropagation:
    def test_wider_chunk_fewer_compression_cycles(self, tiny_deployable, images):
        narrow = HybridSimulator(
            tiny_deployable,
            AcceleratorConfig(
                name="n", allocation=(1, 2, 2), scheme=FP32,
                compression_chunk_bits=4,
            ),
        ).run(images[0], 2)
        wide = HybridSimulator(
            tiny_deployable,
            AcceleratorConfig(
                name="w", allocation=(1, 2, 2), scheme=FP32,
                compression_chunk_bits=64,
            ),
        ).run(images[0], 2)
        narrow_compr = sum(l.compression_cycles for l in narrow.layers)
        wide_compr = sum(l.compression_cycles for l in wide.layers)
        assert wide_compr <= narrow_compr

    def test_scheme_name_in_report(self, tiny_deployable_int4, images):
        config = AcceleratorConfig(name="q", allocation=(1, 2, 2), scheme=INT4)
        report = HybridSimulator(tiny_deployable_int4, config).run(images[0][:4], 2)
        assert report.scheme_name == "int4"
        assert report.config_name == "q"

    def test_slower_clock_longer_latency(self, tiny_deployable, images):
        fast = HybridSimulator(
            tiny_deployable,
            AcceleratorConfig(name="f", allocation=(1, 2, 2), scheme=FP32),
        ).run(images[0][:4], 2)
        slow = HybridSimulator(
            tiny_deployable,
            AcceleratorConfig(
                name="s", allocation=(1, 2, 2), scheme=FP32, clock_hz=50e6
            ),
        ).run(images[0][:4], 2)
        assert slow.latency_ms == pytest.approx(2 * fast.latency_ms, rel=1e-3)
        assert slow.throughput_fps == pytest.approx(
            fast.throughput_fps / 2, rel=1e-3
        )

    def test_layer_cores_reported(self, tiny_deployable, images):
        config = AcceleratorConfig(name="c", allocation=(2, 5, 3), scheme=FP32)
        report = HybridSimulator(tiny_deployable, config).run(images[0][:4], 2)
        assert [l.cores for l in report.layers] == [2, 5, 3]


class TestEnergyScaling:
    def test_int4_hardware_cheaper(self, tiny_deployable, tiny_deployable_int4, images):
        fp32_sim = HybridSimulator(
            tiny_deployable,
            AcceleratorConfig(name="f", allocation=(1, 2, 2), scheme=FP32),
        )
        int4_sim = HybridSimulator(
            tiny_deployable_int4,
            AcceleratorConfig(name="q", allocation=(1, 2, 2), scheme=INT4),
        )
        fp32_report = fp32_sim.run(images[0], 2)
        int4_report = int4_sim.run(images[0], 2)
        assert int4_report.energy_mj < fp32_report.energy_mj
        assert int4_report.dynamic_power_w < fp32_report.dynamic_power_w
