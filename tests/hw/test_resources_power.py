"""Resource estimator and power model tests, including Table I shape checks."""

import pytest

from repro.errors import ConfigError
from repro.hw.config import AcceleratorConfig, PAPER_TABLE1_ALLOCATION
from repro.hw.power import PowerModel
from repro.hw.resources import ResourceEstimator
from repro.quant import convert
from repro.quant.schemes import FP32, INT4
from repro.snn import build_network


def _make(scheme, arch="8C3-MP2-16C3-MP2-40", allocation=(1, 2, 2)):
    net = build_network(arch, (3, 8, 8), num_classes=10, seed=0)
    net.eval()
    deployable = convert(net, scheme)
    config = AcceleratorConfig(name="test", allocation=allocation, scheme=scheme)
    return deployable, config


class TestResourceEstimator:
    def test_per_layer_breakdown(self):
        deployable, config = _make(INT4)
        estimate = ResourceEstimator(config).estimate(deployable, 2)
        assert [l.name for l in estimate.layers] == ["conv1_1", "conv2_1", "fc1"]
        assert all(l.luts > 0 for l in estimate.layers)

    def test_totals_include_infrastructure(self):
        deployable, config = _make(INT4)
        estimate = ResourceEstimator(config).estimate(deployable, 2)
        assert estimate.total_luts > sum(l.luts for l in estimate.layers)

    def test_allocation_length_validated(self):
        deployable, _ = _make(INT4)
        bad = AcceleratorConfig(name="bad", allocation=(1, 2), scheme=INT4)
        with pytest.raises(ConfigError):
            ResourceEstimator(bad).estimate(deployable, 2)

    def test_more_ncs_more_logic(self):
        deployable, small_cfg = _make(INT4, allocation=(1, 2, 2))
        _, big_cfg = _make(INT4, allocation=(1, 16, 16))
        small = ResourceEstimator(small_cfg).estimate(deployable, 2)
        big = ResourceEstimator(big_cfg).estimate(deployable, 2)
        assert big.total_luts > small.total_luts
        assert big.total_ffs > small.total_ffs

    def test_fp32_uses_more_than_int4(self):
        dep4, cfg4 = _make(INT4)
        dep32, cfg32 = _make(FP32)
        int4 = ResourceEstimator(cfg4).estimate(dep4, 2)
        fp32 = ResourceEstimator(cfg32).estimate(dep32, 2)
        assert fp32.total_luts > int4.total_luts

    def test_utilization_fractions(self):
        deployable, config = _make(INT4)
        estimator = ResourceEstimator(config)
        estimate = estimator.estimate(deployable, 2)
        util = estimator.utilization(estimate)
        assert 0 <= util["lut"] < 1
        assert set(util) == {"lut", "ff", "bram", "uram"}

    def test_by_name(self):
        deployable, config = _make(INT4)
        estimate = ResourceEstimator(config).estimate(deployable, 2)
        assert "conv2_1" in estimate.by_name()


class TestPaperScaleShape:
    """Headline Table I ratios at full paper dimensions."""

    @pytest.fixture(scope="class")
    def estimates(self):
        from repro.experiments.table1 import paper_scale_network

        results = {}
        for scheme in (INT4, FP32):
            network = paper_scale_network(scheme)
            config = AcceleratorConfig(
                name="t1", allocation=PAPER_TABLE1_ALLOCATION, scheme=scheme
            )
            estimate = ResourceEstimator(config).estimate(network, 2)
            power = PowerModel(config).estimate(estimate)
            results[scheme.name] = (estimate, power)
        return results

    def test_lut_ratio_headline(self, estimates):
        # Paper reports ~8x; our int4 build is leaner (its CONV1_2 weights
        # go to BRAM rather than replicated LUTRAM), so the measured ratio
        # runs higher. The shape requirement is a large fp32 > int4 gap.
        fp32, int4 = estimates["fp32"][0], estimates["int4"][0]
        ratio = fp32.total_luts / int4.total_luts
        assert 3.0 < ratio < 40.0

    def test_memory_ratio_headline(self, estimates):
        fp32, int4 = estimates["fp32"][0], estimates["int4"][0]
        fp32_eq = fp32.total_bram + 8 * fp32.total_uram
        int4_eq = int4.total_bram + 8 * int4.total_uram
        ratio = fp32_eq / int4_eq
        assert 2.0 < ratio < 10.0  # paper: ~3.4x

    def test_power_ratio_headline(self, estimates):
        fp32, int4 = estimates["fp32"][1], estimates["int4"][1]
        ratio = fp32.dynamic_w / int4.dynamic_w
        assert 1.5 < ratio < 6.0  # paper: 2.82x

    def test_int4_no_uram(self, estimates):
        assert estimates["int4"][0].total_uram == 0

    def test_conv1_2_fp32_lutram_blowup(self, estimates):
        fp32_layers = estimates["fp32"][0].by_name()
        int4_layers = estimates["int4"][0].by_name()
        assert fp32_layers["conv1_2"].luts > 20 * int4_layers["conv1_2"].luts

    def test_static_power_nearly_equal(self, estimates):
        fp32, int4 = estimates["fp32"][1], estimates["int4"][1]
        assert abs(fp32.static_w - int4.static_w) < 0.5


class TestPowerModel:
    def test_layer_power_positive(self):
        deployable, config = _make(INT4)
        estimate = ResourceEstimator(config).estimate(deployable, 2)
        power = PowerModel(config).estimate(estimate)
        assert all(l.total_w > 0 for l in power.layers)
        assert power.total_w == pytest.approx(power.dynamic_w + power.static_w)

    def test_clock_scaling(self):
        deployable, config = _make(INT4)
        estimate = ResourceEstimator(config).estimate(deployable, 2)
        slow_cfg = AcceleratorConfig(
            name="slow", allocation=(1, 2, 2), scheme=INT4, clock_hz=50e6
        )
        fast = PowerModel(config).estimate(estimate)
        slow = PowerModel(slow_cfg).estimate(estimate)
        assert slow.dynamic_w == pytest.approx(fast.dynamic_w / 2, rel=1e-5)

    def test_clock_gating_saves_memory_power(self):
        deployable, config = _make(INT4, allocation=(1, 4, 4))
        estimate = ResourceEstimator(config).estimate(deployable, 2)
        gated = PowerModel(config).estimate(estimate)
        ungated_cfg = AcceleratorConfig(
            name="nogate", allocation=(1, 4, 4), scheme=INT4, clock_gating=False
        )
        ungated = PowerModel(ungated_cfg).estimate(estimate)
        assert ungated.dynamic_w > gated.dynamic_w

    def test_by_name(self):
        deployable, config = _make(INT4)
        estimate = ResourceEstimator(config).estimate(deployable, 2)
        power = PowerModel(config).estimate(estimate)
        assert set(power.by_name()) == {"conv1_1", "conv2_1", "fc1"}
