"""On-chip memory planner tests."""

import pytest

from repro.errors import HardwareModelError
from repro.hw.memory import (
    BRAM_BITS,
    effective_weight_bits,
    plan_layer_memory,
    spike_ram_words,
)
from repro.quant.schemes import FP32, INT4


class TestEffectiveBits:
    def test_fp32(self):
        assert effective_weight_bits(100, FP32) == 3200

    def test_int4(self):
        assert effective_weight_bits(100, INT4) == 400


class TestInputLayer:
    def test_dense_layer_uses_ff_only(self):
        plan = plan_layer_memory(
            kind="conv",
            weight_count=1728,
            scheme=INT4,
            nc_count=1,
            out_spatial=1024,
            out_channels=64,
            timesteps=2,
            is_input_layer=True,
        )
        assert plan.weight_store == "ff"
        assert plan.weight_bram == 0
        assert plan.membrane_bram == 0
        assert plan.spike_bram > 0  # output spikes still buffered


class TestStorageClassSelection:
    def test_small_weights_use_lutram(self):
        plan = plan_layer_memory(
            "conv", 2000, INT4, nc_count=4, out_spatial=64,
            out_channels=16, timesteps=2,
        )
        assert plan.weight_store == "lutram"
        assert plan.lutram_luts > 0

    def test_fp32_block1_conv_stays_in_lutram(self):
        # The paper's CONV1_2 fp32 blow-up: big weights, still LUTRAM.
        plan = plan_layer_memory(
            "conv", 64 * 112 * 9, FP32, nc_count=28, out_spatial=1024,
            out_channels=112, timesteps=2, block_index=1,
        )
        assert plan.weight_store == "lutram"
        assert plan.lutram_luts > 400_000  # the Table I story

    def test_int4_large_conv_uses_bram(self):
        plan = plan_layer_memory(
            "conv", 112 * 192 * 9, INT4, nc_count=12, out_spatial=256,
            out_channels=192, timesteps=2, block_index=2,
        )
        assert plan.weight_store == "bram"
        assert plan.weight_bram > 0
        assert plan.weight_uram == 0

    def test_fp32_large_conv_spills_to_uram(self):
        plan = plan_layer_memory(
            "conv", 480 * 504 * 9, FP32, nc_count=72, out_spatial=64,
            out_channels=504, timesteps=2, block_index=3,
        )
        assert plan.weight_uram > 0

    def test_fp32_fc_uses_uram(self):
        plan = plan_layer_memory(
            "fc", 8960 * 1064, FP32, nc_count=19, out_spatial=1,
            out_channels=1064, timesteps=2, block_index=4,
        )
        assert plan.weight_store == "uram"
        assert plan.weight_uram > 0
        assert plan.weight_bram == 0

    def test_int4_fc_uses_bram(self):
        plan = plan_layer_memory(
            "fc", 8960 * 1064, INT4, nc_count=19, out_spatial=1,
            out_channels=1064, timesteps=2, block_index=4,
        )
        assert plan.weight_store == "bram"
        assert plan.weight_uram == 0


class TestScalingProperties:
    def test_membrane_scales_with_ncs(self):
        a = plan_layer_memory(
            "conv", 10**6, INT4, 4, 1024, 64, 2, block_index=2
        )
        b = plan_layer_memory(
            "conv", 10**6, INT4, 16, 1024, 64, 2, block_index=2
        )
        assert b.membrane_bram == 4 * a.membrane_bram

    def test_spike_ram_scales_with_timesteps(self):
        a = plan_layer_memory("conv", 10**6, INT4, 4, 1024, 256, 2, block_index=2)
        b = plan_layer_memory("conv", 10**6, INT4, 4, 1024, 256, 8, block_index=2)
        assert b.spike_bram > a.spike_bram

    def test_fp32_needs_more_storage_than_int4(self):
        kwargs = dict(
            kind="conv", weight_count=480 * 504 * 9, nc_count=8,
            out_spatial=64, out_channels=504, timesteps=2, block_index=3,
        )
        fp32 = plan_layer_memory(scheme=FP32, **kwargs)
        int4 = plan_layer_memory(scheme=INT4, **kwargs)
        fp32_bits = fp32.total_bram * BRAM_BITS + fp32.total_uram * 8 * BRAM_BITS
        int4_bits = int4.total_bram * BRAM_BITS + int4.total_uram * 8 * BRAM_BITS
        assert fp32_bits > 3 * int4_bits

    def test_total_properties(self):
        plan = plan_layer_memory(
            "conv", 10**6, INT4, 4, 256, 64, 2, block_index=2
        )
        assert plan.total_bram == (
            plan.weight_bram + plan.membrane_bram + plan.spike_bram
        )
        assert plan.total_uram == plan.weight_uram


class TestValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(HardwareModelError):
            plan_layer_memory("pool", 10, INT4, 1, 4, 4, 1)

    def test_rejects_bad_nc(self):
        with pytest.raises(HardwareModelError):
            plan_layer_memory("conv", 10, INT4, 0, 4, 4, 1)

    def test_spike_ram_words_layout(self):
        # N output maps x T timesteps contiguous slots (Fig. 2).
        assert spike_ram_words(out_channels=64, timesteps=2) == 128
