"""Dense core (systolic array) model tests."""

import numpy as np
import pytest

from repro.errors import HardwareModelError
from repro.hw.dense_core import DenseCoreModel
from repro.hw.event_sim import reference_conv


class TestTiming:
    def test_single_row_tiles_all_channels(self):
        model = DenseCoreModel(rows=1)
        timing = model.layer_cycles(64, 32, 32, 3, 3)
        assert timing.tiles == 64
        assert timing.passes == 1  # 27 taps fit the 27-PE column

    def test_more_rows_fewer_tiles(self):
        few = DenseCoreModel(rows=1).layer_cycles(64, 8, 8, 3, 3)
        many = DenseCoreModel(rows=8).layer_cycles(64, 8, 8, 3, 3)
        assert many.tiles == few.tiles // 8
        assert many.total_cycles < few.total_cycles

    def test_rows_beyond_channels_saturate(self):
        model = DenseCoreModel(rows=100)
        timing = model.layer_cycles(64, 8, 8, 3, 3)
        assert timing.tiles == 1

    def test_extra_passes_when_taps_exceed_column(self):
        model = DenseCoreModel(rows=1, pe_columns=27)
        timing = model.layer_cycles(16, 8, 8, 6, 3)  # 54 taps -> 2 passes
        assert timing.passes == 2

    def test_fill_cycles_positive(self):
        assert DenseCoreModel(rows=2).fill_cycles() > 0

    def test_rejects_bad_rows(self):
        with pytest.raises(HardwareModelError):
            DenseCoreModel(rows=0)

    def test_rejects_bad_columns(self):
        with pytest.raises(HardwareModelError):
            DenseCoreModel(rows=1, pe_columns=0)

    def test_cycles_scale_with_pixels(self):
        model = DenseCoreModel(rows=1)
        small = model.layer_cycles(8, 8, 8, 3, 3)
        large = model.layer_cycles(8, 16, 16, 3, 3)
        assert large.total_cycles > small.total_cycles * 2


class TestFunctional:
    def test_matches_reference_conv(self, rng):
        frame = rng.random((3, 10, 10)).astype(np.float32)
        weight = rng.normal(size=(7, 3, 3, 3)).astype(np.float32)
        bias = rng.normal(size=7).astype(np.float32)
        membrane, _ = DenseCoreModel(rows=3).run_layer(frame, weight, bias)
        expected = reference_conv(frame, weight) + bias[:, None, None]
        np.testing.assert_allclose(membrane, expected, atol=1e-4)

    def test_row_count_does_not_change_result(self, rng):
        frame = rng.random((3, 6, 6)).astype(np.float32)
        weight = rng.normal(size=(5, 3, 3, 3)).astype(np.float32)
        bias = np.zeros(5, dtype=np.float32)
        a, _ = DenseCoreModel(rows=1).run_layer(frame, weight, bias)
        b, _ = DenseCoreModel(rows=4).run_layer(frame, weight, bias)
        np.testing.assert_allclose(a, b, atol=1e-5)

    def test_timing_attached(self, rng):
        frame = rng.random((3, 6, 6)).astype(np.float32)
        weight = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        _, timing = DenseCoreModel(rows=2).run_layer(
            frame, weight, np.zeros(4, dtype=np.float32)
        )
        assert timing.tiles == 2
        assert timing.total_cycles == timing.tiles * timing.cycles_per_tile

    def test_rejects_channel_mismatch(self, rng):
        frame = rng.random((2, 6, 6)).astype(np.float32)
        weight = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        with pytest.raises(HardwareModelError):
            DenseCoreModel(rows=1).run_layer(
                frame, weight, np.zeros(4, dtype=np.float32)
            )

    def test_rejects_bad_frame_rank(self, rng):
        with pytest.raises(HardwareModelError):
            DenseCoreModel(rows=1).run_layer(
                rng.random((1, 2, 6, 6)).astype(np.float32),
                rng.normal(size=(4, 2, 3, 3)).astype(np.float32),
                np.zeros(4, dtype=np.float32),
            )

    def test_rejects_rect_kernel(self, rng):
        with pytest.raises(HardwareModelError):
            DenseCoreModel(rows=1).run_layer(
                rng.random((2, 6, 6)).astype(np.float32),
                rng.normal(size=(4, 2, 3, 5)).astype(np.float32),
                np.zeros(4, dtype=np.float32),
            )
