"""ECU compression model tests, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareModelError
from repro.hw.compression import (
    compress_exact,
    compress_exact_2d,
    compression_cycles_batch,
    compression_cycles_estimate,
    event_addresses_to_coords,
)


class TestCompressExact:
    def test_empty_train_all_scan_cycles(self):
        result = compress_exact(np.zeros(64), 32)
        assert result.spike_count == 0
        assert result.cycles == 2  # two empty chunks, one scan each

    def test_dense_train_one_cycle_per_spike(self):
        result = compress_exact(np.ones(64), 32)
        assert result.spike_count == 64
        assert result.cycles == 64

    def test_mixed(self):
        train = np.zeros(64)
        train[[3, 40, 41]] = 1
        result = compress_exact(train, 32)
        # chunk0 has 1 spike (1 cycle), chunk1 has 2 spikes (2 cycles).
        assert result.cycles == 3
        np.testing.assert_array_equal(result.events, [3, 40, 41])

    def test_event_order_ascending(self, rng):
        train = (rng.random(256) < 0.3).astype(int)
        result = compress_exact(train, 16)
        assert np.all(np.diff(result.events) > 0)

    def test_non_multiple_chunk(self):
        train = np.zeros(10)
        train[9] = 1
        result = compress_exact(train, 4)  # chunks: 4,4,2
        assert result.cycles == 1 + 1 + 1  # two empty scans + one event

    def test_compression_ratio(self):
        train = np.zeros(100)
        train[0] = 1
        result = compress_exact(train, 10)
        assert result.compression_ratio == 100.0

    def test_compression_ratio_empty(self):
        result = compress_exact(np.zeros(32), 8)
        assert result.compression_ratio == 32.0

    def test_rejects_empty(self):
        with pytest.raises(HardwareModelError):
            compress_exact(np.array([]), 8)

    def test_rejects_bad_chunk(self):
        with pytest.raises(HardwareModelError):
            compress_exact(np.ones(8), 0)

    def test_2d_row_major(self):
        spike_map = np.zeros((4, 4))
        spike_map[1, 2] = 1  # flat address 6
        result = compress_exact_2d(spike_map, 8)
        np.testing.assert_array_equal(result.events, [6])

    def test_2d_rejects_non2d(self):
        with pytest.raises(HardwareModelError):
            compress_exact_2d(np.zeros(16), 8)

    def test_coords_roundtrip(self):
        coords = event_addresses_to_coords(np.array([0, 5, 15]), width=4)
        assert coords == [(0, 0), (1, 1), (3, 3)]


class TestProperties:
    @given(
        st.integers(1, 512).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(st.booleans(), min_size=n, max_size=n),
                st.integers(1, 64),
            )
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_events_equal_set_bits(self, args):
        _n, bits, chunk = args
        train = np.array(bits, dtype=int)
        result = compress_exact(train, chunk)
        np.testing.assert_array_equal(result.events, np.flatnonzero(train))

    @given(
        st.integers(1, 256).flatmap(
            lambda n: st.tuples(
                st.lists(st.booleans(), min_size=n, max_size=n),
                st.integers(1, 32),
            )
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_cycle_bounds(self, args):
        bits, chunk = args
        train = np.array(bits, dtype=int)
        result = compress_exact(train, chunk)
        num_chunks = int(np.ceil(len(train) / chunk))
        spikes = int(train.sum())
        # At least one cycle per chunk or per spike; at most chunks+spikes.
        assert result.cycles >= max(num_chunks - spikes, 0) + spikes
        assert result.cycles <= num_chunks + spikes

    @given(st.integers(1, 8), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_estimate_matches_extremes(self, chunk, bits_scale):
        bits = 64 + bits_scale
        # Empty train: estimate equals chunk count exactly.
        empty = compression_cycles_estimate(bits, 0, chunk)
        assert empty == pytest.approx(np.ceil(bits / chunk))
        # Full train: estimate equals bit count exactly.
        full = compression_cycles_estimate(bits, bits, chunk)
        assert full == pytest.approx(bits)

    def test_estimate_close_to_exact_random(self, rng):
        bits = 4096
        for density in (0.02, 0.1, 0.3, 0.6):
            trains = rng.random((20, bits)) < density
            exact = np.mean(
                [compress_exact(t, 32).cycles for t in trains]
            )
            estimate = compression_cycles_estimate(
                bits, density * bits, 32
            )
            assert estimate == pytest.approx(exact, rel=0.1)

    def test_estimate_validates(self):
        with pytest.raises(HardwareModelError):
            compression_cycles_estimate(0, 0, 8)
        with pytest.raises(HardwareModelError):
            compression_cycles_estimate(10, 11, 8)
        with pytest.raises(HardwareModelError):
            compression_cycles_estimate(10, 5, 0)


class TestBatch:
    def test_matches_exact(self, rng):
        trains = (rng.random((6, 5, 48)) < 0.2).astype(np.float32)
        batch = compression_cycles_batch(trains, 16)
        for i in range(6):
            for j in range(5):
                expected = compress_exact(trains[i, j], 16).cycles
                assert batch[i, j] == expected

    def test_padding_does_not_add_chunks(self):
        # 10 bits with chunk 4 -> 3 chunks, matching compress_exact.
        train = np.zeros((1, 10))
        batch = compression_cycles_batch(train, 4)
        assert batch[0] == 3

    def test_rejects_empty_axis(self):
        with pytest.raises(HardwareModelError):
            compression_cycles_batch(np.zeros((3, 0)), 8)

    def test_rejects_bad_chunk(self):
        with pytest.raises(HardwareModelError):
            compression_cycles_batch(np.zeros((3, 8)), 0)
