"""Analytic-mode simulator edge cases (paper-scale path, no training)."""

import numpy as np
import pytest

from repro.hw.config import AcceleratorConfig
from repro.hw.simulator import HybridSimulator
from repro.quant import FP32, convert
from repro.snn import build_network


@pytest.fixture(scope="module")
def network():
    net = build_network(
        "8C3-MP2-16C3-MP2-40", (3, 8, 8), num_classes=10, seed=0
    )
    net.eval()
    return convert(net, FP32)


@pytest.fixture
def simulator(network):
    config = AcceleratorConfig(name="an", allocation=(1, 2, 2), scheme=FP32)
    return HybridSimulator(network, config)


class TestAnalyticEdgeCases:
    def test_zero_events_still_costs_activation(self, simulator):
        events = {"conv1_1": 0.0, "conv2_1": 0.0, "fc1": 0.0}
        report = simulator.run_from_counts(events, 2)
        for layer in report.layers[1:]:
            assert layer.accumulation_cycles == 0
            assert layer.cycles > 0  # compression scan + activation remain

    def test_events_clamped_to_capacity(self, simulator, network):
        # More events than input bits exist: the density clamp must keep
        # the compression estimate finite and valid.
        huge = {"conv1_1": 1e12, "conv2_1": 1e12, "fc1": 1e12}
        report = simulator.run_from_counts(huge, 2)
        assert np.isfinite(report.latency_ms)
        assert report.latency_ms > 0

    def test_cycles_monotone_in_events(self, simulator):
        low = simulator.run_from_counts(
            {"conv1_1": 0.0, "conv2_1": 10.0, "fc1": 5.0}, 2
        )
        high = simulator.run_from_counts(
            {"conv1_1": 0.0, "conv2_1": 1000.0, "fc1": 500.0}, 2
        )
        assert high.latency_ms > low.latency_ms

    def test_timesteps_scale_latency(self, simulator):
        events = {"conv1_1": 100.0, "conv2_1": 100.0, "fc1": 20.0}
        t2 = simulator.run_from_counts(events, 2)
        t4 = simulator.run_from_counts(events, 4)
        # Same total events spread over more steps: activation sweeps and
        # dense-core replays grow with T.
        assert t4.latency_ms > t2.latency_ms

    def test_dense_layer_ignores_event_entry(self, simulator):
        a = simulator.run_from_counts(
            {"conv1_1": 0.0, "conv2_1": 50.0, "fc1": 10.0}, 2
        )
        b = simulator.run_from_counts(
            {"conv1_1": 1e9, "conv2_1": 50.0, "fc1": 10.0}, 2
        )
        assert a.layers[0].cycles == b.layers[0].cycles

    def test_report_has_resources_and_power(self, simulator):
        events = {"conv1_1": 10.0, "conv2_1": 10.0, "fc1": 10.0}
        report = simulator.run_from_counts(events, 2)
        assert report.resources.total_luts > 0
        assert report.power.dynamic_w > 0
        assert 0 <= report.utilization["lut"] < 1

    def test_overheads_sum_to_100(self, simulator):
        events = {"conv1_1": 100.0, "conv2_1": 200.0, "fc1": 40.0}
        report = simulator.run_from_counts(events, 2)
        overheads = report.energy.layer_overheads()
        assert sum(overheads.values()) == pytest.approx(100.0)
